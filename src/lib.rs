//! # crcw-pram — facade crate
//!
//! One-stop re-export of the workspace implementing
//! *"Implementing Arbitrary/Common Concurrent Writes of CRCW PRAM"*
//! (Ghanim, ElWasif, Bernholdt — ICPP 2021):
//!
//! * [`core`] (`pram-core`) — the concurrent-write arbitration primitives
//!   (CAS-LT, gatekeeper, naive, lock, priority).
//! * [`exec`] (`pram-exec`) — the OpenMP-style execution substrate
//!   (persistent pool, `parallel_for`, barriers, lock-step rounds).
//! * [`sim`] (`pram-sim`) — the ideal CRCW PRAM reference machine.
//! * [`graph`] (`pram-graph`) — CSR graphs, generators, serial references.
//! * [`algos`] (`pram-algos`) — the paper's kernels (Max, BFS, CC) and
//!   extensions, parameterized over the concurrent-write method.
//! * [`vm`] (`pram-vm`) — a lock-step PRAM virtual machine: one program
//!   description, runnable exactly on the simulator or fast on threads.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

pub use pram_algos as algos;
pub use pram_core as core;
pub use pram_exec as exec;
pub use pram_graph as graph;
pub use pram_sim as sim;
pub use pram_vm as vm;

/// Commonly used items, importable with one `use crcw_pram::prelude::*`.
pub mod prelude {
    pub use pram_algos::CwMethod;
    pub use pram_core::{
        Arbiter, CasLtArray, CasLtCell, ConCell, ConVec, GatekeeperArray, GatekeeperCell,
        NaiveArbiter, Round, RoundCounter, SliceArbiter,
    };
    pub use pram_exec::{Schedule, ThreadPool, WaitPolicy};
    pub use pram_graph::{CsrGraph, GraphGen};
}
