//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, strategies
//! for integer ranges / tuples / `Just` / `any::<T>()`,
//! [`collection::vec`], [`option::of`], [`sample::select`],
//! `prop_map` / `prop_flat_map`, and [`prop_oneof!`].
//!
//! Semantics: each test function runs `cases` deterministic random cases
//! (seeded from the test name, overridable via `PROPTEST_CASES`). There is
//! **no shrinking** — a failing case reports its inputs via the panic
//! message of the underlying assertion instead.

#![warn(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// `any::<T>()` strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }
    use rand::RngCore as _;
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.rng.gen::<f64>()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies (half-open internally).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end_excl: r.end.max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            let (start, end) = (*r.start(), *r.end());
            SizeRange {
                start,
                end_excl: end.max(start).saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end_excl: n.saturating_add(1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start.saturating_add(1) >= self.size.end_excl {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.start..self.size.end_excl)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, min..max)` / `vec(element, min..=max)`: a vector of
    /// `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // proptest's default weights Some at 3:1.
            if rng.rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `of(s)`: `None` a quarter of the time, `Some(s)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy selecting uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty list");
            let i = rng.rng.gen_range(0..self.0.len());
            self.0[i].clone()
        }
    }

    /// Select one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    /// The `prop::` module alias (`prop::sample::select`, …).
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a proptest body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
            }
        }
    };
}

/// Discard the current case unless `cond` holds (counted as a skip, not a
/// failure; this stand-in simply ends the case successfully).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests (see module docs for supported forms).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::effective_cases(config.cases);
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = usize> {
        1usize..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, z in small()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1..10).contains(&z));
        }

        #[test]
        fn vec_and_option_compose(
            v in crate::collection::vec(crate::option::of(0usize..4), 2..9),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in v.into_iter().flatten() {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_map_flat_map(
            s in prop_oneof![
                Just(0usize),
                (1usize..4).prop_map(|x| x * 10),
                (1usize..3).prop_flat_map(|n| crate::collection::vec(Just(1usize), n..n + 1)
                    .prop_map(|v| v.len() + 100)),
            ],
            pick in prop::sample::select(vec![7u8, 9]),
            flag in any::<bool>(),
        ) {
            prop_assert!(s == 0 || (10..40).contains(&s) || (101..103).contains(&s));
            prop_assert!(pick == 7 || pick == 9);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_case("x", 0);
        let mut b = crate::test_runner::TestRng::for_case("x", 0);
        let s = 0u64..1000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
