//! Case scheduling: configuration, deterministic RNG, failure type.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; this stand-in is used with heavy
        // multi-threaded kernels, so default lower. PROPTEST_CASES still
        // overrides in both directions (see `effective_cases`).
        ProptestConfig { cases: 32 }
    }
}

/// The case count actually run: `PROPTEST_CASES` env var, else the config.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// A failed case's report.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-case RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Exposed within the crate so strategies can draw from it.
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// The RNG for case `case` of test `name` — a pure function of both,
    /// so failures reproduce across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        TestRng {
            rng: StdRng::seed_from_u64(
                fnv1a(name) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }
}

/// FNV-1a, for stable name hashing (DefaultHasher is not stable across
/// releases).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        use rand::RngCore as _;
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let mut c = TestRng::for_case("t", 4);
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        assert_ne!(b.rng.next_u64(), c.rng.next_u64());
    }

    #[test]
    fn effective_cases_defaults_to_config() {
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(effective_cases(12), 12);
    }
}
