//! Strategy trait and combinators (sampling only — no shrinking).

use std::ops::Range;

use rand::Rng as _;

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: a strategy simply samples.
/// Failing cases are therefore reported unshrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a dependent strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, for boxed strategies.
trait DynSample<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynSample<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynSample<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// backing type).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
