//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! calibrate-then-sample wall-clock harness (median/mean/min per
//! benchmark, printed to stdout; no statistics engine, no reports).

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (only wall time here).
pub mod measurement {
    /// Wall-clock measurement (the default and only backend).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    defaults: GroupConfig,
}

#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            defaults: GroupConfig {
                sample_size: 10,
                warm_up_time: Duration::from_millis(100),
                measurement_time: Duration::from_millis(400),
            },
        }
    }
}

impl Criterion {
    /// Accept and ignore CLI configuration (cargo-bench passes filters and
    /// `--bench`; this stand-in runs everything).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let config = self.defaults;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            config,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.defaults;
        run_one(id, config, f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Calibration budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.config, &mut f);
        self
    }

    /// Benchmark `f(input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.config, |b| f(b, input));
        self
    }

    /// Close the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, run in batches sized by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, config: GroupConfig, mut f: F) {
    // Calibrate: grow the batch until one batch costs ~1/5 of the warmup
    // budget, so per-sample noise is bounded without wasting the budget on
    // sub-microsecond routines.
    let target_batch = (config.warm_up_time / 5).max(Duration::from_micros(200));
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calibration_start = Instant::now();
    loop {
        f(&mut b);
        if b.elapsed >= target_batch
            || b.iters >= 1 << 40
            || calibration_start.elapsed() >= config.warm_up_time
        {
            break;
        }
        // Aim directly for the target using the observed rate; a fully
        // optimized-away body can measure 0 ns, so floor at 1 ns/iter.
        let per_iter = (b.elapsed.as_nanos() / u128::from(b.iters)).max(1);
        let wanted = (target_batch.as_nanos() / per_iter).max(u128::from(b.iters) * 2);
        b.iters = u64::try_from(wanted).unwrap_or(u64::MAX).max(b.iters + 1);
    }

    // Sample: fixed batch size, as many samples as fit the budget (at
    // least 2, at most the configured sample count).
    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    let sampling_start = Instant::now();
    for i in 0..config.sample_size {
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        if i >= 1 && sampling_start.elapsed() >= config.measurement_time {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "bench {name:<60} median {} (mean {}, min {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        samples_ns.len(),
        b.iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("id", 7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(runs > 0);
    }
}
