//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, `Rng::gen::<f64>()`, and
//! `Rng::gen_bool`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic per seed, which is all the graph generators and the
//! reference simulator require (reproducible workloads, not the real
//! rand's exact stream).

#![warn(rust_2018_idioms)]

use std::ops::Range;

/// Core randomness source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping is biased for huge
                // spans; Lemire-style rejection keeps uniformity exact.
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Uniform draw from `0..span` (`span > 0`) by rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution for `T` (`f64` in
    /// [0, 1), integers over their full range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 drawn");
        for _ in 0..1000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
        }
        for _ in 0..100 {
            let v = r.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform draws is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(3u32..3);
    }
}
