//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`Condvar` behind parking_lot's poison-free API
//! (`lock()` returns the guard directly; a poisoned std mutex is recovered
//! via `into_inner`, matching parking_lot's "no poisoning" semantics).

#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (parking_lot API shape).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons: a
    /// panic while locked simply releases the lock for the next owner.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` except transiently inside [`Condvar::wait`], which must move
    /// the std guard into `std::sync::Condvar::wait` and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable (parking_lot API shape: `wait` takes the guard by
/// `&mut` and re-acquires before returning).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condvar; callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
