//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the one item it uses: [`CachePadded`], with the same 128-byte alignment
//! crossbeam uses on x86_64/aarch64 (covering adjacent-line prefetching).

#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache and prefetch line.
#[derive(Clone, Copy, Default, Hash, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u32>>() >= 128);
        let a = [CachePadded::new(0u32), CachePadded::new(1u32)];
        let p0 = &a[0] as *const _ as usize;
        let p1 = &a[1] as *const _ as usize;
        assert!(p1 - p0 >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(5u64);
        *c += 1;
        assert_eq!(*c, 6);
        assert_eq!(c.into_inner(), 6);
    }
}
