//! The PRAM virtual machine: write a CRCW program once, run it exactly on
//! the ideal simulator or fast on real threads.
//!
//! Run with: `cargo run --release --example pram_vm`
//!
//! The paper's §1 names, as a goal, enabling "generic compiler approaches
//! to translating high-level representations of concurrent writes in
//! PRAM-based programming languages". `pram-vm` is that translation target:
//! this example expresses the paper's constant-time maximum as a lock-step
//! [`Program`] and executes the *same object* on both backends, then shows
//! the model-checking you get for free.

use pram_exec::ThreadPool;
use pram_vm::{Program, VmRule, Write};

/// The paper's Figure 4 as a VM program.
/// Memory layout: [0, n) values | [n, 2n) isMax flags | 2n: result.
fn max_program(n: usize) -> Program {
    let mut p = Program::new(2 * n + 1);
    // Step 1: n² processors, all-pairs knockout, common CW of 0.
    p.step(n * n, move |pid, mem| {
        let (i, j) = (pid / n, pid % n);
        if i == j {
            return vec![];
        }
        let (vi, vj) = (mem.read(i), mem.read(j));
        let loser = if vi < vj || (vi == vj && i < j) { i } else { j };
        vec![Write::new(n + loser, 0)]
    });
    // Step 2: the unique survivor publishes its index.
    p.step(n, move |pid, mem| {
        if mem.read(n + pid) == 1 {
            vec![Write::new(2 * n, pid as i64)]
        } else {
            vec![]
        }
    });
    p
}

fn main() {
    let n = 64;
    let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 101).collect();
    let mut init = Vec::with_capacity(2 * n + 1);
    init.extend_from_slice(&values);
    init.extend(std::iter::repeat_n(1, n));
    init.push(-1);

    let program = max_program(n);
    println!("== The paper's Figure 4 as one lock-step program, two backends ==");

    let ideal = program
        .run_on_machine(VmRule::Common, init.clone())
        .expect("valid program");
    println!(
        "ideal machine : max index {} | depth {} work {} issued {} committed {}",
        ideal.mem[2 * n],
        ideal.trace.depth,
        ideal.trace.work,
        ideal.trace.writes_issued,
        ideal.trace.writes_committed
    );

    let pool = ThreadPool::new(4);
    let real = program
        .run_threaded(VmRule::Common, init, &pool)
        .expect("valid program");
    println!(
        "real threads  : max index {} | depth {} work {} issued {} committed {}",
        real.mem[2 * n],
        real.trace.depth,
        real.trace.work,
        real.trace.writes_issued,
        real.trace.writes_committed
    );
    assert_eq!(ideal.mem, real.mem);
    assert_eq!(ideal.trace.writes_committed, real.trace.writes_committed);
    println!("memories and traces agree cell for cell.\n");

    println!("== Model checking for free ==");
    // A buggy program: processors disagree on a 'common' write.
    let mut buggy = Program::new(1);
    buggy.step(8, |pid, _| vec![Write::new(0, pid as i64 % 2)]);
    let e1 = buggy.run_on_machine(VmRule::Common, vec![0]).unwrap_err();
    let e2 = buggy
        .run_threaded(VmRule::Common, vec![0], &pool)
        .unwrap_err();
    println!("ideal machine rejects it : {e1}");
    println!("threads reject it too    : {e2}");

    // Same program, declared arbitrary: now it's legal, and the committed
    // value is exactly one processor's write.
    let out = buggy
        .run_threaded(VmRule::Arbitrary, vec![0], &pool)
        .unwrap();
    println!(
        "declared Arbitrary, it is fine: cell 0 = {} (one of the issued values; \
         {} issued, {} committed)",
        out.mem[0], out.trace.writes_issued, out.trace.writes_committed
    );

    println!("\n== Iterative programs: repeat-until (the paper's while-loop) ==");
    // Pointer doubling toward a fixed point, as a repeat block.
    // mem = [x, flag]: double x until >= 1000.
    let mut doubling = Program::new(2);
    doubling.repeat(1, 32, |b| {
        b.step(1, |_pid, mem| {
            let x = mem.read(0) * 2;
            vec![Write::new(0, x), Write::new(1, i64::from(x < 1000))]
        });
    });
    let a = doubling.run_on_machine(VmRule::Common, vec![1, 1]).unwrap();
    let b = doubling
        .run_threaded(VmRule::Common, vec![1, 1], &pool)
        .unwrap();
    assert_eq!(a.mem, b.mem);
    println!(
        "both backends converge to x = {} in {} lock-step rounds",
        a.mem[0], a.trace.depth
    );
}
