//! The ideal CRCW PRAM machine: conflict rules, model violations, and
//! work–depth accounting.
//!
//! Run with: `cargo run --release --example ideal_pram`
//!
//! Uses `pram-sim` to show (1) how the §2 conflict-resolution hierarchy
//! behaves on the same program, (2) how exclusive-access models *reject*
//! concurrent access rather than computing wrong answers, and (3) the
//! work–depth numbers behind the paper's §6 Brent's-theorem analysis.

use pram_sim::programs::{bfs_levels, constant_time_max, logical_or};
use pram_sim::{AccessMode, ArbitraryPolicy, Machine, Write, WriteRule};

fn main() {
    // ------------------------------------------------------------------
    // 1. One concurrent-write step under every rule.
    // ------------------------------------------------------------------
    println!("== 1. Five processors write cell 0 concurrently ==");
    let rules: Vec<(&str, WriteRule)> = vec![
        ("Common (all write 7)", WriteRule::Common),
        (
            "Arbitrary (seeded)",
            WriteRule::Arbitrary(ArbitraryPolicy::Seeded(1)),
        ),
        ("Priority min-pid", WriteRule::PriorityMinPid),
        ("Priority min-value", WriteRule::PriorityMinValue),
        (
            "Collision (sentinel -9)",
            WriteRule::Collision { sentinel: -9 },
        ),
    ];
    for (name, rule) in rules {
        let mut m = Machine::zeroed(AccessMode::Crcw(rule), 1);
        let common = matches!(rule, WriteRule::Common);
        m.step(5, |pid, _| {
            let value = if common { 7 } else { 10 + pid as i64 };
            vec![Write::new(0, value)]
        })
        .unwrap();
        println!("   {name:<28} -> cell 0 = {}", m.mem()[0]);
    }

    // ------------------------------------------------------------------
    // 2. Exclusive models fail loudly, not wrongly.
    // ------------------------------------------------------------------
    println!("\n== 2. The same step under CREW and EREW ==");
    let mut crew = Machine::zeroed(AccessMode::Crew, 1);
    let err = crew.step(5, |_pid, _| vec![Write::new(0, 7)]).unwrap_err();
    println!("   CREW: {err}");
    let mut erew = Machine::zeroed(AccessMode::Erew, 1);
    let err = erew
        .step(2, |_pid, view| {
            view.read(0);
            vec![]
        })
        .unwrap_err();
    println!("   EREW: {err}");

    // ------------------------------------------------------------------
    // 3. Work–depth accounting for the paper's kernels.
    // ------------------------------------------------------------------
    println!("\n== 3. Work-depth profiles (paper §6) ==");
    let values: Vec<i64> = (0..64).map(|i| (i * 37) % 101).collect();
    let run = constant_time_max(&values, WriteRule::Common).unwrap();
    println!(
        "   constant-time max (n = 64):  depth {} work {}  (O(1) depth, O(n^2) work)",
        run.trace.depth, run.trace.work
    );
    println!(
        "      max writers on one cell: {} — the concurrency CAS-LT must tame",
        run.trace.max_writers_per_cell
    );
    for p in [1u64, 8, 32, 1024] {
        println!(
            "      Brent time on P_phys = {p:>4}: {}",
            run.trace.brent_time(p).unwrap()
        );
    }

    let bits: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
    let run = logical_or(&bits, WriteRule::Common).unwrap();
    println!(
        "   logical OR (n = 1024):       depth {} work {}  (impossible in O(1) without CW)",
        run.trace.depth, run.trace.work
    );

    let edges: Vec<(usize, usize)> = (0..999).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
    let run = bfs_levels(1000, &edges, 0, WriteRule::Common).unwrap();
    println!(
        "   BFS on a 1000-path:          depth {} work {}  (depth tracks eccentricity)",
        run.trace.depth, run.trace.work
    );
    println!(
        "      farthest vertex level: {}",
        run.output.iter().max().unwrap()
    );
}
