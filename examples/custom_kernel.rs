//! Building your own CRCW kernel: multi-word arbitrary writes with
//! `ConVec` and the lock-step pool.
//!
//! Run with: `cargo run --release --example custom_kernel`
//!
//! The paper's stated goal includes concurrent writes of "modern language
//! data structures such as structure and class copies". This example
//! implements a small kernel the paper does not ship — parallel
//! "best offer per item" auction matching — whose concurrent write is a
//! whole struct. The arbitration guarantees each committed struct is
//! exactly one bidder's offer, never a mixture.

use pram_core::{ConVec, Round};
use pram_exec::{Schedule, ThreadPool};

/// The multi-word payload: one bidder's complete offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Offer {
    bidder: u32,
    price: u64,
    /// Redundant encoding of (bidder, price) used to prove integrity.
    checksum: u64,
}

impl Offer {
    fn new(bidder: u32, price: u64) -> Offer {
        Offer {
            bidder,
            price,
            checksum: u64::from(bidder) ^ price.rotate_left(17),
        }
    }
    fn is_intact(&self) -> bool {
        self.checksum == u64::from(self.bidder) ^ self.price.rotate_left(17)
    }
}

fn main() {
    let items = 1_000;
    let bidders = 8_000;
    let rounds_of_bidding = 5;
    let pool = ThreadPool::new(4);

    // One multi-word concurrent-write target per item.
    let book: ConVec<Option<Offer>> = ConVec::new(items, |_| None);

    // Deterministic pseudo-random bids.
    let bid = |round: u32, b: usize| {
        let h = (b as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(round) * 0x1234_5677)
            .rotate_left(29);
        (h as usize % items, h % 100_000)
    };

    pool.run(|ctx| {
        for r in 0..rounds_of_bidding {
            let round = Round::from_iteration(r);
            ctx.for_each(0..bidders, Schedule::default(), |b| {
                let (item, price) = bid(r, b);
                // Arbitrary concurrent write of a whole struct: many
                // bidders race per item; exactly one offer commits.
                //
                // SAFETY: for_each ends in a team barrier, so rounds are
                // happens-before separated and no reads overlap the round —
                // the ConVec round discipline.
                unsafe {
                    book.write_with(item, round, |slot| {
                        *slot = Some(Offer::new(b as u32, price));
                    });
                }
            });
            // Implicit barrier: the round is closed before the next begins.
        }
    });

    // Inspect the committed book (exclusive access — safe API).
    let mut book = book;
    let committed: Vec<Offer> = (0..items).filter_map(|i| *book.get_mut(i)).collect();

    let torn = committed.iter().filter(|o| !o.is_intact()).count();
    println!("items with a committed offer : {}", committed.len());
    println!("torn (mixed-writer) offers   : {torn}");
    assert_eq!(torn, 0, "arbitration must prevent struct tearing");
    println!(
        "every committed struct is one bidder's intact offer — the\n\
         multi-word guarantee naive concurrent writes cannot give\n\
         (see tests/torn_writes.rs for the naive counterexample)."
    );

    let best = committed.iter().max_by_key(|o| o.price).unwrap();
    println!(
        "sample: highest committed offer is {} by bidder {}",
        best.price, best.bidder
    );
}
