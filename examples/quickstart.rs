//! Quickstart: the CAS-LT concurrent-write primitive in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Walks through (1) the raw claim primitive, (2) why rounds re-arm for
//! free, (3) a real kernel — the paper's constant-time maximum — under all
//! concurrent-write methods, with their contention statistics side by side.

use std::sync::atomic::{AtomicUsize, Ordering};

use crcw_pram::prelude::*;
use pram_core::CountingArbiter;

fn main() {
    // ------------------------------------------------------------------
    // 1. The primitive: one winner per (cell, round).
    // ------------------------------------------------------------------
    println!("== 1. canConWriteCASLT, in Rust ==");
    let cells = CasLtArray::new(1);
    let mut rounds = RoundCounter::new();
    let round = rounds.next_round().unwrap();
    let winners = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..8 {
            let cells = &cells;
            let winners = &winners;
            s.spawn(move || {
                if cells.try_claim(0, round) {
                    winners.fetch_add(1, Ordering::Relaxed);
                    println!("   thread {t} won the concurrent write");
                }
            });
        }
    });
    println!(
        "   winners: {} (always exactly 1)",
        winners.load(Ordering::Relaxed)
    );

    // ------------------------------------------------------------------
    // 2. Rounds re-arm every cell at zero cost — no reset pass.
    // ------------------------------------------------------------------
    println!("\n== 2. A new round re-arms the cell for free ==");
    let r2 = rounds.next_round().unwrap();
    println!(
        "   claim(round {round}) again -> {}",
        cells.try_claim(0, round)
    );
    println!("   claim(round {r2})       -> {}", cells.try_claim(0, r2));

    // ------------------------------------------------------------------
    // 3. A real kernel: the paper's constant-time maximum (Figure 4).
    // ------------------------------------------------------------------
    println!("\n== 3. Constant-time maximum under every CW method ==");
    let n = 2_000;
    let values: Vec<u64> = (0..n as u64)
        .map(|i| (i * 2_654_435_761) % 1_000_003)
        .collect();
    let pool = ThreadPool::new(4);

    for method in CwMethod::ALL {
        let t0 = std::time::Instant::now();
        let idx = pram_algos::max_index(&values, method, &pool);
        let dt = t0.elapsed();
        println!(
            "   {method:<15} -> index {idx:>4} (value {}) in {dt:>10.2?}",
            values[idx]
        );
    }

    // ------------------------------------------------------------------
    // 4. Why CAS-LT wins: count the atomics.
    // ------------------------------------------------------------------
    println!("\n== 4. Claim statistics ==");
    // Scheme-agnostic counts for the whole kernel:
    let arb = CountingArbiter::new(CasLtArray::new(n));
    pram_algos::max::max_index_with_arbiter(&values, &arb, &pool);
    let s = arb.stats().snapshot();
    println!(
        "   kernel: {} claim attempts, {} winning writes \
         (the gatekeeper method\n   issues one atomic RMW for *every* attempt)",
        s.attempts, s.wins
    );
    // Per-path counts via the instrumented CAS-LT cell: hammer one cell.
    let cell = pram_core::CasLtCell::new();
    let stats = pram_core::CwStats::new();
    let round = Round::FIRST;
    std::thread::scope(|sc| {
        for _ in 0..4 {
            sc.spawn(|| {
                for _ in 0..250_000 {
                    cell.try_claim_instrumented(round, &stats);
                }
            });
        }
    });
    let s = stats.snapshot();
    println!("   one contended cell, 1M claims: {s}");
    println!(
        "   -> CAS-LT issued {} atomic RMW(s) in total; {:.3}% of claims\n   \
         were resolved by the contention-free fast-path load.",
        s.rmw_issued,
        s.fast_path_ratio() * 100.0
    );
}
