//! The paper's future-work question, §8: how do exclusive-write (EREW/CREW)
//! algorithms in current use compare against CRCW algorithms with better
//! work–depth bounds, once concurrent writes are implementable?
//!
//! Run with: `cargo run --release --example exclusive_vs_concurrent [threads]`
//!
//! Three exhibits:
//!   1. Maximum — O(1)-depth/O(n²)-work CRCW vs O(log n)-depth/O(n)-work
//!      EREW tournament; Brent's theorem predicts a crossover in n.
//!   2. List ranking — a pure CREW kernel on the same substrate (no write
//!      arbitration at all; its cost is barriers + memory traffic).
//!   3. Maximal matching — an extension kernel whose *commit* is a
//!      two-cell arbitrary concurrent write, impossible to express safely
//!      without arbitration.

use std::time::Instant;

use pram_algos::list_rank::{list_rank, list_rank_serial, random_list};
use pram_algos::matching::{maximal_matching, verify_matching};
use pram_algos::reduce::max_index_tournament;
use pram_algos::{max_index, CwMethod};
use pram_exec::ThreadPool;
use pram_graph::{CsrGraph, GraphGen};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let pool = ThreadPool::new(threads);

    println!("== 1. Maximum: CRCW O(1)-depth vs EREW O(log n)-depth ==");
    println!(
        "{:>10} {:>16} {:>18} {:>10}",
        "n", "crcw-caslt (ms)", "erew-tourn. (ms)", "winner"
    );
    for n in [64usize, 256, 1_024, 4_096, 16_384] {
        let values: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_003)
            .collect();
        let t0 = Instant::now();
        let a = max_index(&values, CwMethod::CasLt, &pool);
        let t_crcw = t0.elapsed();
        let t0 = Instant::now();
        let b = max_index_tournament(&values, &pool);
        let t_erew = t0.elapsed();
        assert_eq!(a, b);
        println!(
            "{n:>10} {:>16.3} {:>18.3} {:>10}",
            t_crcw.as_secs_f64() * 1e3,
            t_erew.as_secs_f64() * 1e3,
            if t_crcw < t_erew { "CRCW" } else { "EREW" }
        );
    }
    println!(
        "With P_phys processors Brent gives ~n^2/P for the CRCW kernel and\n\
         ~n/P + log n for the tournament: constant depth only pays while the\n\
         quadratic work still fits the machine — exactly where the crossover\n\
         lands above.\n"
    );

    println!("== 2. List ranking (CREW pointer jumping) ==");
    for n in [10_000usize, 80_000] {
        let (next, head) = random_list(n, 7);
        let t0 = Instant::now();
        let ranks = list_rank(&next, &pool);
        let dt = t0.elapsed();
        assert_eq!(ranks, list_rank_serial(&next));
        println!(
            "   n = {n:>7}: {dt:>10.2?}  (head rank {} == n-1, verified vs serial)",
            ranks[head as usize]
        );
    }
    println!();

    println!("== 3. Maximal matching (two-cell arbitrary concurrent write) ==");
    let g = CsrGraph::from_edges(20_000, &GraphGen::new(3).gnm(20_000, 80_000), true);
    println!(
        "{:>14} {:>12} {:>8} {:>8} {:>8}",
        "method", "time", "rounds", "pairs", "verify"
    );
    for m in [CwMethod::Gatekeeper, CwMethod::Lock, CwMethod::CasLt] {
        let t0 = Instant::now();
        let r = maximal_matching(&g, m, &pool);
        let dt = t0.elapsed();
        let ok = verify_matching(&g, &r).is_ok();
        println!(
            "{:>14} {:>12.2?} {:>8} {:>8} {:>8}",
            m.to_string(),
            dt,
            r.rounds,
            r.pairs,
            if ok { "ok" } else { "FAILED" }
        );
    }
    println!(
        "\nA failed half-claim simply expires with the round — the reset-free\n\
         re-arming that CAS-LT contributes; the gatekeeper pays a full O(n)\n\
         reset pass per round for the same effect."
    );
}
