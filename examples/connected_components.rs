//! Connected components with arbitrary concurrent writes (the paper's
//! Figures 10–12 workload, demo scale).
//!
//! Run with: `cargo run --release --example connected_components [n] [m] [threads]`
//!
//! Compares the gatekeeper and CAS-LT methods on Awerbuch–Shiloach CC —
//! the benchmark where the paper reports its largest speedups (up to
//! 4.5×), because hooking's arbitrary writes collide heavily and the
//! gatekeeper pays both the serialized atomics *and* a re-zeroing pass per
//! round. Also runs the simplified Shiloach–Vishkin extension kernel, and
//! shows the effect of graph skew via an R-MAT instance.

use std::time::Instant;

use crcw_pram::prelude::*;
use pram_algos::cc::{connected_components, verify_cc, NO_HOOK};
use pram_algos::sv::{sv_components, verify_sv};

fn run_cc(name: &str, g: &CsrGraph, pool: &ThreadPool) {
    println!(
        "\n--- {name}: {} vertices, {} directed edges ---",
        g.num_vertices(),
        g.num_directed_edges()
    );
    println!(
        "{:<16} {:>12} {:>6} {:>12} {:>8}",
        "method", "time", "iters", "components", "verify"
    );
    for method in [
        CwMethod::Gatekeeper,
        CwMethod::GatekeeperSkip,
        CwMethod::CasLt,
        CwMethod::Lock,
    ] {
        let t0 = Instant::now();
        let r = connected_components(g, method, pool);
        let dt = t0.elapsed();
        let mut comps: Vec<u32> = r.labels.clone();
        comps.sort_unstable();
        comps.dedup();
        let ok = verify_cc(g, &r).is_ok();
        println!(
            "{:<16} {:>12.2?} {:>6} {:>12} {:>8}",
            method.to_string(),
            dt,
            r.iterations,
            comps.len(),
            if ok { "ok" } else { "FAILED" }
        );
        if method == CwMethod::CasLt {
            let hooked = r.hook_edge.iter().filter(|&&e| e != NO_HOOK).count();
            println!(
                "{:<16} {hooked} roots were hooked; every hook edge verified in-component",
                ""
            );
        }
    }

    let t0 = Instant::now();
    let r = sv_components(g, CwMethod::CasLt, pool);
    let dt = t0.elapsed();
    println!(
        "{:<16} {:>12.2?} {:>6} {:>12} {:>8}",
        "sv-caslt (ext.)",
        dt,
        r.iterations,
        r.labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        if verify_sv(g, &r).is_ok() {
            "ok"
        } else {
            "FAILED"
        }
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let pool = ThreadPool::new(threads);

    // Uniform random graph — the paper's workload family.
    let edges = GraphGen::new(7).gnm(n, m);
    let uniform = CsrGraph::from_edges(n, &edges, true);
    run_cc("uniform G(n, m)", &uniform, &pool);

    // R-MAT — skewed degrees concentrate hooking collisions on hub roots,
    // the regime where arbitration cost differences are largest.
    let scale = (usize::BITS - n.next_power_of_two().leading_zeros() - 1).min(20);
    let edges = GraphGen::new(7).rmat_standard(scale, m);
    let rmat = CsrGraph::from_edges(1 << scale, &edges, true);
    run_cc("R-MAT (skewed)", &rmat, &pool);

    // Many small components — lots of early convergence.
    let cliques = GraphGen::disjoint_cliques(n / 20, 10);
    let cg = CsrGraph::from_edges((n / 20) * 10, &cliques, true);
    run_cc("disjoint cliques", &cg, &pool);
}
