//! Breadth-first search across concurrent-write methods (the paper's
//! Figures 7–9 workload, demo scale).
//!
//! Run with: `cargo run --release --example bfs_methods [n] [m] [threads]`
//!
//! Generates a uniform random undirected graph, runs the Rodinia-style BFS
//! kernel under each method, verifies every run against the serial
//! reference, and reports timings plus the structural consistency check
//! that separates naive from arbitrated writes.

use std::time::Instant;

use crcw_pram::prelude::*;
use pram_algos::bfs::{bfs, verify_bfs_levels, verify_bfs_tree};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("generating G(n = {n}, m = {m}) with seed 42 ...");
    let edges = GraphGen::new(42).gnm(n, m);
    let g = CsrGraph::from_edges(n, &edges, true);
    println!(
        "graph: {} vertices, {} directed edges, mean degree {:.1}, max degree {}",
        g.num_vertices(),
        g.num_directed_edges(),
        g.mean_degree(),
        g.max_degree()
    );

    let pool = ThreadPool::new(threads);
    let source = 0u32;

    println!(
        "\n{:<16} {:>12} {:>8} {:>10} {:>12}",
        "method", "time", "levels", "distances", "tree check"
    );
    for method in CwMethod::ALL {
        let t0 = Instant::now();
        let r = bfs(&g, source, method, &pool);
        let dt = t0.elapsed();

        let levels_ok = verify_bfs_levels(&g, source, &r).is_ok();
        let tree = match verify_bfs_tree(&g, source, &r) {
            Ok(()) => "consistent".to_string(),
            Err(e) => format!("TORN ({})", e.split(':').next().unwrap_or("?")),
        };
        println!(
            "{:<16} {:>12.2?} {:>8} {:>10} {:>12}",
            method.to_string(),
            dt,
            r.rounds - 1,
            if levels_ok { "ok" } else { "WRONG" },
            tree
        );
    }

    println!(
        "\nNote: distances are correct even for 'naive' (levels are common \
         writes),\nbut only single-winner methods guarantee the parent/sel_edge \
         pair is\nmutually consistent — the paper's §4 argument. On a quiet \
         machine the\nnaive tear is rare at this scale; tests/torn_writes.rs \
         provokes it reliably."
    );
}
