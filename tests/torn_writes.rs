//! Failure injection: why multi-word concurrent writes need arbitration.
//!
//! The paper's §4: "race conditions may produce a structure that does not
//! match any of the ones being written." These tests make the hazard
//! concrete by injecting a preemption point (`yield_now`) between the two
//! component stores of a logical two-word write — exactly the window a
//! descheduled thread leaves open — and show that
//!
//! * the **naive** method commits mixed-writer structures, while
//! * **CAS-LT arbitration** (same injected preemption) never does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use pram_core::{CasLtArray, Round};

const CELLS: usize = 8;
const THREADS: usize = 4;
const ROUNDS: u32 = 300;

/// A logical value spread over two words; coherent iff both halves carry
/// the same tag.
struct TwoWord {
    a: AtomicU64,
    b: AtomicU64,
}

impl TwoWord {
    fn new() -> TwoWord {
        TwoWord {
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
    /// The injected-preemption write: store half, get descheduled for a
    /// writer-dependent while, store half. The delay must differ between
    /// writers — identical delays round-robin the threads in lockstep and
    /// the two halves' final writers never invert.
    fn write_split(&self, tag: u64) {
        self.a.store(tag, Ordering::Relaxed);
        for _ in 0..(tag % 3) {
            std::thread::yield_now(); // failure injection
        }
        self.b.store(tag, Ordering::Relaxed);
    }
    fn read_pair(&self) -> (u64, u64) {
        (
            self.a.load(Ordering::Relaxed),
            self.b.load(Ordering::Relaxed),
        )
    }
}

/// Run the two-word write experiment; returns the number of torn
/// (mixed-writer) commits observed across all rounds and cells.
fn run_experiment(arbitrated: bool) -> u64 {
    let cells: Vec<TwoWord> = (0..CELLS).map(|_| TwoWord::new()).collect();
    let arb = CasLtArray::new(CELLS);
    let barrier = Barrier::new(THREADS);
    let torn = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let cells = &cells;
            let arb = &arb;
            let barrier = &barrier;
            let torn = &torn;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let round = Round::from_iteration(r);
                    barrier.wait(); // open the round
                    let tag = u64::from(r) * 1_000 + t + 1;
                    #[allow(clippy::needless_range_loop)] // c is the claim index
                    for c in 0..CELLS {
                        if !arbitrated || arb.try_claim(c, round) {
                            cells[c].write_split(tag);
                        }
                    }
                    barrier.wait(); // close the round (the sync point)
                    for cell in cells {
                        let (a, b) = cell.read_pair();
                        if a != b {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    torn.load(Ordering::Relaxed)
}

#[test]
fn caslt_arbitration_never_tears_multi_word_writes() {
    assert_eq!(
        run_experiment(true),
        0,
        "a single winner per round must make the two-word write atomic \
         at round granularity"
    );
}

#[test]
fn naive_writes_tear_under_injected_preemption() {
    let torn = run_experiment(false);
    // With a forced preemption point between the component stores and
    // 4 threads × 8 cells × 300 rounds of contention, mixtures are
    // essentially certain. If this ever reports 0, the injection window
    // has stopped working and the demonstration is meaningless.
    assert!(
        torn > 0,
        "expected at least one mixed-writer commit from naive writes"
    );
}

#[test]
fn convec_write_with_is_tear_free_under_the_same_injection() {
    // The packaged multi-word API, same preemption injection inside the
    // winner closure.
    #[derive(Clone, Copy, PartialEq, Debug)]
    struct Pair {
        a: u64,
        b: u64,
    }
    let v: pram_core::ConVec<Pair> = pram_core::ConVec::new(CELLS, |_| Pair { a: 0, b: 0 });
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let v = &v;
            let barrier = &barrier;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let round = Round::from_iteration(r);
                    barrier.wait();
                    for c in 0..CELLS {
                        let tag = u64::from(r) * 1_000 + t + 1;
                        // SAFETY: barriers separate rounds; reads below
                        // happen only after the closing barrier.
                        unsafe {
                            v.write_with(c, round, |p| {
                                p.a = tag;
                                std::thread::yield_now(); // injection
                                p.b = tag;
                            });
                        }
                    }
                    barrier.wait();
                    for c in 0..CELLS {
                        // SAFETY: the round is closed.
                        let p = unsafe { *v.read(c) };
                        assert_eq!(p.a, p.b, "ConVec committed a mixture");
                    }
                }
            });
        }
    });
}
