//! Moderate-scale end-to-end soak: every kernel on a graph big enough to
//! exercise many rounds, oversubscribed threads, and real claim collisions,
//! with full verification. (Paper-scale runs live in the bench harness;
//! this keeps `cargo test` minutes-bounded while still leaving toy sizes.)

use pram_algos::bfs::{bfs, verify_bfs_tree};
use pram_algos::cc::{connected_components, verify_cc};
use pram_algos::matching::{maximal_matching, verify_matching};
use pram_algos::sv::{sv_components, verify_sv};
use pram_algos::CwMethod;
use pram_exec::ThreadPool;
use pram_graph::{CsrGraph, GraphGen};

fn big_graph() -> CsrGraph {
    let n = 50_000;
    let edges = GraphGen::new(2026).gnm(n, 250_000);
    CsrGraph::from_edges(n, &edges, true)
}

#[test]
fn bfs_at_scale_all_paper_methods() {
    let g = big_graph();
    let pool = ThreadPool::new(8);
    for m in [CwMethod::Gatekeeper, CwMethod::CasLt] {
        let r = bfs(&g, 17, m, &pool);
        verify_bfs_tree(&g, 17, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
    }
    // Naive: distances still correct.
    let r = bfs(&g, 17, CwMethod::Naive, &pool);
    pram_algos::bfs::verify_bfs_levels(&g, 17, &r).unwrap();
}

#[test]
fn cc_at_scale_gatekeeper_vs_caslt() {
    let g = big_graph();
    let pool = ThreadPool::new(8);
    for m in [CwMethod::Gatekeeper, CwMethod::CasLt] {
        let r = connected_components(&g, m, &pool);
        verify_cc(&g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
        assert!(r.converged);
    }
}

#[test]
fn sv_and_matching_at_scale() {
    let g = big_graph();
    let pool = ThreadPool::new(8);
    let r = sv_components(&g, CwMethod::CasLt, &pool);
    verify_sv(&g, &r).unwrap();

    let m = maximal_matching(&g, CwMethod::CasLt, &pool);
    verify_matching(&g, &m).unwrap();
    // A 250K-edge random graph on 50K vertices matches most vertices.
    assert!(m.pairs > 10_000, "suspiciously small matching: {}", m.pairs);
}

#[test]
fn rmat_at_scale_with_heavy_skew() {
    // Hubs concentrate claims: the adversarial case for arbitration.
    let edges = GraphGen::new(7).rmat_standard(14, 200_000);
    let g = CsrGraph::from_edges(1 << 14, &edges, true);
    let pool = ThreadPool::new(8);
    let r = connected_components(&g, CwMethod::CasLt, &pool);
    verify_cc(&g, &r).unwrap();
    let b = bfs(&g, 0, CwMethod::CasLt, &pool);
    verify_bfs_tree(&g, 0, &b).unwrap();
}
