//! Property tests for the ideal PRAM machine: resolution-rule invariants
//! over randomized write sets, failure atomicity, and trace accounting.

use pram_sim::{AccessMode, ArbitraryPolicy, Machine, PramError, Write, WriteRule};
use proptest::prelude::*;

/// A randomized one-step workload: per processor, an optional write
/// (addr, value) into a small memory.
fn arb_writes(mem: usize, procs: usize) -> impl Strategy<Value = Vec<Option<(usize, i64)>>> {
    proptest::collection::vec(proptest::option::of((0..mem, -50i64..50)), procs..=procs)
}

fn run_step(
    mode: AccessMode,
    mem_len: usize,
    writes: &[Option<(usize, i64)>],
) -> (Result<(), PramError>, Vec<i64>, Machine) {
    let mut m = Machine::zeroed(mode, mem_len);
    let before = m.mem().to_vec();
    let r = m
        .step(writes.len(), |pid, _view| match writes[pid] {
            Some((a, v)) => vec![Write::new(a, v)],
            None => vec![],
        })
        .map(|_| ());
    (r, before, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_commits_only_issued_values(
        writes in arb_writes(6, 12),
        seed in any::<u64>(),
    ) {
        let mode = AccessMode::Crcw(WriteRule::Arbitrary(ArbitraryPolicy::Seeded(seed)));
        let (r, before, m) = run_step(mode, 6, &writes);
        prop_assert!(r.is_ok());
        #[allow(clippy::needless_range_loop)] // addr indexes three arrays
        for addr in 0..6 {
            let now = m.mem()[addr];
            if now != before[addr] {
                prop_assert!(
                    writes.iter().flatten().any(|&(a, v)| a == addr && v == now),
                    "cell {} holds {} which nobody wrote", addr, now
                );
            } else {
                // Unchanged: either untouched, or someone wrote the old
                // value (0) back.
                let touched = writes.iter().flatten().any(|&(a, _)| a == addr);
                if touched {
                    // Whatever committed must still be an issued value.
                    prop_assert!(
                        writes.iter().flatten().any(|&(a, v)| a == addr && v == now)
                    );
                }
            }
        }
    }

    #[test]
    fn priority_min_value_commits_the_minimum(
        writes in arb_writes(4, 10),
    ) {
        let mode = AccessMode::Crcw(WriteRule::PriorityMinValue);
        let (r, _, m) = run_step(mode, 4, &writes);
        prop_assert!(r.is_ok());
        for addr in 0..4 {
            let issued: Vec<i64> = writes
                .iter()
                .flatten()
                .filter(|&&(a, _)| a == addr)
                .map(|&(_, v)| v)
                .collect();
            if let Some(&min) = issued.iter().min() {
                prop_assert_eq!(m.mem()[addr], min, "cell {}", addr);
            }
        }
    }

    #[test]
    fn priority_min_pid_commits_the_first_processor(
        writes in arb_writes(4, 10),
    ) {
        let mode = AccessMode::Crcw(WriteRule::PriorityMinPid);
        let (r, _, m) = run_step(mode, 4, &writes);
        prop_assert!(r.is_ok());
        for addr in 0..4 {
            let first = writes
                .iter()
                .enumerate()
                .find_map(|(pid, w)| match w {
                    Some((a, v)) if *a == addr => Some((pid, *v)),
                    _ => None,
                });
            if let Some((_, v)) = first {
                prop_assert_eq!(m.mem()[addr], v, "cell {}", addr);
            }
        }
    }

    #[test]
    fn exclusive_write_mode_fails_atomically(
        writes in arb_writes(3, 8),
    ) {
        // Under CREW, a step either commits everything (no conflicts) or
        // errors and leaves memory untouched.
        let (r, before, m) = run_step(AccessMode::Crew, 3, &writes);
        let mut per_cell = [0usize; 3];
        for &(a, _) in writes.iter().flatten() {
            per_cell[a] += 1;
        }
        if per_cell.iter().any(|&c| c > 1) {
            let is_conflict = matches!(r, Err(PramError::WriteConflict { .. }));
            prop_assert!(is_conflict, "expected a write conflict");
            prop_assert_eq!(m.mem(), &before[..], "failed step must not commit");
            prop_assert_eq!(m.trace().depth, 0, "failed step must not count");
        } else {
            prop_assert!(r.is_ok());
            for (pid, w) in writes.iter().enumerate() {
                let _ = pid;
                if let Some((a, v)) = w {
                    prop_assert_eq!(m.mem()[*a], *v);
                }
            }
        }
    }

    #[test]
    fn common_rule_is_exactly_value_agreement(
        writes in arb_writes(3, 8),
    ) {
        let (r, _, m) = run_step(AccessMode::Crcw(WriteRule::Common), 3, &writes);
        let mut per_cell: [Vec<i64>; 3] = Default::default();
        for &(a, v) in writes.iter().flatten() {
            per_cell[a].push(v);
        }
        let conflict = per_cell.iter().any(|vs| {
            vs.windows(2).any(|w| w[0] != w[1])
        });
        prop_assert_eq!(r.is_err(), conflict);
        if !conflict {
            for (addr, vs) in per_cell.iter().enumerate() {
                if let Some(&v) = vs.first() {
                    prop_assert_eq!(m.mem()[addr], v);
                }
            }
        }
    }

    #[test]
    fn collision_rule_marks_exactly_the_contended_cells(
        writes in arb_writes(4, 8),
    ) {
        let sentinel = -999;
        let mode = AccessMode::Crcw(WriteRule::Collision { sentinel });
        let (r, _, m) = run_step(mode, 4, &writes);
        prop_assert!(r.is_ok());
        for addr in 0..4 {
            let issued: Vec<i64> = writes
                .iter()
                .flatten()
                .filter(|&&(a, _)| a == addr)
                .map(|&(_, v)| v)
                .collect();
            match issued.len() {
                0 => prop_assert_eq!(m.mem()[addr], 0),
                1 => prop_assert_eq!(m.mem()[addr], issued[0]),
                _ => prop_assert_eq!(m.mem()[addr], sentinel, "cell {}", addr),
            }
        }
    }

    #[test]
    fn trace_work_counts_processors_and_writes_count_commits(
        writes in arb_writes(5, 9),
    ) {
        let mode = AccessMode::Crcw(WriteRule::Arbitrary(ArbitraryPolicy::MinPid));
        let (r, _, m) = run_step(mode, 5, &writes);
        prop_assert!(r.is_ok());
        let issued = writes.iter().flatten().count() as u64;
        let touched: std::collections::HashSet<usize> =
            writes.iter().flatten().map(|&(a, _)| a).collect();
        let t = m.trace();
        prop_assert_eq!(t.depth, 1);
        prop_assert_eq!(t.work, 9);
        prop_assert_eq!(t.writes_issued, issued);
        prop_assert_eq!(t.writes_committed, touched.len() as u64);
    }
}
