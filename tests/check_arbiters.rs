//! Model-checking tier: bounded-exhaustive and seeded-random schedule
//! exploration of the arbitration substrate.
//!
//! Compiled (and meaningful) only under the instrumented shim:
//!
//! ```text
//! RUSTFLAGS="--cfg pram_check" cargo test -p crcw-pram --test check_arbiters
//! ```
//!
//! Two families of assertions:
//!
//! * **Soundness of the substrate** — CAS-LT (all variants), gatekeeper,
//!   lock, priority, and the multi-word payload cell produce exactly one
//!   winner under *every* schedule within the bound.
//! * **Sensitivity of the checker** — the seeded violations (NaiveArbiter,
//!   the check-then-act BuggyCasLt, and its payload-tearing form) are
//!   *found*, and the reported schedule replays to the same violation.
//!
//! Keep models at 2–3 threads: the exhaustive tier enumerates every
//! interleaving and the tree is exponential. Three threads already contain
//! every two-thread race plus an observer. See EXPERIMENTS.md for the
//! schedule-bound and seed-replay workflow.
#![cfg(pram_check)]

use pram_check::models::{
    BuggyPayloadWrite, Model, PayloadWrite, PriorityMin, ResetRearm, RoundRacing, SingleRoundWinner,
};
use pram_check::{
    explore_exhaustive, explore_random, replay, BuggyCasLtArray, ExploreOptions, Violation,
};
use pram_core::{
    AlwaysRmwCasLtArray, BitGatekeeperArray, CasLtArray, CasLtArray64, GatekeeperArray,
    GatekeeperSkipArray, LockArray, NaiveArbiter, PaddedCasLtArray, Round, SliceArbiter,
};

const THREADS: usize = 3;

fn opts() -> ExploreOptions {
    ExploreOptions::default()
}

/// Exhaustively check the single-winner invariant for one arbiter family.
fn assert_single_winner_exhaustive<A: SliceArbiter>(name: &str, make_arb: impl Fn() -> A) {
    let report = explore_exhaustive(
        || SingleRoundWinner::new(name, make_arb(), THREADS, Round::FIRST),
        &opts(),
    );
    report.assert_clean();
    assert!(
        report.complete,
        "{name}: schedule tree not exhausted within {} executions",
        report.executions
    );
    assert!(report.executions > 1, "{name}: expected schedule branching");
}

/// Assert that exploration finds a violation and that its recorded
/// schedule deterministically replays to a violation.
fn assert_violation_found_and_replayable<M: Model>(
    report_violation: Option<Violation>,
    make_model: impl FnMut() -> M,
    expect_in_message: &str,
) -> Violation {
    let v = report_violation.expect("checker failed to find the seeded violation");
    assert!(
        v.message.contains(expect_in_message),
        "unexpected violation message: {}",
        v.message
    );
    let replayed = replay(make_model, &v.schedule);
    let msg = replayed
        .violation
        .unwrap_or_else(|| panic!("replaying schedule {:?} did not reproduce: {v}", v.schedule));
    assert!(
        msg.contains(expect_in_message),
        "replay produced a different violation: {msg}"
    );
    v
}

// ---------------------------------------------------------------- soundness

#[test]
fn caslt_single_winner_exhaustive() {
    assert_single_winner_exhaustive("caslt", || CasLtArray::new(1));
}

#[test]
fn caslt_padded_single_winner_exhaustive() {
    assert_single_winner_exhaustive("caslt-padded", || PaddedCasLtArray::new(1));
}

#[test]
fn caslt_always_rmw_single_winner_exhaustive() {
    assert_single_winner_exhaustive("caslt-always-rmw", || AlwaysRmwCasLtArray::new(1));
}

#[test]
fn caslt_64bit_single_winner_exhaustive() {
    assert_single_winner_exhaustive("caslt-64", || CasLtArray64::new(1));
}

#[test]
fn gatekeeper_single_winner_exhaustive() {
    assert_single_winner_exhaustive("gatekeeper", || GatekeeperArray::new(1));
}

#[test]
fn gatekeeper_skip_single_winner_exhaustive() {
    assert_single_winner_exhaustive("gatekeeper-skip", || GatekeeperSkipArray::new(1));
}

#[test]
fn bit_gatekeeper_single_winner_exhaustive() {
    assert_single_winner_exhaustive("bit-gatekeeper", || BitGatekeeperArray::new(1));
}

#[test]
fn lock_single_winner_exhaustive() {
    // Also exercises the executor's blocked/released lock modeling.
    assert_single_winner_exhaustive("lock", || LockArray::new(1));
}

#[test]
fn caslt_round_racing_exhaustive() {
    // The fast-path load racing a newer round's claim: per round at most
    // one winner even while a round advance steals the cell.
    let report = explore_exhaustive(
        || {
            RoundRacing::new(
                "caslt-round-racing",
                CasLtArray::new(1),
                THREADS,
                Round::FIRST,
            )
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn reset_and_rearm_exhaustive_all_schemes() {
    // Re-arming schemes win a fresh round with no reset; resetting schemes
    // win again after their reset pass. Two threads per phase keeps the
    // two-phase product tree exhaustive-friendly.
    fn check<A: SliceArbiter>(name: &str, make_arb: impl Fn() -> A) {
        let report = explore_exhaustive(
            || ResetRearm::new(name, make_arb(), 2, Round::FIRST),
            &ExploreOptions::default(),
        );
        report.assert_clean();
        assert!(report.complete, "{name}: reset/rearm tree not exhausted");
    }
    check("caslt-rearm", || CasLtArray::new(1));
    check("gatekeeper-reset", || GatekeeperArray::new(1));
    check("bit-gatekeeper-reset", || BitGatekeeperArray::new(1));
    check("lock-rearm", || LockArray::new(1));
}

#[test]
fn payload_write_no_tearing_exhaustive() {
    let report = explore_exhaustive(|| PayloadWrite::new(THREADS, Round::FIRST), &opts());
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn priority_min_wins_exhaustive() {
    let report = explore_exhaustive(|| PriorityMin::new(THREADS, Round::FIRST), &opts());
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn caslt_random_tier_is_clean() {
    // The seeded-random tier on a config past the exhaustive sweet spot.
    let report = explore_random(
        || SingleRoundWinner::new("caslt-random", CasLtArray::new(1), 6, Round::FIRST),
        200,
        0xC0FFEE,
        &opts(),
    );
    report.assert_clean();
    assert_eq!(report.executions, 200);
}

// -------------------------------------------------------------- sensitivity

#[test]
fn naive_multi_winner_is_detected() {
    let make = || SingleRoundWinner::new("naive", NaiveArbiter::new(1), THREADS, Round::FIRST);
    let report = explore_exhaustive(make, &opts());
    let v = assert_violation_found_and_replayable(report.violation, make, "winner");
    assert_eq!(v.model, "naive");
}

#[test]
fn buggy_caslt_double_winner_is_detected_exhaustive() {
    let make = || {
        SingleRoundWinner::new(
            "buggy-caslt",
            BuggyCasLtArray::new(1),
            THREADS,
            Round::FIRST,
        )
    };
    let report = explore_exhaustive(make, &opts());
    let v = assert_violation_found_and_replayable(report.violation, make, "winner");
    // The losing interleaving takes more than one thread between a load
    // and its store, so the failing schedule must interleave threads.
    assert!(v.schedule.len() >= 2, "suspicious trivial schedule: {v}");
}

#[test]
fn buggy_caslt_double_winner_is_detected_by_random_tier() {
    // The same seeded bug must also fall to the random/PCT tier, and the
    // reported seed must deterministically re-derive the failure.
    let make = || {
        SingleRoundWinner::new(
            "buggy-caslt-random",
            BuggyCasLtArray::new(1),
            4,
            Round::FIRST,
        )
    };
    let report = explore_random(make, 500, 1, &opts());
    let v = report
        .violation
        .expect("random tier failed to find the seeded violation");
    let seed = v.seed.expect("random-tier violation must carry its seed");
    let replayed = pram_check::replay_seed(make, seed, &opts());
    assert!(
        replayed.violation.is_some(),
        "seed {seed:#x} did not replay to a violation"
    );
}

#[test]
fn buggy_payload_tearing_is_detected() {
    let make = || BuggyPayloadWrite::new(THREADS, Round::FIRST);
    let report = explore_exhaustive(make, &opts());
    assert_violation_found_and_replayable(report.violation, make, "torn payload");
}

#[test]
fn violation_report_prints_reproducer() {
    let report = explore_exhaustive(
        || SingleRoundWinner::new("naive-report", NaiveArbiter::new(1), 2, Round::FIRST),
        &opts(),
    );
    let text = report.violation.expect("naive must fail").to_string();
    assert!(
        text.contains("schedule"),
        "report must print the schedule: {text}"
    );
    assert!(
        text.contains("replay"),
        "report must explain replay: {text}"
    );
}
