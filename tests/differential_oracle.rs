//! Differential kernel oracle: every kernel, every concurrent-write
//! method, one seeded corpus, three independent answers that must agree.
//!
//! For each instance of a generated corpus (`pram_graph::GraphGen` paths,
//! cycles, stars, grids, G(n,m), R-MAT) the kernels run on the real
//! `pram-exec` pool under **all** static methods plus `Adaptive` (on both
//! a plain pool and a telemetry pool, so the adaptive policy actually
//! observes counters), and the outputs are compared against the serial
//! references in `pram-graph` / `pram-algos` and — where a program
//! exists — the `pram-sim` ideal PRAM machine.
//!
//! Where arbitrary CW makes the output nondeterministic, the oracle
//! checks **winner-set equivalence** instead of equality:
//!
//! * `max_index` under a single-winner method must reproduce the paper's
//!   tiebreak index exactly; under naive (every writer "wins", last store
//!   lands) only the *value* at the returned index is pinned.
//! * BFS levels are common writes (all writers agree) — equal under every
//!   method. Parents are arbitrary: any previous-level neighbor is
//!   admissible, so parents are checked as members of the writer set, and
//!   only for single-winner methods (naive tears the multi-word commit).
//! * CC labels are canonicalized by the kernel (component minima), so
//!   single-winner methods must match union–find exactly; naive is
//!   excluded (multi-word hook writes tear).
//!
//! The corpus is deliberately small by default so the oracle runs in a PR
//! gate; set `PRAM_ORACLE_FULL=1` (CI nightly) for the full corpus and
//! larger pools.

use pram_algos::list_rank::{list_rank_serial, random_list};
use pram_algos::scan::exclusive_scan_serial;
use pram_algos::{
    bfs, connected_components, connected_components_worklist, exclusive_scan, inclusive_scan,
    list_rank, logical_or, max_index, CwMethod,
};
use pram_exec::{MethodKind, PoolConfig, ThreadPool};
use pram_graph::{serial, CsrGraph, GraphGen};
use pram_sim::{programs, WriteRule};

fn full_corpus() -> bool {
    std::env::var("PRAM_ORACLE_FULL").is_ok_and(|v| v == "1")
}

/// Pools the whole oracle sweeps: serial, small, and oversubscribed teams,
/// plus a telemetry-enabled adaptive pool so `CwMethod::Adaptive` runs
/// with live counters (on the plain pools it stays on its starting
/// delegate — also worth covering, but not *only* that).
fn pools() -> Vec<ThreadPool> {
    let mut pools = vec![
        ThreadPool::new(1),
        ThreadPool::new(4),
        ThreadPool::with_config(
            PoolConfig::new(3)
                .telemetry(true)
                .method(MethodKind::Adaptive),
        ),
    ];
    if full_corpus() {
        pools.push(ThreadPool::new(8));
    }
    pools
}

/// (name, vertex count, edge list) corpus instance.
type Instance = (String, usize, Vec<(u32, u32)>);

/// The seeded graph corpus: one of each generator family, sized for the
/// PR gate; the full tier adds larger and denser instances.
fn corpus() -> Vec<Instance> {
    let mut c = vec![
        ("path48".to_string(), 48, GraphGen::path(48)),
        ("cycle33".to_string(), 33, GraphGen::cycle(33)),
        ("star40".to_string(), 40, GraphGen::star(40)),
        ("grid6x7".to_string(), 42, GraphGen::grid(6, 7)),
        ("gnm120".to_string(), 120, GraphGen::new(11).gnm(120, 300)),
        (
            "rmat7".to_string(),
            128,
            GraphGen::new(12).rmat_standard(7, 400),
        ),
    ];
    if full_corpus() {
        c.push(("path600".to_string(), 600, GraphGen::path(600)));
        c.push((
            "gnm1000".to_string(),
            1000,
            GraphGen::new(13).gnm(1000, 4000),
        ));
        c.push((
            "rmat10".to_string(),
            1024,
            GraphGen::new(14).rmat_standard(10, 6000),
        ));
        for seed in 20..24u64 {
            c.push((
                format!("gnm200-s{seed}"),
                200,
                GraphGen::new(seed).gnm(200, 500),
            ));
        }
    }
    c
}

/// Seeded value vectors (with duplicated maxima, so the tiebreak matters).
fn value_corpus() -> Vec<Vec<u64>> {
    let mut vs: Vec<Vec<u64>> = vec![
        vec![7],
        (0..60).map(|i: u64| (i * 37) % 23).collect(),
        (0..97).map(|i: u64| (i * 13 + 5) % 31).collect(),
        vec![9; 50], // every index ties for the max
    ];
    if full_corpus() {
        vs.push((0..5000).map(|i: u64| (i * 2654435761) % 4093).collect());
    }
    vs
}

#[test]
fn oracle_max_all_methods_vs_serial_and_sim() {
    for values in value_corpus() {
        let reference = serial::max_index_paper_tiebreak(&values);
        let as_i64: Vec<i64> = values.iter().map(|&v| v as i64).collect();
        let ideal = programs::constant_time_max(&as_i64, WriteRule::Common)
            .unwrap()
            .output;
        assert_eq!(ideal, reference, "ideal machine vs serial reference");
        for pool in pools() {
            for m in CwMethod::ALL {
                let got = max_index(&values, m, &pool);
                if m.single_winner() {
                    assert_eq!(
                        got,
                        reference,
                        "{m} on {} threads must reproduce the paper tiebreak",
                        pool.num_threads()
                    );
                } else {
                    // Naive: any index holding the max value is an
                    // admissible winner (winner-set equivalence).
                    assert_eq!(
                        values[got],
                        values[reference],
                        "{m} on {} threads returned a non-maximal index {got}",
                        pool.num_threads()
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_bfs_levels_all_methods_and_parents_in_writer_set() {
    for (name, n, edges) in corpus() {
        let g = CsrGraph::from_edges(n, &edges, true);
        let reference = serial::bfs_levels(&g, 0);
        for pool in pools() {
            for m in CwMethod::ALL {
                let r = bfs(&g, 0, m, &pool);
                assert_eq!(
                    r.level,
                    reference,
                    "{name}: {m} levels on {} threads",
                    pool.num_threads()
                );
                if !m.single_winner() {
                    continue; // naive tears the multi-word commit
                }
                // Arbitrary-CW winner set: parent[u] must be *some*
                // previous-level neighbor of u — which one is free.
                for u in 1..n {
                    if reference[u] == u32::MAX {
                        continue;
                    }
                    let p = r.parent[u];
                    assert!(
                        g.neighbors(p).contains(&(u as u32)),
                        "{name}: {m} parent {p} of {u} not adjacent"
                    );
                    assert_eq!(
                        reference[p as usize] + 1,
                        reference[u],
                        "{name}: {m} parent {p} of {u} not a previous-level writer"
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_bfs_levels_agree_with_ideal_machine() {
    // The sim cross-check on a slice of the corpus (the ideal machine
    // interprets one instruction at a time; keep it to the small tier).
    for (name, n, edges) in corpus().into_iter().take(4) {
        let g = CsrGraph::from_edges(n, &edges, true);
        let directed: Vec<(usize, usize)> = g
            .directed_edges()
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        let ideal = programs::bfs_levels(n, &directed, 0, WriteRule::Common)
            .unwrap()
            .output;
        let reference = serial::bfs_levels(&g, 0);
        for v in 0..n {
            if reference[v] == u32::MAX {
                assert_eq!(ideal[v], -1, "{name}: vertex {v} reachability");
            } else {
                assert_eq!(ideal[v], i64::from(reference[v]), "{name}: vertex {v}");
            }
        }
    }
}

#[test]
fn oracle_cc_single_winner_methods_vs_union_find() {
    for (name, n, edges) in corpus() {
        let g = CsrGraph::from_edges(n, &edges, true);
        let directed: Vec<(u32, u32)> = g.directed_edges().collect();
        let reference = serial::cc_labels(n, &directed);
        for pool in pools() {
            for m in CwMethod::ALL.into_iter().filter(|m| m.single_winner()) {
                let r = connected_components(&g, m, &pool);
                assert_eq!(
                    r.labels,
                    reference,
                    "{name}: {m} labels on {} threads",
                    pool.num_threads()
                );
                // The worklist variant must agree with the dense one.
                let w = connected_components_worklist(&g, m, &pool);
                assert_eq!(
                    w.labels,
                    reference,
                    "{name}: {m} worklist labels on {} threads",
                    pool.num_threads()
                );
            }
        }
    }
}

#[test]
fn oracle_scan_vs_serial_reference() {
    for values in value_corpus() {
        let reference = exclusive_scan_serial(&values);
        let inclusive_reference: Vec<u64> = values
            .iter()
            .scan(0u64, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        for pool in pools() {
            assert_eq!(
                exclusive_scan(&values, &pool),
                reference,
                "exclusive scan on {} threads",
                pool.num_threads()
            );
            assert_eq!(
                inclusive_scan(&values, &pool),
                inclusive_reference,
                "inclusive scan on {} threads",
                pool.num_threads()
            );
        }
    }
}

#[test]
fn oracle_list_rank_vs_serial_reference() {
    let sizes: &[usize] = if full_corpus() {
        &[1, 2, 33, 100, 257, 2048]
    } else {
        &[1, 2, 33, 100, 257]
    };
    for (i, &n) in sizes.iter().enumerate() {
        let (next, _head) = random_list(n, 0xACE + i as u64);
        let reference = list_rank_serial(&next);
        for pool in pools() {
            assert_eq!(
                list_rank(&next, &pool),
                reference,
                "list of {n} on {} threads",
                pool.num_threads()
            );
        }
    }
}

#[test]
fn oracle_logical_or_all_methods_vs_sim() {
    let patterns: Vec<Vec<bool>> = vec![
        vec![],
        vec![false; 70],
        (0..70).map(|i| i == 69).collect(),
        (0..70).map(|i| i % 11 == 3).collect(),
    ];
    for bits in &patterns {
        let expect = bits.iter().any(|&b| b);
        if !bits.is_empty() {
            let ideal = programs::logical_or(bits, WriteRule::Common)
                .unwrap()
                .output;
            assert_eq!(ideal, expect, "ideal machine on {bits:?}");
        }
        for pool in pools() {
            for m in CwMethod::ALL {
                assert_eq!(
                    logical_or(bits, m, &pool),
                    expect,
                    "{m} on {} threads",
                    pool.num_threads()
                );
            }
        }
    }
}

#[test]
fn oracle_adaptive_pool_reports_decisions_consistently() {
    // On the telemetry pool the adaptive arbiter may switch delegates; the
    // oracle above proves outputs stay correct — here we additionally pin
    // that the pool surfaced the rounds it ran (the trace channel works
    // end to end) on a workload dense enough to produce telemetry.
    let pool = ThreadPool::with_config(
        PoolConfig::new(4)
            .telemetry(true)
            .method(MethodKind::Adaptive),
    );
    let n = 200;
    let edges = GraphGen::new(42).gnm(n, 2000);
    let g = CsrGraph::from_edges(n, &edges, true);
    let reference = serial::bfs_levels(&g, 0);
    let r = bfs(&g, 0, CwMethod::for_pool(&pool), &pool);
    assert_eq!(r.level, reference);
    let report = pool.take_round_report();
    assert!(!report.rounds.is_empty(), "no rounds snapshotted");
}
