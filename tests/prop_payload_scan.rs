//! Property tests for the multi-word payload cells (random round
//! schedules, model-checked sequentially and hammered concurrently) and
//! the prefix-sum kernel.

use std::sync::Barrier;

use pram_algos::scan::{exclusive_scan, exclusive_scan_serial, inclusive_scan};
use pram_core::{ConVec, Round};
use pram_exec::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn convec_sequential_model_check(
        // A random schedule of (cell, round, value) write attempts.
        ops in proptest::collection::vec((0usize..4, 0u32..20, any::<i64>()), 0..60),
    ) {
        // Model: per cell, a write wins iff its round strictly exceeds the
        // last winning round; the payload then equals that write's value.
        let v: ConVec<i64> = ConVec::new(4, |_| 0);
        let mut model: [(Option<u32>, i64); 4] = [(None, 0); 4];
        for &(cell, r, value) in &ops {
            let round = Round::from_iteration(r);
            // SAFETY: single-threaded — the round discipline is trivial.
            let won = unsafe { v.write_with(cell, round, |p| *p = value) };
            let expect = model[cell].0.is_none_or(|last| r > last);
            prop_assert_eq!(won, expect);
            if won {
                model[cell] = (Some(r), value);
            }
            // SAFETY: no concurrent writers.
            prop_assert_eq!(unsafe { *v.read(cell) }, model[cell].1);
        }
        let mut v = v;
        for (cell, m) in model.iter().enumerate() {
            prop_assert_eq!(*v.get_mut(cell), m.1);
        }
    }

    #[test]
    fn convec_concurrent_rounds_commit_exactly_one_writer(
        threads in 2usize..5,
        cells in 1usize..5,
        rounds in 1u32..12,
    ) {
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Tagged { a: u64, b: u64 }
        let v: ConVec<Tagged> = ConVec::new(cells, |_| Tagged { a: 0, b: 0 });
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let v = &v;
                let barrier = &barrier;
                s.spawn(move || {
                    for r in 0..rounds {
                        let round = Round::from_iteration(r);
                        barrier.wait();
                        for c in 0..v.len() {
                            let tag = u64::from(r) * 100 + t + 1;
                            // SAFETY: barrier-separated rounds, reads after
                            // the closing barrier only.
                            unsafe {
                                v.write_with(c, round, |p| {
                                    p.a = tag;
                                    p.b = tag.wrapping_mul(31);
                                });
                            }
                        }
                        barrier.wait();
                        for c in 0..v.len() {
                            // SAFETY: round closed.
                            let p = unsafe { *v.read(c) };
                            assert_eq!(p.b, p.a.wrapping_mul(31), "torn payload");
                            assert_eq!(p.a / 100, u64::from(r), "stale round survived");
                        }
                    }
                });
            }
        });
        prop_assert!(true);
    }

    #[test]
    fn scan_matches_serial(
        values in proptest::collection::vec(any::<u64>(), 0..300),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        prop_assert_eq!(exclusive_scan(&values, &pool), exclusive_scan_serial(&values));
        let incl = inclusive_scan(&values, &pool);
        for (i, v) in incl.iter().enumerate() {
            let expect = exclusive_scan_serial(&values)[i].wrapping_add(values[i]);
            prop_assert_eq!(*v, expect);
        }
    }

    #[test]
    fn scan_is_monotone_for_small_values(
        values in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let pool = ThreadPool::new(3);
        let s = exclusive_scan(&values, &pool);
        for w in s.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(s[0], 0);
    }
}
