//! Property tests for whole kernels: random workloads, every
//! concurrent-write method, varying team sizes — always checked against
//! the serial ground truth.

use pram_algos::bfs::{bfs, bfs_with_strategy, verify_bfs_tree, BfsStrategy};
use pram_algos::cc::{connected_components, connected_components_worklist, verify_cc};
use pram_algos::sv::{sv_components, verify_sv};
use pram_algos::{first_true, logical_or, max_index, CwMethod};
use pram_exec::ThreadPool;
use pram_graph::{serial, CsrGraph, GraphGen};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = CwMethod> {
    prop::sample::select(CwMethod::ALL.to_vec())
}

fn single_winner_method() -> impl Strategy<Value = CwMethod> {
    prop::sample::select(
        CwMethod::ALL
            .into_iter()
            .filter(|m| m.single_winner())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn max_matches_reference(
        values in proptest::collection::vec(any::<u64>(), 1..120),
        method in arb_method(),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let got = max_index(&values, method, &pool);
        prop_assert_eq!(got, serial::max_index_paper_tiebreak(&values));
    }

    #[test]
    fn bfs_trees_are_valid_on_random_graphs(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 1usize..6,
        method in single_winner_method(),
        threads in 1usize..5,
    ) {
        let m = n * density;
        let edges = GraphGen::new(seed).gnm(n, m);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        let source = (seed % n as u64) as u32;
        let r = bfs(&g, source, method, &pool);
        prop_assert!(verify_bfs_tree(&g, source, &r).is_ok(),
            "{}", verify_bfs_tree(&g, source, &r).unwrap_err());
    }

    #[test]
    fn cc_matches_union_find_on_random_graphs(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 0usize..5,
        method in single_winner_method(),
        threads in 1usize..5,
    ) {
        let edges = GraphGen::new(seed).gnm(n, n * density);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        let r = connected_components(&g, method, &pool);
        prop_assert!(verify_cc(&g, &r).is_ok(), "{}", verify_cc(&g, &r).unwrap_err());
    }

    #[test]
    fn sv_matches_union_find_on_random_graphs(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 0usize..5,
        method in single_winner_method(),
        threads in 1usize..5,
    ) {
        let edges = GraphGen::new(seed).gnm(n, n * density);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        let r = sv_components(&g, method, &pool);
        prop_assert!(verify_sv(&g, &r).is_ok(), "{}", verify_sv(&g, &r).unwrap_err());
    }

    #[test]
    fn cc_on_forests_and_rmat(
        seed in any::<u64>(),
        scale in 3u32..8,
    ) {
        let pool = ThreadPool::new(4);
        let n = 1usize << scale;

        let forest = GraphGen::new(seed).random_forest(n, 0.6);
        let g = CsrGraph::from_edges(n, &forest, true);
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        prop_assert!(verify_cc(&g, &r).is_ok());

        let rmat = GraphGen::new(seed).rmat_standard(scale, n * 4);
        let g = CsrGraph::from_edges(n, &rmat, true);
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        prop_assert!(verify_cc(&g, &r).is_ok());
    }

    // Frontier strategies are observationally equivalent to the paper's
    // dense scan: identical `level` vectors, and a valid (not necessarily
    // identical — tie-breaks differ) parent/sel_edge tree, under every
    // single-winner method.
    #[test]
    fn bfs_strategies_agree_with_dense_reference(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 1usize..6,
        method in single_winner_method(),
        threads in 1usize..5,
    ) {
        let edges = GraphGen::new(seed).gnm(n, n * density);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        let source = (seed % n as u64) as u32;
        let dense = bfs_with_strategy(&g, source, method, BfsStrategy::DenseScan, &pool);
        for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
            let r = bfs_with_strategy(&g, source, method, strategy, &pool);
            prop_assert_eq!(&r.level, &dense.level,
                "{} diverges from dense levels under {}", strategy, method);
            prop_assert_eq!(r.rounds, dense.rounds);
            let tree = verify_bfs_tree(&g, source, &r);
            prop_assert!(tree.is_ok(), "{}/{}: {}", method, strategy, tree.unwrap_err());
        }
    }

    #[test]
    fn bfs_strategies_agree_on_skewed_rmat(
        seed in any::<u64>(),
        scale in 3u32..8,
        method in single_winner_method(),
    ) {
        let n = 1usize << scale;
        let edges = GraphGen::new(seed).rmat_standard(scale, n * 6);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(4);
        let dense = bfs_with_strategy(&g, 0, method, BfsStrategy::DenseScan, &pool);
        for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
            let r = bfs_with_strategy(&g, 0, method, strategy, &pool);
            prop_assert_eq!(&r.level, &dense.level,
                "{} diverges from dense levels under {}", strategy, method);
            let tree = verify_bfs_tree(&g, 0, &r);
            prop_assert!(tree.is_ok(), "{}/{}: {}", method, strategy, tree.unwrap_err());
        }
    }

    #[test]
    fn cc_worklist_agrees_with_dense_reference(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 0usize..5,
        method in single_winner_method(),
        threads in 1usize..5,
    ) {
        let edges = GraphGen::new(seed).gnm(n, n * density);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        let dense = connected_components(&g, method, &pool);
        let sparse = connected_components_worklist(&g, method, &pool);
        prop_assert_eq!(&sparse.labels, &dense.labels, "worklist labels diverge under {}", method);
        prop_assert!(verify_cc(&g, &sparse).is_ok(), "{}", verify_cc(&g, &sparse).unwrap_err());
    }

    #[test]
    fn or_and_first_true_match_iterator_semantics(
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        method in arb_method(),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        prop_assert_eq!(logical_or(&bits, method, &pool), bits.iter().any(|&b| b));
        prop_assert_eq!(first_true(&bits, &pool), bits.iter().position(|&b| b));
    }
}
