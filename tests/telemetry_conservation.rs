//! Counter-accuracy under the thread pool: fully contended CW rounds where
//! every team member claims every cell, with per-(round) conservation
//! identities checked against the pool's [`RoundReport`].
//!
//! These are the OS-thread half of the satellite; the lockstep half (same
//! identities under exhaustive 2-thread schedules) lives in
//! `tests/check_telemetry.rs` behind `--cfg pram_check`.
//!
//! Per fully contended round with `T` claimants per cell and `C` cells:
//!
//! * CAS-LT: `fast_path_skips + cas_attempts == T*C`, `wins == C`,
//!   `cas_failures == cas_attempts - wins`.
//! * Gatekeeper: exactly `T*C` fetch-adds, `wins == C`, no skips; the
//!   per-round reset pass counts `C` re-arms.
//! * Gatekeeper-skip: `fast_path_skips + gatekeeper_rmws == T*C`.
//! * Lock: every claim acquires (`lock_acquisitions == T*C`), `wins == C`.
//! * Priority: every offer either skips or improves
//!   (`fast_path_skips + wins == T*C`), CAS attempts decompose into
//!   `wins + cas_failures`.
//! * Naive: every claimant "wins" (`wins == T*C`) — the broken-CW baseline.

use pram_core::{
    CasLtArray, GatekeeperArray, GatekeeperSkipArray, LockArray, NaiveArbiter, PriorityArray,
    Round, RoundReport, SliceArbiter,
};
use pram_exec::{PoolConfig, ThreadPool, WorkerCtx};

/// Team size (claimants per cell).
const T: usize = 4;
/// Cells per arbiter, divisible by `T` so the reset pass splits evenly.
const C: usize = 8;
/// Rounds per run.
const R: u32 = 4;

/// Run `R` fully contended rounds of `body` on a telemetry pool and hand
/// back the drained report, with the round/label framing pre-checked.
fn collect(label: &'static str, body: impl Fn(&WorkerCtx<'_>, Round) + Sync) -> RoundReport {
    let pool = ThreadPool::with_config(PoolConfig::new(T).telemetry(true));
    pool.run(|ctx| {
        let c = ctx.converge_rounds(R + 4, |round, flag| {
            ctx.annotate_round(label);
            body(ctx, round);
            if round.get() < R {
                flag.set();
            }
        });
        assert_eq!(c.rounds, R);
    });
    let report = pool.take_round_report();
    assert_eq!(report.threads, T);
    assert_eq!(report.rounds.len(), R as usize, "{label}");
    for (i, r) in report.rounds.iter().enumerate() {
        assert_eq!(r.round as usize, i, "{label}");
        assert_eq!(r.label, label);
    }
    report
}

/// Every member claims every cell: `T` claimants per cell per round.
fn claim_all(arb: &impl SliceArbiter, round: Round) {
    for i in 0..C {
        arb.try_claim(i, round);
    }
}

/// Parallel per-round reset: wait for the round's claims, then re-arm a
/// disjoint share of the cells from each member (the documented
/// [`SliceArbiter::reset_range`] pattern).
fn reset_share(ctx: &WorkerCtx<'_>, arb: &impl SliceArbiter) {
    ctx.barrier();
    let per = C / T;
    let t = ctx.thread_id();
    arb.reset_range(t * per..(t + 1) * per);
}

#[test]
fn caslt_pool_conservation() {
    let arb = CasLtArray::new(C);
    let report = collect("caslt", |_, round| claim_all(&arb, round));
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(cw.wins, c, "round {i}: one winner per cell");
        assert_eq!(
            cw.fast_path_skips + cw.cas_attempts,
            t * c,
            "round {i}: every claim skips or CASes"
        );
        assert_eq!(
            cw.cas_failures,
            cw.cas_attempts - cw.wins,
            "round {i}: failed CASes are attempts minus wins"
        );
        assert_eq!(cw.resolutions(), t * c, "round {i}");
        assert_eq!(cw.gatekeeper_rmws, 0, "round {i}");
        assert_eq!(cw.lock_acquisitions, 0, "round {i}");
        assert_eq!(cw.rearm_resets, 0, "round {i}: CAS-LT re-arms free");
    }
    // The drained totals are exactly the per-round sums here: nothing ran
    // outside a round window.
    assert_eq!(report.totals_cw.wins, R as u64 * c);
    assert_eq!(
        report.totals_cw.cas_attempts,
        report.rounds.iter().map(|r| r.cw.cas_attempts).sum::<u64>()
    );
}

#[test]
fn gatekeeper_pool_conservation() {
    let arb = GatekeeperArray::new(C);
    let report = collect("gatekeeper", |ctx, round| {
        claim_all(&arb, round);
        reset_share(ctx, &arb);
    });
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(
            cw.gatekeeper_rmws,
            t * c,
            "round {i}: exactly T fetch-adds per cell"
        );
        assert_eq!(cw.wins, c, "round {i}");
        assert_eq!(
            cw.fast_path_skips, 0,
            "round {i}: plain gatekeeper never skips"
        );
        assert_eq!(cw.cas_attempts, 0, "round {i}");
        assert_eq!(
            cw.rearm_resets, c,
            "round {i}: the reset pass re-arms every cell"
        );
    }
    assert_eq!(report.totals_cw.gatekeeper_rmws, R as u64 * t * c);
}

#[test]
fn gatekeeper_skip_pool_conservation() {
    let arb = GatekeeperSkipArray::new(C);
    let report = collect("gatekeeper-skip", |ctx, round| {
        claim_all(&arb, round);
        reset_share(ctx, &arb);
    });
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(
            cw.fast_path_skips + cw.gatekeeper_rmws,
            t * c,
            "round {i}: every claim skips or fetch-adds"
        );
        assert_eq!(cw.wins, c, "round {i}");
        assert!(cw.gatekeeper_rmws >= c, "round {i}: winners must RMW");
        assert_eq!(cw.rearm_resets, c, "round {i}");
    }
}

#[test]
fn lock_pool_conservation() {
    let arb = LockArray::new(C);
    let report = collect("lock", |_, round| claim_all(&arb, round));
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(cw.lock_acquisitions, t * c, "round {i}: every claim locks");
        assert_eq!(cw.wins, c, "round {i}");
        assert_eq!(cw.fast_path_skips, 0, "round {i}: no read fast path");
        assert_eq!(cw.cas_attempts, 0, "round {i}");
    }
}

#[test]
fn naive_pool_conservation() {
    let arb = NaiveArbiter::new(C);
    let report = collect("naive", |_, round| claim_all(&arb, round));
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(
            cw.wins,
            t * c,
            "round {i}: naive lets every claimant through — the counter \
             makes the broken-CW baseline visible"
        );
        assert_eq!(cw.resolutions(), 0, "round {i}: nothing arbitrates");
    }
}

#[test]
fn priority_pool_conservation() {
    let arb = PriorityArray::new(C);
    let report = collect("priority", |ctx, round| {
        let prio = ctx.thread_id() as u32;
        for i in 0..C {
            arb.offer(i, round, prio);
        }
    });
    let (t, c) = (T as u64, C as u64);
    for (i, r) in report.rounds.iter().enumerate() {
        let cw = &r.cw;
        assert_eq!(
            cw.fast_path_skips + cw.wins,
            t * c,
            "round {i}: every offer either skips or improves the cell"
        );
        assert_eq!(
            cw.cas_attempts,
            cw.wins + cw.cas_failures,
            "round {i}: CAS attempts decompose into installs and retries"
        );
        assert!(cw.wins >= c, "round {i}: each cell improves at least once");
        assert!(cw.wins <= t * c, "round {i}");
    }
}
