//! Model-checking tier for the execution substrate's synchronization:
//! the dissemination barrier and the work-stealing loop.
//!
//! Compiled (and meaningful) only under the instrumented shim:
//!
//! ```text
//! RUSTFLAGS="--cfg pram_check" cargo test -p crcw-pram --test check_sync
//! ```
//!
//! Same two families as `check_arbiters`:
//!
//! * **Soundness** — under every schedule within the bound, the
//!   dissemination barrier never releases a member before all arrive,
//!   reuses its episode-stamp flags correctly across back-to-back
//!   rendezvous, makes the `wait_with` closure visible to every released
//!   member, and elects exactly one member per episode; the stealing
//!   deques execute every index exactly once however pops and steals
//!   interleave.
//! * **Sensitivity** — the seeded bugs (a barrier one signal round short,
//!   a stealer that drops part of its stolen batch) are *found*, and the
//!   reported schedules replay to the same violations.
//!
//! Exhaustive models stay at 2 threads (the barrier episodes and the
//! per-chunk lock operations multiply scheduling points faster than the
//! claim models); 3-thread configurations go through the seeded-random
//! tier.
#![cfg(pram_check)]

use pram_check::sync_models::{BarrierLockstep, StealCoverage};
use pram_check::{
    explore_exhaustive, explore_random, replay, DroppingStealer, EarlyReleaseBarrier,
    ExploreOptions,
};
use pram_exec::{DisseminationBarrier, StealQueues, WaitPolicy};

fn opts() -> ExploreOptions {
    ExploreOptions::default()
}

/// The real barrier, configured so waits never time-park (the checker
/// parks via `park_hint`; the backoff must stay a pure spin).
fn real_barrier(threads: usize) -> DisseminationBarrier {
    DisseminationBarrier::new(threads, WaitPolicy::Active, 0)
}

/// The real stealing deques, seeded with a blocked-static partition.
fn balanced_queues(threads: usize, len: usize, chunk: usize) -> StealQueues {
    let q = StealQueues::new(threads);
    for t in 0..threads {
        q.populate(t, len, chunk);
    }
    q
}

// ---------------------------------------------------------------- soundness

#[test]
fn dissemination_barrier_exhaustive_two_threads() {
    // Two members, three episodes (wait / wait_with / wait): every
    // interleaving must respect arrival-before-release, broadcast
    // visibility, flag reuse across episodes, and one election each.
    let report = explore_exhaustive(
        || BarrierLockstep::new("dissemination-2t", real_barrier(2), 2, 3),
        &opts(),
    );
    report.assert_clean();
    assert!(
        report.complete,
        "barrier schedule tree not exhausted within {} executions",
        report.executions
    );
    assert!(report.executions > 1, "expected schedule branching");
}

#[test]
fn dissemination_barrier_random_three_threads() {
    // Three members (two signal rounds, non-trivial mod wrap) via the
    // seeded-random tier — the exhaustive tree is past the sweet spot.
    let report = explore_random(
        || BarrierLockstep::new("dissemination-3t", real_barrier(3), 3, 2),
        300,
        0xBA221E2,
        &opts(),
    );
    report.assert_clean();
    assert_eq!(report.executions, 300);
}

#[test]
fn stealing_coverage_exhaustive_two_threads() {
    // Four unit chunks across two workers: every interleaving of pops and
    // steal-half transfers must execute each index exactly once.
    let report = explore_exhaustive(
        || StealCoverage::new("stealing-2t", balanced_queues(2, 4, 1), 2, 4),
        &opts(),
    );
    report.assert_clean();
    assert!(
        report.complete,
        "stealing schedule tree not exhausted within {} executions",
        report.executions
    );
    assert!(report.executions > 1, "expected schedule branching");
}

#[test]
fn stealing_coverage_random_three_threads() {
    let report = explore_random(
        || StealCoverage::new("stealing-3t", balanced_queues(3, 9, 2), 3, 9),
        300,
        0x57EA1,
        &opts(),
    );
    report.assert_clean();
    assert_eq!(report.executions, 300);
}

// -------------------------------------------------------------- sensitivity

#[test]
fn early_release_barrier_is_detected_and_replays() {
    // One signal round short: with two members that means *zero* rounds,
    // so some schedule releases a member before its peer arrives.
    let make = || BarrierLockstep::new("early-release-2t", EarlyReleaseBarrier::new(2), 2, 2);
    let report = explore_exhaustive(make, &opts());
    let v = report
        .violation
        .expect("checker failed to find the early-release barrier bug");
    assert!(
        v.message.contains("released early") || v.message.contains("not visible"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(make, &v.schedule);
    assert!(
        replayed.violation.is_some(),
        "schedule {:?} did not reproduce: {v}",
        v.schedule
    );
}

#[test]
fn early_release_barrier_three_threads_random_tier() {
    // With three members the truncated barrier still runs one round —
    // each thread syncs with one neighbor only; the random tier must
    // find a schedule that slips a member through.
    let make = || BarrierLockstep::new("early-release-3t", EarlyReleaseBarrier::new(3), 3, 2);
    let report = explore_random(make, 500, 7, &opts());
    let v = report
        .violation
        .expect("random tier failed to find the early-release bug");
    let seed = v.seed.expect("random-tier violation must carry its seed");
    let replayed = pram_check::replay_seed(make, seed, &opts());
    assert!(
        replayed.violation.is_some(),
        "seed {seed:#x} did not replay to a violation"
    );
}

#[test]
fn dropping_stealer_is_detected_and_replays() {
    // Rich victim, empty thief: any schedule where the thief steals while
    // the victim holds ≥ 3 chunks takes a multi-chunk batch and drops all
    // but one — a dropped index the coverage check must flag.
    let make = || {
        let q = DroppingStealer::new(2);
        q.seed(0, (0..4).map(|i| i..i + 1));
        StealCoverage::new("dropping-stealer", q, 2, 4)
    };
    let report = explore_exhaustive(make, &opts());
    let v = report
        .violation
        .expect("checker failed to find the dropping-stealer bug");
    assert!(
        v.message.contains("dropped"),
        "unexpected violation: {}",
        v.message
    );
    let replayed = replay(make, &v.schedule);
    let msg = replayed
        .violation
        .unwrap_or_else(|| panic!("schedule {:?} did not reproduce: {v}", v.schedule));
    assert!(msg.contains("dropped"), "replay diverged: {msg}");
}
