//! Property tests for the PRAM virtual machine: random lock-step programs
//! run on both backends must agree (exactly for deterministic rules;
//! admissibly for arbitrary).

use pram_exec::ThreadPool;
use pram_vm::{Program, VmRule, Write};
use proptest::prelude::*;

/// A random program description: per step, per processor, an optional
/// (addr, value) write. Values are derived from (step, pid) so common-rule
/// agreement can be forced or broken deliberately by the generator.
#[derive(Debug, Clone)]
struct RandomProgram {
    mem: usize,
    /// steps[i][pid] = Some(addr) — the cell pid writes in step i.
    steps: Vec<Vec<Option<usize>>>,
}

fn arb_program() -> impl Strategy<Value = RandomProgram> {
    (2usize..8).prop_flat_map(move |mem| {
        let step = proptest::collection::vec(proptest::option::of(0..mem), 1..10);
        proptest::collection::vec(step, 1..6).prop_map(move |steps| RandomProgram { mem, steps })
    })
}

/// Build a `Program` from the description. With `agreeing = true`, every
/// writer of a cell in a step writes the same value (step * 100 + addr);
/// otherwise values depend on pid too.
fn build(desc: &RandomProgram, agreeing: bool) -> Program {
    let mut p = Program::new(desc.mem);
    for (si, step) in desc.steps.iter().enumerate() {
        let step = step.clone();
        p.step(step.len(), move |pid, _mem| match step[pid] {
            Some(addr) => {
                let value = if agreeing {
                    (si * 100 + addr) as i64
                } else {
                    (si * 1000 + pid * 10 + addr) as i64
                };
                vec![Write::new(addr, value)]
            }
            None => vec![],
        });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn common_rule_backends_agree_exactly(
        desc in arb_program(),
        threads in 1usize..5,
    ) {
        let p = build(&desc, true);
        let init = vec![0i64; desc.mem];
        let ideal = p.run_on_machine(VmRule::Common, init.clone()).unwrap();
        let pool = ThreadPool::new(threads);
        let real = p.run_threaded(VmRule::Common, init, &pool).unwrap();
        prop_assert_eq!(&ideal.mem, &real.mem);
        prop_assert_eq!(ideal.trace.depth, real.trace.depth);
        prop_assert_eq!(ideal.trace.work, real.trace.work);
        prop_assert_eq!(ideal.trace.writes_issued, real.trace.writes_issued);
        prop_assert_eq!(ideal.trace.writes_committed, real.trace.writes_committed);
        prop_assert_eq!(ideal.trace.steps_with_conflicts, real.trace.steps_with_conflicts);
    }

    #[test]
    fn priority_rule_backends_agree_exactly(
        desc in arb_program(),
        threads in 1usize..5,
    ) {
        // Min-pid priority is deterministic: exact equality required even
        // though writers disagree on values.
        let p = build(&desc, false);
        let init = vec![0i64; desc.mem];
        let ideal = p.run_on_machine(VmRule::PriorityMinPid, init.clone()).unwrap();
        let pool = ThreadPool::new(threads);
        let real = p.run_threaded(VmRule::PriorityMinPid, init, &pool).unwrap();
        prop_assert_eq!(&ideal.mem, &real.mem);
    }

    #[test]
    fn arbitrary_rule_commits_are_admissible(
        desc in arb_program(),
        threads in 1usize..5,
    ) {
        // The threaded arbitrary winner need not match the simulator's,
        // but after every step the committed value must be one some
        // processor issued. Checking the final memory: replay the steps
        // tracking, per cell, the set of values ever issued for it plus
        // the initial value.
        let p = build(&desc, false);
        let init = vec![0i64; desc.mem];
        let pool = ThreadPool::new(threads);
        let real = p.run_threaded(VmRule::Arbitrary, init, &pool).unwrap();

        let mut admissible: Vec<std::collections::HashSet<i64>> =
            (0..desc.mem).map(|_| [0i64].into_iter().collect()).collect();
        for (si, step) in desc.steps.iter().enumerate() {
            for (pid, w) in step.iter().enumerate() {
                if let Some(addr) = w {
                    admissible[*addr].insert((si * 1000 + pid * 10 + addr) as i64);
                }
            }
        }
        for (addr, value) in real.mem.iter().enumerate() {
            prop_assert!(
                admissible[addr].contains(value),
                "cell {} holds {} which was never issued", addr, value
            );
        }
        // Last-step winners: for each cell written in the final step, the
        // final value must come from that step (later steps overwrite).
        if let Some(last) = desc.steps.last() {
            let si = desc.steps.len() - 1;
            for addr in 0..desc.mem {
                let writers: Vec<usize> = last
                    .iter()
                    .enumerate()
                    .filter_map(|(pid, w)| (*w == Some(addr)).then_some(pid))
                    .collect();
                if !writers.is_empty() {
                    let ok = writers
                        .iter()
                        .any(|pid| real.mem[addr] == (si * 1000 + pid * 10 + addr) as i64);
                    prop_assert!(ok, "cell {} not owned by a final-step writer", addr);
                }
            }
        }
    }

    #[test]
    fn conflicting_common_programs_fail_on_both_backends(
        mem in 1usize..4,
        procs in 2usize..8,
    ) {
        let mut p = Program::new(mem);
        p.step(procs, move |pid, _| vec![Write::new(0, pid as i64)]);
        let init = vec![0i64; mem];
        prop_assert!(p.run_on_machine(VmRule::Common, init.clone()).is_err());
        let pool = ThreadPool::new(3);
        prop_assert!(p.run_threaded(VmRule::Common, init, &pool).is_err());
    }
}
