//! Property tests for the adaptive arbitration policy: the pure
//! hysteresis state machine (`pram_core::AdaptivePolicy`) under arbitrary
//! telemetry-delta sequences.
//!
//! Three families of properties:
//!
//! * **Determinism** — the policy is a pure function of its observation
//!   sequence: replaying the same deltas reproduces the same decisions
//!   and the same observable state, and feeding the equivalent
//!   *cumulative* totals through `observe_totals` agrees with feeding the
//!   deltas through `observe_delta`.
//! * **Bounded, spaced switching** — hysteresis and cooldown make
//!   flip-flopping impossible: consecutive switches are at least
//!   `HYSTERESIS_EPOCHS + COOLDOWN_EPOCHS` epochs apart, and the switch
//!   count never exceeds
//!   `(epochs + COOLDOWN_EPOCHS) / (HYSTERESIS_EPOCHS + COOLDOWN_EPOCHS)`.
//! * **Pinned profiles** — a pinned `WriteProfile` is never overridden:
//!   no telemetry sequence moves the delegate or produces a decision.

use pram_core::adaptive::{COOLDOWN_EPOCHS, HYSTERESIS_EPOCHS};
use pram_core::{AdaptivePolicy, CwCounters, Delegate, SwitchDecision, WriteProfile};
use proptest::prelude::*;

/// An arbitrary (but internally consistent) one-epoch counter delta:
/// failures never exceed attempts, wins never exceed resolutions.
fn delta_strategy() -> impl Strategy<Value = CwCounters> {
    (
        0u64..3000, // fast_path_skips
        0u64..3000, // cas_attempts
        0u64..3000, // cas_failures (clamped below)
        0u64..3000, // gatekeeper_rmws
        0u64..50,   // lock_acquisitions
        0u64..6000, // rearm_resets
    )
        .prop_map(|(skips, attempts, failures, rmws, locks, rearms)| {
            let cas_failures = failures.min(attempts);
            CwCounters {
                fast_path_skips: skips,
                cas_attempts: attempts,
                cas_failures,
                wins: attempts - cas_failures + rmws.min(1),
                gatekeeper_rmws: rmws,
                lock_acquisitions: locks,
                rearm_resets: rearms,
            }
        })
}

fn run_policy(
    profile: WriteProfile,
    deltas: &[CwCounters],
    cells: usize,
) -> (AdaptivePolicy, Vec<SwitchDecision>) {
    let mut policy = AdaptivePolicy::new(profile);
    let decisions = deltas
        .iter()
        .filter_map(|d| policy.observe_delta(d, cells))
        .collect();
    (policy, decisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_is_deterministic_for_any_delta_sequence(
        deltas in proptest::collection::vec(delta_strategy(), 0..40),
        cells in 1usize..5000,
    ) {
        let (p1, d1) = run_policy(WriteProfile::Auto, &deltas, cells);
        let (p2, d2) = run_policy(WriteProfile::Auto, &deltas, cells);
        prop_assert_eq!(d1, d2, "same inputs, different decisions");
        prop_assert_eq!(p1, p2, "same inputs, different final state");
    }

    #[test]
    fn totals_and_deltas_agree(
        deltas in proptest::collection::vec(delta_strategy(), 0..40),
        cells in 1usize..5000,
    ) {
        // The pool hands the policy cumulative totals; summing the deltas
        // and differencing internally must reproduce the delta-fed run.
        let (by_delta, decisions_delta) = run_policy(WriteProfile::Auto, &deltas, cells);
        let mut by_total = AdaptivePolicy::new(WriteProfile::Auto);
        let mut totals = CwCounters::default();
        let mut decisions_total = Vec::new();
        for d in &deltas {
            totals.add(d);
            decisions_total.extend(by_total.observe_totals(&totals, cells));
        }
        prop_assert_eq!(decisions_delta, decisions_total);
        prop_assert_eq!(by_delta.current(), by_total.current());
        prop_assert_eq!(by_delta.switches(), by_total.switches());
        prop_assert_eq!(by_delta.epochs(), by_total.epochs());
    }

    #[test]
    fn switches_are_bounded_and_spaced(
        deltas in proptest::collection::vec(delta_strategy(), 0..60),
        cells in 1usize..5000,
    ) {
        let (policy, decisions) = run_policy(WriteProfile::Auto, &deltas, cells);
        let epochs = deltas.len() as u32;
        prop_assert_eq!(policy.epochs(), epochs);
        prop_assert_eq!(policy.switches(), decisions.len() as u32);
        // The hysteresis + cooldown bound from the decision-table docs.
        let spacing = HYSTERESIS_EPOCHS + COOLDOWN_EPOCHS;
        prop_assert!(
            policy.switches() <= (epochs + COOLDOWN_EPOCHS) / spacing,
            "{} switches in {} epochs beats the hysteresis bound",
            policy.switches(),
            epochs
        );
        for pair in decisions.windows(2) {
            prop_assert!(
                pair[1].epoch - pair[0].epoch >= spacing,
                "flip-flop: switches at epochs {} and {} (< {spacing} apart)",
                pair[0].epoch,
                pair[1].epoch
            );
        }
        // Decisions are committed in epoch order, each a real move.
        for d in &decisions {
            prop_assert!(d.epoch >= HYSTERESIS_EPOCHS && d.epoch <= epochs);
            prop_assert!(d.from != d.to, "self-switch {d}");
        }
        // The unpinned policy only ever selects single-winner delegates.
        prop_assert!(policy.current() != Delegate::Naive);
    }

    #[test]
    fn pinned_profile_is_never_overridden(
        deltas in proptest::collection::vec(delta_strategy(), 0..60),
        cells in 1usize..5000,
    ) {
        let (policy, decisions) = run_policy(WriteProfile::CommonSingleWord, &deltas, cells);
        prop_assert!(decisions.is_empty(), "pinned profile emitted {decisions:?}");
        prop_assert_eq!(policy.current(), Delegate::Naive);
        prop_assert_eq!(policy.switches(), 0);
        prop_assert_eq!(policy.epochs(), deltas.len() as u32);

        let (policy, decisions) = run_policy(WriteProfile::ArbitraryMultiWord, &deltas, cells);
        // ArbitraryMultiWord is a *hint*, not a pin: it starts on CAS-LT
        // and may move between single-winner delegates, never to naive.
        prop_assert!(policy.current() != Delegate::Naive);
        for d in &decisions {
            prop_assert!(d.to != Delegate::Naive, "hinted profile chose naive: {d}");
        }
    }
}
