//! Integration tests for the barrier topologies under contention: heavy
//! generation reuse (≥ 1k back-to-back rendezvous on the same barrier
//! object), oversubscribed teams, mixed `wait`/`wait_with` episode
//! sequences, panic poisoning, and both wait policies — for both the
//! centralized sense-reversing barrier and the dissemination barrier,
//! driven directly and through the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use pram_exec::{
    BarrierKind, DisseminationBarrier, PoolConfig, Schedule, SpinBarrier, TeamBarrier, ThreadPool,
    WaitPolicy,
};

const KINDS: [BarrierKind; 2] = [BarrierKind::Central, BarrierKind::Dissemination];
const POLICIES: [WaitPolicy; 2] = [WaitPolicy::Active, WaitPolicy::Passive];

/// Drive `episodes` back-to-back rendezvous on one barrier object with
/// `threads` OS threads, checking after every episode that no member was
/// released before all arrived (the global arrival counter is monotone:
/// fewer than `threads * (e + 1)` arrivals after episode `e`'s barrier
/// proves an early release).
fn reuse_torture(barrier: &TeamBarrier, threads: usize, episodes: usize) {
    let arrivals = AtomicUsize::new(0);
    let elections = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let arrivals = &arrivals;
            let elections = &elections;
            s.spawn(move || {
                for e in 0..episodes {
                    arrivals.fetch_add(1, Ordering::Relaxed);
                    if barrier.wait(tid) {
                        elections.fetch_add(1, Ordering::Relaxed);
                    }
                    let seen = arrivals.load(Ordering::Relaxed);
                    assert!(
                        seen >= threads * (e + 1),
                        "episode {e}: released after {seen} arrivals, need {}",
                        threads * (e + 1)
                    );
                }
            });
        }
    });
    assert_eq!(arrivals.load(Ordering::Relaxed), threads * episodes);
    assert_eq!(elections.load(Ordering::Relaxed), episodes);
}

#[test]
fn generation_reuse_1k_rounds_both_kinds() {
    // ≥ 1k rendezvous on the same object: the central barrier's sense
    // reversal and the dissemination barrier's monotone episode stamps
    // must both survive unbounded reuse without any reset step.
    for kind in KINDS {
        let barrier = TeamBarrier::new(kind, 3, WaitPolicy::Passive, 64);
        reuse_torture(&barrier, 3, 1200);
    }
}

#[test]
fn oversubscribed_contention_both_kinds_both_policies() {
    // More threads than this box has cores (CI boxes here have very few):
    // every combination must still rendezvous correctly, with the passive
    // arm exercising the yield → park backoff escalation.
    for kind in KINDS {
        for policy in POLICIES {
            let threads = 8;
            let barrier = TeamBarrier::new(kind, threads, policy, 32);
            reuse_torture(&barrier, threads, 60);
        }
    }
}

#[test]
fn mixed_wait_and_wait_with_episodes() {
    // Alternating plain waits and closure waits on one object: the
    // broadcast slot lags on plain episodes, so the `>=`-stamp release
    // protocol must not confuse a stale broadcast for a fresh one.
    for kind in KINDS {
        let threads = 4;
        let episodes = 300usize;
        let barrier = TeamBarrier::new(kind, threads, WaitPolicy::Passive, 64);
        let stamp = AtomicU32::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let barrier = &barrier;
                let stamp = &stamp;
                s.spawn(move || {
                    for e in 0..episodes {
                        if e % 2 == 0 {
                            barrier.wait(tid);
                        } else {
                            let want = e as u32 + 1;
                            barrier.wait_with(tid, || stamp.store(want, Ordering::Relaxed));
                            // The elected member ran the closure before
                            // anyone was released.
                            assert_eq!(
                                stamp.load(Ordering::Relaxed),
                                want,
                                "{kind:?}: stale broadcast at episode {e}"
                            );
                        }
                    }
                });
            }
        });
    }
}

#[test]
fn dissemination_poison_releases_all_waiters() {
    // One member poisons instead of arriving: every parked waiter must be
    // woken and panic rather than hang.
    let threads = 4;
    let barrier = Arc::new(DisseminationBarrier::new(threads, WaitPolicy::Passive, 16));
    let panicked = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for tid in 1..threads {
            let barrier = Arc::clone(&barrier);
            let panicked = &panicked;
            s.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| barrier.wait(tid)));
                if r.is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        barrier.poison();
    });
    assert_eq!(panicked.load(Ordering::Relaxed), threads - 1);
    assert!(barrier.is_poisoned());
}

#[test]
fn central_poison_releases_all_waiters() {
    let threads = 4;
    let barrier = Arc::new(SpinBarrier::new(threads, WaitPolicy::Passive, 16));
    let panicked = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 1..threads {
            let barrier = Arc::clone(&barrier);
            let panicked = &panicked;
            s.spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| barrier.wait()));
                if r.is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        barrier.poison();
    });
    assert_eq!(panicked.load(Ordering::Relaxed), threads - 1);
    assert!(barrier.is_poisoned());
}

#[test]
fn pool_loops_correct_under_every_barrier_schedule_policy_combo() {
    // End-to-end through the pool: dependent back-to-back loops (loop 2
    // reads loop 1's writes in reverse) across the full config matrix.
    let len = 512usize;
    for kind in KINDS {
        for policy in POLICIES {
            for schedule in [Schedule::dynamic(), Schedule::stealing()] {
                let pool =
                    ThreadPool::with_config(PoolConfig::new(4).barrier(kind).wait_policy(policy));
                let a: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
                let ok = AtomicUsize::new(0);
                pool.run(|ctx| {
                    ctx.for_each(0..len, schedule, |i| {
                        a[i].store(i as u32 + 1, Ordering::Relaxed)
                    });
                    ctx.for_each(0..len, schedule, |i| {
                        if a[len - 1 - i].load(Ordering::Relaxed) == (len - i) as u32 {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                });
                assert_eq!(
                    ok.load(Ordering::Relaxed),
                    len,
                    "{kind:?}/{policy:?}/{schedule:?}"
                );
            }
        }
    }
}

#[test]
fn pool_panic_poisons_dissemination_team() {
    let pool = ThreadPool::with_config(PoolConfig::new(3).barrier(BarrierKind::Dissemination));
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(|ctx| {
            if ctx.thread_id() == 1 {
                panic!("worker failure");
            }
            ctx.barrier();
        });
    }));
    assert!(r.is_err(), "worker panic must propagate to the caller");
}
