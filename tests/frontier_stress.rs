//! Stress: frontier-centric BFS never commits a mixed `parent`/`sel_edge`
//! pair.
//!
//! The companion of `torn_writes.rs`, at kernel scale: the four-word
//! discovery write (`parent[u]`, `sel_edge[u]`, `visited[u]`, `level[u]`)
//! is exactly the multi-word structure the paper's §4 warns can commit as
//! "a structure that does not match any of the ones being written". The
//! sparse top-down expansion maximizes the hazard window — many expanders
//! race for the same high-degree targets — and the bottom-up pull moves the
//! write to a different loop shape entirely. Under every single-winner
//! method, `verify_bfs_tree` must still find each `sel_edge[u]` inside
//! parent `parent[u]`'s CSR range and targeting `u`: a mixture from two
//! writers would name an edge the parent does not own.

use pram_algos::bfs::{bfs_with_strategy, verify_bfs_levels, verify_bfs_tree, BfsStrategy};
use pram_algos::CwMethod;
use pram_exec::ThreadPool;
use pram_graph::{CsrGraph, GraphGen};

/// Repetitions per configuration; raise via STRESS_REPS for soak runs.
fn reps() -> usize {
    std::env::var("STRESS_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

fn single_winner_methods() -> impl Iterator<Item = CwMethod> {
    CwMethod::ALL.into_iter().filter(|m| m.single_winner())
}

/// Skewed R-MAT: hub vertices give thousands of concurrent claimants per
/// target in the top-down phase and dense pull rounds in the DO phase.
#[test]
fn rmat_discovery_writes_are_never_torn() {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let n = 1usize << 11;
    for rep in 0..reps() {
        let edges = GraphGen::new(0xF0 + rep as u64).rmat_standard(11, n * 8);
        let g = CsrGraph::from_edges(n, &edges, true);
        for method in single_winner_methods() {
            for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
                let r = bfs_with_strategy(&g, 0, method, strategy, &pool);
                verify_bfs_tree(&g, 0, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// A star is the worst case for claim contention: every leaf is claimed in
/// the same round, and with duplicate spokes each leaf has several distinct
/// candidate (parent, sel_edge) pairs in flight at once.
#[test]
fn star_multigraph_claims_stay_consistent() {
    let pool = ThreadPool::new(8);
    let n = 4096;
    let mut edges = GraphGen::star(n);
    edges.extend(GraphGen::star(n)); // duplicate every spoke
    let g = CsrGraph::from_edges(n, &edges, true);
    for rep in 0..reps() {
        for method in single_winner_methods() {
            for strategy in BfsStrategy::ALL {
                let r = bfs_with_strategy(&g, 0, method, strategy, &pool);
                verify_bfs_tree(&g, 0, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// Dense G(n, m) multigraphs: duplicate edges mean racing writers propose
/// *different* sel_edge values for the same (parent, child) pair, so a torn
/// commit is observable even when both writers agree on the parent.
#[test]
fn gnm_multigraph_discovery_is_single_winner() {
    let pool = ThreadPool::new(8);
    for rep in 0..reps() {
        let n = 1500;
        let edges = GraphGen::new(0xAB + rep as u64).gnm(n, n * 12);
        let g = CsrGraph::from_edges(n, &edges, true);
        for method in single_winner_methods() {
            for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
                let r = bfs_with_strategy(&g, 7, method, strategy, &pool);
                verify_bfs_tree(&g, 7, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// Naive writes stay correct on the *common*-write component (levels) even
/// under frontier strategies — the paper's reason Rodinia "works" — while
/// the tree checks are only promised by single-winner methods.
#[test]
fn naive_levels_survive_frontier_strategies() {
    let pool = ThreadPool::new(8);
    for rep in 0..reps() {
        let n = 1usize << 10;
        let edges = GraphGen::new(0x51 + rep as u64).rmat_standard(10, n * 6);
        let g = CsrGraph::from_edges(n, &edges, true);
        for strategy in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::Naive, strategy, &pool);
            verify_bfs_levels(&g, 0, &r)
                .unwrap_or_else(|e| panic!("rep {rep} naive/{strategy}: {e}"));
        }
    }
}
