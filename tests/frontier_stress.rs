//! Stress: frontier-centric BFS never commits a mixed `parent`/`sel_edge`
//! pair.
//!
//! The companion of `torn_writes.rs`, at kernel scale: the four-word
//! discovery write (`parent[u]`, `sel_edge[u]`, `visited[u]`, `level[u]`)
//! is exactly the multi-word structure the paper's §4 warns can commit as
//! "a structure that does not match any of the ones being written". The
//! sparse top-down expansion maximizes the hazard window — many expanders
//! race for the same high-degree targets — and the bottom-up pull moves the
//! write to a different loop shape entirely. Under every single-winner
//! method, `verify_bfs_tree` must still find each `sel_edge[u]` inside
//! parent `parent[u]`'s CSR range and targeting `u`: a mixture from two
//! writers would name an edge the parent does not own.

use std::collections::HashSet;

use pram_algos::bfs::{bfs_with_strategy, verify_bfs_levels, verify_bfs_tree, BfsStrategy};
use pram_algos::CwMethod;
use pram_exec::{FrontierBuffer, LocalBuffer, SpinBarrier, ThreadPool, WaitPolicy};
use pram_graph::{CsrGraph, GraphGen};

/// Repetitions per configuration; raise via STRESS_REPS for soak runs.
fn reps() -> usize {
    std::env::var("STRESS_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

fn single_winner_methods() -> impl Iterator<Item = CwMethod> {
    CwMethod::ALL.into_iter().filter(|m| m.single_winner())
}

/// Skewed R-MAT: hub vertices give thousands of concurrent claimants per
/// target in the top-down phase and dense pull rounds in the DO phase.
#[test]
fn rmat_discovery_writes_are_never_torn() {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let n = 1usize << 11;
    for rep in 0..reps() {
        let edges = GraphGen::new(0xF0 + rep as u64).rmat_standard(11, n * 8);
        let g = CsrGraph::from_edges(n, &edges, true);
        for method in single_winner_methods() {
            for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
                let r = bfs_with_strategy(&g, 0, method, strategy, &pool);
                verify_bfs_tree(&g, 0, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// A star is the worst case for claim contention: every leaf is claimed in
/// the same round, and with duplicate spokes each leaf has several distinct
/// candidate (parent, sel_edge) pairs in flight at once.
#[test]
fn star_multigraph_claims_stay_consistent() {
    let pool = ThreadPool::new(8);
    let n = 4096;
    let mut edges = GraphGen::star(n);
    edges.extend(GraphGen::star(n)); // duplicate every spoke
    let g = CsrGraph::from_edges(n, &edges, true);
    for rep in 0..reps() {
        for method in single_winner_methods() {
            for strategy in BfsStrategy::ALL {
                let r = bfs_with_strategy(&g, 0, method, strategy, &pool);
                verify_bfs_tree(&g, 0, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// Dense G(n, m) multigraphs: duplicate edges mean racing writers propose
/// *different* sel_edge values for the same (parent, child) pair, so a torn
/// commit is observable even when both writers agree on the parent.
#[test]
fn gnm_multigraph_discovery_is_single_winner() {
    let pool = ThreadPool::new(8);
    for rep in 0..reps() {
        let n = 1500;
        let edges = GraphGen::new(0xAB + rep as u64).gnm(n, n * 12);
        let g = CsrGraph::from_edges(n, &edges, true);
        for method in single_winner_methods() {
            for strategy in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
                let r = bfs_with_strategy(&g, 7, method, strategy, &pool);
                verify_bfs_tree(&g, 7, &r)
                    .unwrap_or_else(|e| panic!("rep {rep} {method}/{strategy}: {e}"));
            }
        }
    }
}

/// The worklist substrate under maximal publication contention: many
/// threads with deliberately ragged flush thresholds (1, 2, 3, …: some
/// publish on every push, some in large bursts) interleaving threshold
/// flushes with explicit mid-stream flushes. Every appended vertex must
/// appear in the shared buffer exactly once — a duplicated or dropped
/// vertex here becomes a wrong BFS frontier upstream.
#[test]
fn contended_local_buffer_flush_neither_drops_nor_duplicates() {
    let threads = 8u64;
    let per_thread = 5_000u64;
    for rep in 0..reps() as u64 {
        let fb = FrontierBuffer::with_capacity((threads * per_thread) as usize);
        std::thread::scope(|s| {
            for t in 0..threads {
                let fb = &fb;
                s.spawn(move || {
                    // Thread t flushes every t+1 pushes; also force an
                    // explicit flush at irregular points mid-stream.
                    let mut local = LocalBuffer::with_threshold(t as usize + 1);
                    for i in 0..per_thread {
                        local.push(t * per_thread + i, fb);
                        if i % (97 + t * 13 + rep) == 0 {
                            local.flush(fb);
                        }
                    }
                    local.flush(fb);
                    assert_eq!(local.staged(), 0, "flush must drain the staging buffer");
                });
            }
        });
        assert_eq!(
            fb.len(),
            (threads * per_thread) as usize,
            "rep {rep}: dropped entries"
        );
        let all = fb.to_vec();
        let distinct: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            all.len(),
            "rep {rep}: duplicated entries in the published frontier"
        );
        assert!(
            distinct.iter().all(|&x| x < threads * per_thread),
            "rep {rep}: out-of-range entry (torn publication)"
        );
    }
}

/// The frontier's reuse cycle across rounds, synchronized the way the
/// kernels do it: publish — barrier (last arriver snapshots and clears) —
/// publish again. Clearing in the `wait_with` closure is the race-free
/// slot, so every round must see exactly its own entries, for both wait
/// policies and across many reuses of the same barrier object.
#[test]
fn barrier_reuse_across_rounds_isolates_frontier_generations() {
    for policy in [WaitPolicy::Active, WaitPolicy::Passive] {
        let threads = 6u64;
        let rounds = 200u64;
        let fb = FrontierBuffer::with_capacity((threads * rounds) as usize);
        let barrier = SpinBarrier::new(threads as usize, policy, 64);
        std::thread::scope(|s| {
            for t in 0..threads {
                let fb = &fb;
                let barrier = &barrier;
                s.spawn(move || {
                    for round in 0..rounds {
                        // Round-opening rendezvous: the previous round's
                        // clear happens-before these publishes.
                        barrier.wait();
                        fb.publish(&[round * threads + t]);
                        // Round-closing rendezvous: the last arriver
                        // checks this round's frontier and recycles it.
                        barrier.wait_with(|| {
                            let mut seen = fb.to_vec();
                            seen.sort_unstable();
                            let expected: Vec<u64> =
                                (0..threads).map(|u| round * threads + u).collect();
                            assert_eq!(
                                seen, expected,
                                "round {round}: frontier polluted across reuse"
                            );
                            fb.clear();
                        });
                    }
                });
            }
        });
        assert!(fb.is_empty(), "final clear must leave the buffer empty");
        assert!(!barrier.is_poisoned());
    }
}

/// Naive writes stay correct on the *common*-write component (levels) even
/// under frontier strategies — the paper's reason Rodinia "works" — while
/// the tree checks are only promised by single-winner methods.
#[test]
fn naive_levels_survive_frontier_strategies() {
    let pool = ThreadPool::new(8);
    for rep in 0..reps() {
        let n = 1usize << 10;
        let edges = GraphGen::new(0x51 + rep as u64).rmat_standard(10, n * 6);
        let g = CsrGraph::from_edges(n, &edges, true);
        for strategy in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::Naive, strategy, &pool);
            verify_bfs_levels(&g, 0, &r)
                .unwrap_or_else(|e| panic!("rep {rep} naive/{strategy}: {e}"));
        }
    }
}
