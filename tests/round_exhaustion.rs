//! Round-space exhaustion: the documented reset-on-exhaustion contract.
//!
//! `pram_core::round` promises: rounds are strictly increasing nonzero
//! `u32`s; [`RoundCounter::next_round`] returns `None` once `u32::MAX` has
//! been issued; after that the program must reset every arbitration array
//! used with the counter (`reset` / `reset_all`) and start a new epoch.
//! These tests drive the CAS-LT cells and arrays right through the
//! boundary and pin each clause:
//!
//! * the boundary round `Round::LAST` still arbitrates correctly (one
//!   winner under contention);
//! * a cell parked at `Round::LAST` is *dead* — no issuable round can ever
//!   claim it again — which is exactly why the reset is mandatory, not an
//!   optimization;
//! * after the epoch reset, no stale claim leaks: every cell re-arms and
//!   the new epoch's `Round::FIRST` wins;
//! * the 64-bit variant (`CasLtCell64`) sails past the 32-bit boundary
//!   without any reset, which is its reason to exist.

use std::sync::atomic::{AtomicUsize, Ordering};

use pram_core::{
    AlwaysRmwCasLtArray, Arbiter, CasLtArray, CasLtCell, CasLtCell64, PaddedCasLtArray, Round,
    RoundCounter, SliceArbiter,
};

#[test]
fn counter_and_array_cross_the_epoch_boundary() {
    let arr = CasLtArray::new(3);
    let mut counter = RoundCounter::starting_at(u32::MAX - 2);

    // Issue the last three rounds of the epoch; each claims normally.
    for _ in 0..3 {
        let r = counter.next_round().expect("rounds remain in this epoch");
        for i in 0..3 {
            assert!(arr.try_claim(i, r), "cell {i} must win fresh round {r}");
            assert!(!arr.try_claim(i, r), "cell {i} must lose repeat claim");
        }
    }
    assert_eq!(arr.last_claimed(0), Some(Round::LAST));

    // The space is exhausted: no more rounds, and the counter says so
    // persistently.
    assert_eq!(counter.next_round(), None);
    assert_eq!(counter.next_round(), None);
    assert_eq!(counter.peek(), None);

    // The documented recovery: reset the arrays, start a new epoch.
    let mut resets = 0;
    let r = counter.next_round_or_reset(|| {
        arr.reset_all();
        resets += 1;
    });
    assert_eq!(resets, 1, "reset closure must run exactly once");
    assert_eq!(r, Round::FIRST, "a fresh epoch restarts at the first round");
    assert_eq!(counter.epochs(), 1);
    for i in 0..3 {
        assert_eq!(arr.last_claimed(i), None, "cell {i} must be never-claimed");
        assert!(arr.try_claim(i, r), "cell {i} must re-arm after the reset");
    }
}

#[test]
fn cell_at_round_last_is_dead_without_reset() {
    // Pin the *reason* the reset is mandatory: CAS-LT re-arms by issuing a
    // larger round, and no issuable round exceeds Round::LAST. A cell
    // claimed at the boundary rejects every round of a would-be next epoch
    // until it is explicitly reset.
    let mut cell = CasLtCell::new();
    assert!(cell.try_claim(Round::LAST));
    for r in [Round::FIRST, Round::from_iteration(1000), Round::LAST] {
        assert!(
            !cell.try_claim(r),
            "claim with {r:?} must lose against a cell parked at LAST"
        );
    }
    assert_eq!(cell.last_claimed(), Some(Round::LAST));

    cell.reset();
    assert_eq!(cell.last_claimed(), None);
    assert!(cell.try_claim(Round::FIRST), "reset must re-arm the cell");

    // The shared-access reset (parallel epoch-reset passes) is equivalent.
    let cell = CasLtCell::new();
    assert!(cell.try_claim(Round::LAST));
    cell.reset_shared();
    assert!(cell.try_claim(Round::FIRST));
}

#[test]
fn boundary_round_still_arbitrates_exactly_one_winner() {
    // Exhaustion must not weaken arbitration at the edge: Round::LAST is a
    // round like any other for the single-winner contract.
    let arr = CasLtArray::new(1);
    let wins = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                if arr.try_claim(0, Round::LAST) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), 1);
}

#[test]
fn every_caslt_variant_honors_the_epoch_reset_contract() {
    // The contract is per-trait, not per-type: packed, padded, and
    // always-RMW variants all go dead at LAST and recover via reset_all.
    fn check<A: SliceArbiter>(name: &str, arr: A) {
        assert!(arr.try_claim(0, Round::LAST), "{name}: boundary claim");
        assert!(
            !arr.try_claim(0, Round::FIRST),
            "{name}: stale epoch round must lose before reset"
        );
        arr.reset_all();
        assert!(
            arr.try_claim(0, Round::FIRST),
            "{name}: reset_all must re-arm"
        );
    }
    check("caslt", CasLtArray::new(1));
    check("caslt-padded", PaddedCasLtArray::new(1));
    check("caslt-always-rmw", AlwaysRmwCasLtArray::new(1));
}

#[test]
fn epoch_cycles_repeat_indefinitely() {
    // Several consecutive exhaust-reset cycles: the counter's epoch count
    // advances and arbitration is fresh each time.
    let arr = CasLtArray::new(2);
    let mut counter = RoundCounter::starting_at(u32::MAX);
    for epoch in 1..=3u64 {
        let r = counter.next_round_or_reset(|| arr.reset_all());
        assert!(arr.try_claim(0, r), "epoch {epoch}: first claim wins");
        assert!(!arr.try_claim(0, r), "epoch {epoch}: second claim loses");
        // Exhaust the epoch instantly by jumping the counter to the edge.
        counter = RoundCounter::starting_at(u32::MAX);
        let last = counter.next_round().unwrap();
        assert_eq!(last, Round::LAST);
        assert!(arr.try_claim(1, last));
        assert_eq!(counter.next_round(), None);
    }
}

#[test]
fn wide_cell_crosses_the_32bit_boundary_without_reset() {
    // CasLtCell64 exists precisely so exhaustion never happens in
    // practice: the round after u32::MAX is just another round.
    let cell = CasLtCell64::new();
    let boundary = u64::from(u32::MAX);
    assert!(cell.try_claim_wide(boundary));
    assert!(!cell.try_claim_wide(boundary));
    assert!(
        cell.try_claim_wide(boundary + 1),
        "64-bit rounds must re-arm past the 32-bit edge with no reset"
    );
    assert_eq!(cell.last_claimed_wide(), boundary + 1);

    // The 32-bit Round interface maps into the low end of the wide space.
    let cell = CasLtCell64::new();
    assert!(Arbiter::try_claim(&cell, Round::LAST));
    assert!(cell.try_claim_wide(Round::LAST.widen() + 1));
}
