//! Property tests for the extension kernels: tournament reduction, list
//! ranking, and maximal matching, plus the agreement between the CRCW and
//! EREW maximum implementations.

use pram_algos::list_rank::{list_rank, list_rank_serial, random_list};
use pram_algos::matching::{maximal_matching, verify_matching};
use pram_algos::reduce::{max_index_tournament, sum_tournament};
use pram_algos::{max_index, CwMethod};
use pram_exec::ThreadPool;
use pram_graph::{serial, CsrGraph, GraphGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn tournament_and_crcw_max_always_agree(
        values in proptest::collection::vec(any::<u64>(), 1..150),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let expect = serial::max_index_paper_tiebreak(&values);
        prop_assert_eq!(max_index_tournament(&values, &pool), expect);
        prop_assert_eq!(max_index(&values, CwMethod::CasLt, &pool), expect);
    }

    #[test]
    fn sum_tournament_matches_wrapping_sum(
        values in proptest::collection::vec(any::<u64>(), 0..200),
        threads in 1usize..4,
    ) {
        let pool = ThreadPool::new(threads);
        let expect = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(sum_tournament(&values, &pool), expect);
    }

    #[test]
    fn list_rank_matches_serial_on_random_lists(
        n in 1usize..300,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let (next, head) = random_list(n, seed);
        let got = list_rank(&next, &pool);
        prop_assert_eq!(&got, &list_rank_serial(&next));
        prop_assert_eq!(got[head as usize], n as u32 - 1);
    }

    #[test]
    fn list_rank_handles_forests_of_chains(
        chains in proptest::collection::vec(1usize..30, 1..8),
        threads in 1usize..4,
    ) {
        // Build several disjoint chains laid out consecutively.
        let mut next = Vec::new();
        for &len in &chains {
            let base = next.len() as u32;
            for i in 0..len as u32 {
                next.push(if i + 1 < len as u32 { base + i + 1 } else { base + i });
            }
        }
        let pool = ThreadPool::new(threads);
        prop_assert_eq!(list_rank(&next, &pool), list_rank_serial(&next));
    }

    #[test]
    fn matching_is_valid_and_maximal_on_random_graphs(
        seed in any::<u64>(),
        n in 2usize..80,
        density in 0usize..5,
        threads in 1usize..5,
    ) {
        let edges = GraphGen::new(seed).gnm(n, n * density);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(threads);
        for m in [CwMethod::CasLt, CwMethod::Gatekeeper, CwMethod::Lock] {
            let r = maximal_matching(&g, m, &pool);
            prop_assert!(
                verify_matching(&g, &r).is_ok(),
                "{}: {}", m, verify_matching(&g, &r).unwrap_err()
            );
        }
    }

    #[test]
    fn matching_pairs_at_least_half_of_any_maximal(
        seed in any::<u64>(),
        n in 2usize..60,
    ) {
        // Any maximal matching is a 2-approximation of maximum: comparing
        // two independently computed maximal matchings, neither can be
        // more than twice the other.
        let edges = GraphGen::new(seed).gnm(n, n * 2);
        let g = CsrGraph::from_edges(n, &edges, true);
        let pool = ThreadPool::new(3);
        let a = maximal_matching(&g, CwMethod::CasLt, &pool);
        let b = maximal_matching(&g, CwMethod::Lock, &pool);
        prop_assert!(a.pairs <= 2 * b.pairs.max(1) || b.pairs == 0);
        prop_assert!(b.pairs <= 2 * a.pairs.max(1) || a.pairs == 0);
    }
}
