//! Model-checking tier for the adaptive arbitration switcher.
//!
//! Compiled (and meaningful) only under the instrumented shim:
//!
//! ```text
//! RUSTFLAGS="--cfg pram_check" cargo test -p crcw-pram --test check_adaptive
//! ```
//!
//! Two families of assertions, mirroring `check_arbiters.rs`:
//!
//! * **Soundness of the switch protocol** — `pram_core::AdaptiveArbiter`
//!   keeps the single-winner invariant under every schedule within the
//!   bound, both while delegating statically and across epoch-boundary
//!   delegate switches (CAS-LT → gatekeeper → CAS-LT, including the
//!   stale-claim-state re-entry that the strictly-increasing round
//!   discipline makes safe). A switch at an epoch boundary loses no round:
//!   every phase still elects exactly one winner.
//! * **Sensitivity to broken switching** — the seeded
//!   `pram_check::BuggySwitchArbiter`, which migrates delegate state
//!   mid-round with no barrier, is *detected* by both the exhaustive and
//!   the seeded-random tiers, and the reported schedule/seed replays to
//!   the same violation. A pinned `WriteProfile::CommonSingleWord` (naive
//!   delegate) is likewise seen through the delegation layer.
#![cfg(pram_check)]

use pram_check::models::{EpochSwitch, Model, PerCellSingleWinner, SingleRoundWinner};
use pram_check::{
    explore_exhaustive, explore_random, replay, BuggySwitchArbiter, ExploreOptions, Violation,
};
use pram_core::{AdaptiveArbiter, Round, WriteProfile};

const THREADS: usize = 3;

fn opts() -> ExploreOptions {
    ExploreOptions::default()
}

/// Assert that exploration finds a violation and that its recorded
/// schedule deterministically replays to a violation.
fn assert_violation_found_and_replayable<M: Model>(
    report_violation: Option<Violation>,
    make_model: impl FnMut() -> M,
    expect_in_message: &str,
) -> Violation {
    let v = report_violation.expect("checker failed to find the seeded violation");
    assert!(
        v.message.contains(expect_in_message),
        "unexpected violation message: {}",
        v.message
    );
    let replayed = replay(make_model, &v.schedule);
    let msg = replayed
        .violation
        .unwrap_or_else(|| panic!("replaying schedule {:?} did not reproduce: {v}", v.schedule));
    assert!(
        msg.contains(expect_in_message),
        "replay produced a different violation: {msg}"
    );
    v
}

// ---------------------------------------------------------------- soundness

#[test]
fn adaptive_default_delegate_single_winner_exhaustive() {
    // Static behaviour first: before any switch, the adaptive arbiter is
    // its CAS-LT delegate plus one active-delegate load per claim.
    let report = explore_exhaustive(
        || {
            SingleRoundWinner::new(
                "adaptive-caslt",
                AdaptiveArbiter::new(1),
                THREADS,
                Round::FIRST,
            )
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete, "schedule tree not exhausted");
    assert!(report.executions > 1, "expected schedule branching");
}

#[test]
fn adaptive_epoch_switch_loses_no_round_exhaustive() {
    // The headline property: a delegate switch confined to the epoch
    // boundary (sequential glue == the elected member's barrier slot)
    // preserves exactly-one-winner in every phase, under every schedule —
    // including claims re-entering stale CAS-LT state after the
    // gatekeeper detour.
    let report = explore_exhaustive(|| EpochSwitch::new(2), &opts());
    report.assert_clean();
    assert!(report.complete, "epoch-switch tree not exhausted");
    assert!(report.executions > 1, "expected schedule branching");
}

#[test]
fn adaptive_fanned_out_cells_single_winner_exhaustive() {
    // Multi-cell fan-out (the shape the buggy switcher breaks) is clean
    // on the real adaptive arbiter: no switch can happen mid-round.
    let report = explore_exhaustive(
        || {
            PerCellSingleWinner::new(
                "adaptive-fanout",
                AdaptiveArbiter::new(2),
                vec![0, 1, 1],
                Round::FIRST,
            )
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete);
}

// -------------------------------------------------------------- sensitivity

fn buggy_switch_model() -> PerCellSingleWinner<BuggySwitchArbiter> {
    // Thread 0 trips the switch by winning cell 0; threads 1 and 2 race
    // cell 1 — one can land a CAS-LT claim the migration already copied
    // over as "unclaimed", the other then re-wins the same (cell, round)
    // through the fresh gatekeeper counter.
    PerCellSingleWinner::new(
        "buggy-mid-round-switch",
        BuggySwitchArbiter::new(2, 1),
        vec![0, 1, 1],
        Round::FIRST,
    )
}

#[test]
fn buggy_mid_round_switch_is_detected_exhaustive() {
    let report = explore_exhaustive(buggy_switch_model, &opts());
    let v = assert_violation_found_and_replayable(report.violation, buggy_switch_model, "winner");
    assert_eq!(v.model, "buggy-mid-round-switch");
    // The losing interleaving needs the migration to overtake an
    // in-flight claim, so the failing schedule must interleave threads.
    assert!(v.schedule.len() >= 2, "suspicious trivial schedule: {v}");
}

#[test]
fn buggy_mid_round_switch_is_detected_by_random_tier() {
    let report = explore_random(buggy_switch_model, 500, 1, &opts());
    let v = report
        .violation
        .expect("random tier failed to find the seeded violation");
    let seed = v.seed.expect("random-tier violation must carry its seed");
    let replayed = pram_check::replay_seed(buggy_switch_model, seed, &opts());
    assert!(
        replayed.violation.is_some(),
        "seed {seed:#x} did not replay to a violation"
    );
}

#[test]
fn pinned_naive_profile_multi_winner_is_detected() {
    // The checker sees through the delegation layer: pinning the
    // common-single-word profile makes the adaptive arbiter a naive one,
    // and the multi-winner schedules of naive writes are found as usual.
    let make = || {
        SingleRoundWinner::new(
            "adaptive-pinned-naive",
            AdaptiveArbiter::with_profile(1, WriteProfile::CommonSingleWord),
            THREADS,
            Round::FIRST,
        )
    };
    let report = explore_exhaustive(make, &opts());
    let v = assert_violation_found_and_replayable(report.violation, make, "winner");
    assert_eq!(v.model, "adaptive-pinned-naive");
}
