//! Model-checking tier for the telemetry subsystem: the instrumentation
//! must be *passive* (it may add scheduling points, never change an
//! arbitration outcome) and the counters must be *accurate* (the
//! per-method conservation invariants hold on every schedule, not just
//! the ones OS threads happen to produce).
//!
//! Compiled (and meaningful) only under the instrumented shim:
//!
//! ```text
//! RUSTFLAGS="--cfg pram_check" cargo test -p crcw-pram --test check_telemetry
//! ```
//!
//! Three families of assertions:
//!
//! * **Passivity** — `TelemetryPassive` explores the same single-cell
//!   CAS-LT race with counters on and off; the reachable winner sets must
//!   be identical (every telemetry atomic routes through the
//!   `pram_core::sync` facade, so the counters-on tree really does
//!   interleave the counter increments).
//! * **Conservation under lockstep** — for each method, every exhaustive
//!   schedule of a fully contended round satisfies the method's counter
//!   identity (e.g. `fast_path_skips + cas_attempts == T` for CAS-LT).
//! * **Sensitivity** — the seeded `CountingClaimCell`, whose claim
//!   *consults a counter read* instead of capturing it atomically, is
//!   caught by both tiers and its schedule/seed replays.
#![cfg(pram_check)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pram_check::models::{Model, SingleRoundWinner, TelemetryPassive};
use pram_check::{
    explore_exhaustive, explore_random, replay, CountingClaimCell, ExploreOptions, Violation,
};
use pram_core::{
    CasLtArray, CwCounters, CwTelemetry, GatekeeperArray, GatekeeperSkipArray, LockArray,
    NaiveArbiter, PriorityCell, Round, ShardGuard, SliceArbiter,
};

/// Two threads: the ISSUE-mandated bound for the passivity sweep, and
/// enough for every load/CAS (and load/store) race.
const THREADS: usize = 2;

fn opts() -> ExploreOptions {
    ExploreOptions::default()
}

/// Assert that exploration finds a violation and that its recorded
/// schedule deterministically replays to a violation.
fn assert_violation_found_and_replayable<M: Model>(
    report_violation: Option<Violation>,
    make_model: impl FnMut() -> M,
    expect_in_message: &str,
) -> Violation {
    let v = report_violation.expect("checker failed to find the seeded violation");
    assert!(
        v.message.contains(expect_in_message),
        "unexpected violation message: {}",
        v.message
    );
    let replayed = replay(make_model, &v.schedule);
    let msg = replayed
        .violation
        .unwrap_or_else(|| panic!("replaying schedule {:?} did not reproduce: {v}", v.schedule));
    assert!(
        msg.contains(expect_in_message),
        "replay produced a different violation: {msg}"
    );
    v
}

// --------------------------------------------------------------- passivity

/// Explore one `TelemetryPassive` variant exhaustively and return the set
/// of winners reachable across all schedules.
fn reachable_winners(counters_on: bool) -> BTreeSet<usize> {
    let outcomes = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = explore_exhaustive(
        move || TelemetryPassive::new(THREADS, Round::FIRST, counters_on, Arc::clone(&sink)),
        &opts(),
    );
    report.assert_clean();
    assert!(
        report.complete,
        "counters_on={counters_on}: tree not exhausted in {} executions",
        report.executions
    );
    assert!(report.executions > 1, "expected schedule branching");
    let set = outcomes.lock().unwrap().clone();
    set
}

#[test]
fn telemetry_is_passive_across_exhaustive_schedules() {
    let with_counters = reachable_winners(true);
    let without_counters = reachable_winners(false);
    assert!(
        !without_counters.is_empty(),
        "baseline exploration produced no outcomes"
    );
    assert_eq!(
        with_counters, without_counters,
        "recording counters changed the reachable arbitration outcomes"
    );
    // Sanity: the race is genuinely schedule-dependent — both claimants
    // can win on a fresh cell, so passivity is a non-trivial statement.
    assert_eq!(without_counters, (0..THREADS).collect::<BTreeSet<_>>());
}

// ------------------------------------------------- conservation (lockstep)

/// A fully contended single-cell round under lockstep exploration, with
/// every thread's claims recorded into its own telemetry shard and a
/// per-execution counter identity checked at the end.
struct LockstepConservation<R, C> {
    name: &'static str,
    telem: CwTelemetry,
    threads: usize,
    /// Claim body for thread `tid` (the telemetry guard is installed).
    claim: R,
    /// Counter identity over the execution's totals.
    check: C,
}

impl<R, C> LockstepConservation<R, C>
where
    R: Fn(usize) + Sync,
    C: Fn(&CwCounters) -> Result<(), String> + Sync,
{
    fn new(name: &'static str, threads: usize, claim: R, check: C) -> Self {
        LockstepConservation {
            name,
            telem: CwTelemetry::new(threads),
            threads,
            claim,
            check,
        }
    }
}

impl<R, C> Model for LockstepConservation<R, C>
where
    R: Fn(usize) + Sync,
    C: Fn(&CwCounters) -> Result<(), String> + Sync,
{
    fn name(&self) -> &str {
        self.name
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn run(&self, _phase: usize, tid: usize) {
        let _guard = ShardGuard::install(self.telem.shard(tid));
        (self.claim)(tid);
    }
    fn check_final(&self) -> Result<(), String> {
        (self.check)(&self.telem.totals())
    }
}

fn assert_conservation_exhaustive<R, C>(name: &'static str, make: impl Fn() -> (R, C))
where
    R: Fn(usize) + Sync,
    C: Fn(&CwCounters) -> Result<(), String> + Sync,
{
    let report = explore_exhaustive(
        || {
            let (claim, check) = make();
            LockstepConservation::new(name, THREADS, claim, check)
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete, "{name}: tree not exhausted");
    assert!(report.executions > 1, "{name}: expected branching");
}

fn expect(cond: bool, msg: String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg)
    }
}

#[test]
fn caslt_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("caslt-conservation", move || {
        let arb = Arc::new(CasLtArray::new(1));
        let a = Arc::clone(&arb);
        (
            move |_tid: usize| {
                a.try_claim(0, Round::FIRST);
            },
            move |c: &CwCounters| {
                expect(
                    c.fast_path_skips + c.cas_attempts == t,
                    format!(
                        "skips {} + cas {} != {t} claims",
                        c.fast_path_skips, c.cas_attempts
                    ),
                )?;
                expect(c.wins == 1, format!("wins {} != 1", c.wins))?;
                expect(
                    c.cas_failures == c.cas_attempts - c.wins,
                    format!(
                        "cas_failures {} != cas_attempts {} - wins {}",
                        c.cas_failures, c.cas_attempts, c.wins
                    ),
                )
            },
        )
    });
}

#[test]
fn gatekeeper_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("gatekeeper-conservation", move || {
        let arb = Arc::new(GatekeeperArray::new(1));
        let a = Arc::clone(&arb);
        (
            move |_tid: usize| {
                a.try_claim(0, Round::FIRST);
            },
            move |c: &CwCounters| {
                expect(
                    c.gatekeeper_rmws == t,
                    format!(
                        "gatekeeper must fetch-add exactly {t} times, counted {}",
                        c.gatekeeper_rmws
                    ),
                )?;
                expect(c.wins == 1, format!("wins {} != 1", c.wins))?;
                expect(
                    c.fast_path_skips == 0,
                    format!(
                        "plain gatekeeper never skips, counted {}",
                        c.fast_path_skips
                    ),
                )
            },
        )
    });
}

#[test]
fn gatekeeper_skip_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("gatekeeper-skip-conservation", move || {
        let arb = Arc::new(GatekeeperSkipArray::new(1));
        let a = Arc::clone(&arb);
        (
            move |_tid: usize| {
                a.try_claim(0, Round::FIRST);
            },
            move |c: &CwCounters| {
                expect(
                    c.fast_path_skips + c.gatekeeper_rmws == t,
                    format!(
                        "skips {} + rmws {} != {t} claims",
                        c.fast_path_skips, c.gatekeeper_rmws
                    ),
                )?;
                expect(c.wins == 1, format!("wins {} != 1", c.wins))
            },
        )
    });
}

#[test]
fn lock_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("lock-conservation", move || {
        let arb = Arc::new(LockArray::new(1));
        let a = Arc::clone(&arb);
        (
            move |_tid: usize| {
                a.try_claim(0, Round::FIRST);
            },
            move |c: &CwCounters| {
                expect(
                    c.lock_acquisitions == t,
                    format!(
                        "every claim locks: acquisitions {} != {t}",
                        c.lock_acquisitions
                    ),
                )?;
                expect(c.wins == 1, format!("wins {} != 1", c.wins))
            },
        )
    });
}

#[test]
fn naive_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("naive-conservation", move || {
        let arb = Arc::new(NaiveArbiter::new(1));
        let a = Arc::clone(&arb);
        (
            move |_tid: usize| {
                a.try_claim(0, Round::FIRST);
            },
            move |c: &CwCounters| {
                expect(
                    c.wins == t,
                    format!("naive: every claimant wins, counted {} of {t}", c.wins),
                )
            },
        )
    });
}

#[test]
fn priority_conservation_exhaustive() {
    let t = THREADS as u64;
    assert_conservation_exhaustive("priority-conservation", move || {
        let cell = Arc::new(PriorityCell::new());
        let c2 = Arc::clone(&cell);
        (
            move |tid: usize| {
                c2.offer(Round::FIRST, tid as u32);
            },
            move |c: &CwCounters| {
                expect(
                    c.fast_path_skips + c.wins == t,
                    format!(
                        "every offer skips or improves: skips {} + wins {} != {t}",
                        c.fast_path_skips, c.wins
                    ),
                )?;
                expect(
                    c.cas_attempts == c.wins + c.cas_failures,
                    format!(
                        "cas_attempts {} != wins {} + cas_failures {}",
                        c.cas_attempts, c.wins, c.cas_failures
                    ),
                )?;
                expect(c.wins >= 1, "someone must improve a fresh cell".to_string())
            },
        )
    });
}

/// Two fully contended gatekeeper rounds separated by an instrumented
/// reset pass: the re-arm counter must see exactly one count per cell,
/// and the RMW/win identities must hold across both phases.
struct RearmConservation {
    telem: CwTelemetry,
    arb: GatekeeperArray,
    threads: usize,
}

impl Model for RearmConservation {
    fn name(&self) -> &str {
        "gatekeeper-rearm-conservation"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn phases(&self) -> usize {
        2
    }
    fn run(&self, _phase: usize, tid: usize) {
        let _guard = ShardGuard::install(self.telem.shard(tid));
        self.arb.try_claim(0, Round::FIRST);
    }
    fn after_phase(&mut self, phase: usize) -> Result<(), String> {
        if phase == 0 {
            // The reset pass is sequential glue (a real kernel resets
            // between rounds); attribute it to shard 0.
            let _guard = ShardGuard::install(self.telem.shard(0));
            self.arb.reset_all();
        }
        Ok(())
    }
    fn check_final(&self) -> Result<(), String> {
        let c = self.telem.totals();
        let claims = 2 * self.threads as u64;
        expect(
            c.gatekeeper_rmws == claims,
            format!(
                "rmws {} != {claims} claims over two phases",
                c.gatekeeper_rmws
            ),
        )?;
        expect(
            c.wins == 2,
            format!("one winner per phase expected, counted {}", c.wins),
        )?;
        expect(
            c.rearm_resets == 3,
            format!(
                "reset_all over 3 cells must count 3 re-arms, counted {}",
                c.rearm_resets
            ),
        )
    }
}

#[test]
fn rearm_reset_counting_under_lockstep() {
    let report = explore_exhaustive(
        || RearmConservation {
            telem: CwTelemetry::new(THREADS),
            arb: GatekeeperArray::new(3),
            threads: THREADS,
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete, "rearm model: tree not exhausted");
}

// ------------------------------------------------------------- sensitivity

#[test]
fn counting_claim_cell_double_winner_is_detected_exhaustive() {
    let make = || {
        SingleRoundWinner::new(
            "counting-claim",
            CountingClaimCell::new(),
            THREADS + 1, // an observer thread deepens the interleavings
            Round::FIRST,
        )
    };
    let report = explore_exhaustive(make, &opts());
    let v = assert_violation_found_and_replayable(report.violation, make, "winner");
    assert_eq!(v.model, "counting-claim");
    assert!(v.schedule.len() >= 2, "suspicious trivial schedule: {v}");
}

#[test]
fn counting_claim_cell_is_detected_by_random_tier() {
    let make = || {
        SingleRoundWinner::new(
            "counting-claim-random",
            CountingClaimCell::new(),
            4,
            Round::FIRST,
        )
    };
    let report = explore_random(make, 500, 7, &opts());
    let v = report
        .violation
        .expect("random tier failed to find the counter-as-claim bug");
    let seed = v.seed.expect("random-tier violation must carry its seed");
    let replayed = pram_check::replay_seed(make, seed, &opts());
    assert!(
        replayed.violation.is_some(),
        "seed {seed:#x} did not replay to a violation"
    );
}

#[test]
fn counting_claim_cell_also_undercounts() {
    // The same seeded bug breaks the conservation identity the real
    // gatekeeper satisfies: interleaved load/store pairs lose increments,
    // so `count < claims` on some schedule. This is the counter-accuracy
    // face of the bug (two winners is its arbitration face).
    let undercounts = Arc::new(AtomicUsize::new(0));
    let sink = Arc::clone(&undercounts);
    struct CountCheck {
        cell: CountingClaimCell,
        threads: usize,
        sink: Arc<AtomicUsize>,
    }
    impl Model for CountCheck {
        fn name(&self) -> &str {
            "counting-claim-undercount"
        }
        fn threads(&self) -> usize {
            self.threads
        }
        fn run(&self, _phase: usize, _tid: usize) {
            self.cell.try_claim_once();
        }
        fn check_final(&self) -> Result<(), String> {
            if (self.cell.count() as usize) < self.threads {
                self.sink.fetch_add(1, Ordering::Relaxed);
            }
            Ok(()) // counting executions, not failing them
        }
    }
    let report = explore_exhaustive(
        move || CountCheck {
            cell: CountingClaimCell::new(),
            threads: THREADS,
            sink: Arc::clone(&sink),
        },
        &opts(),
    );
    report.assert_clean();
    assert!(report.complete);
    assert!(
        undercounts.load(Ordering::Relaxed) > 0,
        "no schedule lost an increment — the seeded bug is not reachable?"
    );
}
