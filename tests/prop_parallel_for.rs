//! Property tests for the execution substrate: every scheduling policy
//! must execute every index exactly once, for any (length, team, chunk)
//! configuration, and the lock-step convergence driver must behave like
//! its sequential model.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use pram_exec::{PoolConfig, Schedule, ThreadPool, WaitPolicy};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..9).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..9).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..9).prop_map(|c| Schedule::Guided { min_chunk: c }),
        (1usize..9).prop_map(|c| Schedule::Stealing { chunk: c }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_index_executes_exactly_once(
        threads in 1usize..7,
        len in 0usize..400,
        schedule in arb_schedule(),
    ) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..len, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} under {:?}", i, schedule);
        }
    }

    #[test]
    fn consecutive_loops_with_different_schedules_compose(
        threads in 1usize..6,
        len in 1usize..200,
        s1 in arb_schedule(),
        s2 in arb_schedule(),
    ) {
        // Loop 2 reads what loop 1 wrote, in reverse — correct only if the
        // implicit barrier between them is airtight.
        let pool = ThreadPool::new(threads);
        let a: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        let ok = AtomicUsize::new(0);
        pool.run(|ctx| {
            ctx.for_each(0..len, s1, |i| a[i].store(i as u32 + 1, Ordering::Relaxed));
            ctx.for_each(0..len, s2, |i| {
                if a[len - 1 - i].load(Ordering::Relaxed) == (len - i) as u32 {
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        prop_assert_eq!(ok.load(Ordering::Relaxed), len);
    }

    #[test]
    fn converge_rounds_matches_sequential_model(
        threads in 1usize..6,
        change_for in 0u32..12,
        max_rounds in 0u32..16,
    ) {
        // Model: round i changes iff i <= change_for; the loop must run
        // min(change_for + 1, max_rounds) rounds and report convergence
        // iff it saw an unchanged round within the budget.
        let pool = ThreadPool::new(threads);
        let executed = AtomicU32::new(0);
        let converged = AtomicUsize::new(usize::MAX);
        pool.run(|ctx| {
            let c = ctx.converge_rounds(max_rounds, |round, flag| {
                if round.get() <= change_for {
                    flag.set();
                }
                ctx.barrier();
            });
            executed.store(c.rounds, Ordering::Relaxed);
            converged.store(usize::from(c.converged), Ordering::Relaxed);
        });
        let expect_rounds = (change_for + 1).min(max_rounds);
        prop_assert_eq!(executed.load(Ordering::Relaxed), expect_rounds);
        let expect_converged = usize::from(max_rounds > change_for && max_rounds > 0);
        prop_assert_eq!(converged.load(Ordering::Relaxed), expect_converged);
    }

    #[test]
    fn active_wait_policy_is_equivalent(
        len in 1usize..150,
        schedule in arb_schedule(),
    ) {
        // Small team to avoid oversubscribed pure spinning on tiny CI boxes.
        let pool = ThreadPool::with_config(
            PoolConfig::new(2).wait_policy(WaitPolicy::Active),
        );
        let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..len, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn stealing_covers_skewed_work_exactly_once(
        threads in 2usize..7,
        len in 1usize..400,
        chunk in 1usize..9,
        skew_pow in 0u32..6,
    ) {
        // Body cost grows with the index (2^skew_pow spins at the top end),
        // so the worker that seeded the tail runs dry last and everyone
        // else must steal — coverage must still be exactly-once.
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..len, Schedule::Stealing { chunk }, |i| {
                let spins = (i * (1usize << skew_pow)) / len.max(1);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(
                c.load(Ordering::Relaxed), 1,
                "index {} under stealing chunk {}", i, chunk
            );
        }
    }

    #[test]
    fn nested_sequence_of_regions_is_stable(
        threads in 1usize..5,
        regions in 1usize..8,
    ) {
        let pool = ThreadPool::new(threads);
        let total = AtomicU32::new(0);
        for _ in 0..regions {
            pool.run(|ctx| {
                ctx.for_each(0..threads * 3, Schedule::dynamic(), |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        prop_assert_eq!(total.load(Ordering::Relaxed) as usize, regions * threads * 3);
    }
}
