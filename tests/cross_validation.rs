//! Cross-validation: the threaded kernels against the ideal PRAM machine
//! and the serial references — the workspace's end-to-end semantic check.
//!
//! For each workload we compute the answer three ways:
//!   1. the threaded kernel on the `pram-exec` substrate (per CW method),
//!   2. the same algorithm interpreted on the `pram-sim` ideal machine,
//!   3. the serial reference in `pram-graph`,
//!
//! and require all three to agree.

use pram_algos::{bfs, connected_components, logical_or, max_index, CwMethod};
use pram_exec::ThreadPool;
use pram_graph::{serial, CsrGraph, GraphGen};
use pram_sim::programs;
use pram_sim::WriteRule;

fn pools() -> Vec<ThreadPool> {
    vec![ThreadPool::new(1), ThreadPool::new(3), ThreadPool::new(8)]
}

#[test]
fn max_agrees_across_all_three_implementations() {
    let values_u: Vec<u64> = (0..80).map(|i: u64| (i * 37) % 23).collect();
    let values_i: Vec<i64> = values_u.iter().map(|&v| v as i64).collect();

    let ideal = programs::constant_time_max(&values_i, WriteRule::Common)
        .unwrap()
        .output;
    let reference = serial::max_index_paper_tiebreak(&values_u);
    assert_eq!(ideal, reference, "ideal machine vs serial reference");

    for pool in pools() {
        for m in CwMethod::ALL {
            assert_eq!(
                max_index(&values_u, m, &pool),
                reference,
                "threaded {m} on {} threads",
                pool.num_threads()
            );
        }
    }
}

#[test]
fn bfs_agrees_across_all_three_implementations() {
    let n = 150;
    let edges = GraphGen::new(5).gnm(n, 400);
    let g = CsrGraph::from_edges(n, &edges, true);

    // Ideal machine (usize directed edge pairs).
    let directed: Vec<(usize, usize)> = g
        .directed_edges()
        .map(|(u, v)| (u as usize, v as usize))
        .collect();
    let ideal = programs::bfs_levels(n, &directed, 0, WriteRule::Common)
        .unwrap()
        .output;

    // Serial reference.
    let reference = serial::bfs_levels(&g, 0);
    for v in 0..n {
        let serial_level = reference[v];
        let ideal_level = ideal[v];
        if serial_level == u32::MAX {
            assert_eq!(ideal_level, -1, "vertex {v} reachability");
        } else {
            assert_eq!(ideal_level, i64::from(serial_level), "vertex {v} level");
        }
    }

    // Threaded kernels.
    for pool in pools() {
        for m in CwMethod::ALL {
            let r = bfs(&g, 0, m, &pool);
            assert_eq!(
                r.level,
                reference,
                "threaded {m} on {} threads",
                pool.num_threads()
            );
        }
    }
}

#[test]
fn or_agrees_with_ideal_machine() {
    let patterns: Vec<Vec<bool>> = vec![
        vec![false; 50],
        (0..50).map(|i| i == 31).collect(),
        (0..50).map(|i| i % 2 == 0).collect(),
    ];
    let pool = ThreadPool::new(4);
    for bits in &patterns {
        let ideal = programs::logical_or(bits, WriteRule::Common)
            .unwrap()
            .output;
        for m in CwMethod::ALL {
            assert_eq!(logical_or(bits, m, &pool), ideal, "{m} on {bits:?}");
        }
    }
}

#[test]
fn first_true_agrees_with_priority_rule_on_ideal_machine() {
    let pool = ThreadPool::new(4);
    let patterns: Vec<Vec<bool>> = vec![
        vec![],
        vec![false; 40],
        (0..40).map(|i| i == 0).collect(),
        (0..40).map(|i| i == 39).collect(),
        (0..40).map(|i| i % 3 == 2).collect(),
    ];
    for bits in &patterns {
        let ideal = programs::first_one(bits).unwrap().output;
        assert_eq!(
            pram_algos::first_true(bits, &pool),
            ideal,
            "pattern {bits:?}"
        );
    }
}

#[test]
fn cc_labels_match_union_find_across_pools_and_methods() {
    let n = 200;
    for seed in [1u64, 2] {
        let edges = GraphGen::new(seed).gnm(n, 350);
        let g = CsrGraph::from_edges(n, &edges, true);
        let directed: Vec<(u32, u32)> = g.directed_edges().collect();
        let reference = serial::cc_labels(n, &directed);
        for pool in pools() {
            for m in [CwMethod::CasLt, CwMethod::Gatekeeper, CwMethod::Lock] {
                let r = connected_components(&g, m, &pool);
                assert_eq!(
                    r.labels,
                    reference,
                    "{m} on {} threads, seed {seed}",
                    pool.num_threads()
                );
            }
        }
    }
}

#[test]
fn threaded_bfs_parents_are_admissible_arbitrary_outcomes() {
    // Arbitrary CW means *some* competing writer's value commits. For BFS
    // parents this is checkable: parent[u] must be a frontier vertex of the
    // previous level adjacent to u — i.e. one of the writers that raced for
    // u. Every single-winner method must pick from that set; which one is
    // free (that's the "arbitrary").
    let n = 120;
    let edges = GraphGen::new(9).gnm(n, 500);
    let g = CsrGraph::from_edges(n, &edges, true);
    let reference = serial::bfs_levels(&g, 0);
    let pool = ThreadPool::new(4);

    for m in CwMethod::ALL.into_iter().filter(|m| m.single_winner()) {
        let r = bfs(&g, 0, m, &pool);
        for u in 0..n {
            if u as u32 == 0 || reference[u] == u32::MAX {
                continue;
            }
            let p = r.parent[u];
            assert!(
                g.neighbors(p).contains(&(u as u32)),
                "{m}: parent {p} of {u} is not adjacent"
            );
            assert_eq!(
                reference[p as usize] + 1,
                reference[u],
                "{m}: parent {p} of {u} is not a previous-level writer"
            );
        }
    }
}

#[test]
fn facade_prelude_exposes_the_working_surface() {
    use crcw_pram::prelude::*;
    let pool = ThreadPool::new(2);
    let edges = GraphGen::new(0).gnm(50, 120);
    let g = CsrGraph::from_edges(50, &edges, true);
    let r = pram_algos::bfs(&g, 0, CwMethod::CasLt, &pool);
    assert_eq!(r.level[0], 0);

    let cells = CasLtArray::new(4);
    assert!(cells.try_claim(0, Round::FIRST));
    let mut counter = RoundCounter::new();
    assert_eq!(counter.next_round().unwrap(), Round::FIRST);
    let naive = NaiveArbiter::new(2);
    assert!(naive.try_claim(1, Round::FIRST));
    let _ = Schedule::default();
    let _ = WaitPolicy::Passive;
}

#[test]
fn sv_threaded_and_ideal_machine_produce_identical_labels() {
    // Both fixed points label every vertex with its component minimum, so
    // the outputs must be *equal*, not merely equivalent — regardless of
    // which arbitrary winner either implementation elected along the way.
    let n = 120;
    for seed in [3u64, 4] {
        let edges = GraphGen::new(seed).gnm(n, 260);
        let g = CsrGraph::from_edges(n, &edges, true);
        let directed: Vec<(usize, usize)> = g
            .directed_edges()
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        let ideal = programs::sv_components(
            n,
            &directed,
            WriteRule::Arbitrary(pram_sim::ArbitraryPolicy::Seeded(seed)),
        )
        .unwrap()
        .output;
        let pool = ThreadPool::new(4);
        let threaded = pram_algos::sv_components(&g, CwMethod::CasLt, &pool);
        assert_eq!(threaded.labels, ideal, "seed {seed}");
        // And both equal the union-find ground truth.
        let expect = serial::cc_labels(n, &g.directed_edges().collect::<Vec<_>>());
        assert_eq!(ideal, expect);
    }
}
