//! Property tests for the arbitration primitives: the single-winner
//! invariant under real-thread interleavings, round monotonicity, and
//! reset semantics, across randomized configurations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use pram_core::{
    BitGatekeeperArray, CasLtArray, CasLtCell64, GatekeeperArray, GatekeeperSkipArray, LockArray,
    PaddedCasLtArray, PriorityArray, Round, SliceArbiter,
};
use proptest::prelude::*;

/// Hammer `arb` with `threads` threads over `rounds` barrier-separated
/// rounds of claims on every cell; return total wins (must equal
/// `rounds * cells`).
fn hammer<A: SliceArbiter>(arb: &A, threads: usize, rounds: u32, reset_each_round: bool) -> usize {
    let wins = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for r in 0..rounds {
                    let round = Round::from_iteration(r);
                    let releaser = barrier.wait().is_leader();
                    for c in 0..arb.len() {
                        if arb.try_claim(c, round) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    barrier.wait();
                    if reset_each_round && releaser {
                        arb.reset_all();
                    }
                    barrier.wait();
                }
            });
        }
    });
    wins.load(Ordering::Relaxed)
}

/// One concurrent claim wave: `threads` threads race every cell of `arb`
/// for `round`; returns total wins across all cells.
fn claim_wave<A: SliceArbiter>(arb: &A, threads: usize, round: Round) -> usize {
    let wins = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                for c in 0..arb.len() {
                    if arb.try_claim(c, round) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    wins.load(Ordering::Relaxed)
}

/// The `SliceArbiter::reset_all` / `rearms_on_new_round` consistency
/// contract, for one scheme:
///
/// * a fresh arbiter yields exactly one winner per cell;
/// * after `reset_all`, the *same* round yields exactly one winner per
///   cell again (reset restores never-claimed for every scheme);
/// * a strictly newer round yields one winner per cell **without** a reset
///   iff `rearms_on_new_round()` — and for non-re-arming schemes, yields
///   zero until the reset pass runs.
fn reset_rearm_contract<A: SliceArbiter>(
    name: &str,
    arb: A,
    threads: usize,
    r0: Round,
) -> Result<(), TestCaseError> {
    let cells = arb.len();
    prop_assert_eq!(
        claim_wave(&arb, threads, r0),
        cells,
        "{}: fresh arbiter must have one winner per cell",
        name
    );
    arb.reset_all();
    prop_assert_eq!(
        claim_wave(&arb, threads, r0),
        cells,
        "{}: reset_all must restore one winner per cell for the same round",
        name
    );
    let r1 = r0.next().expect("test rounds stay far from the cap");
    if arb.rearms_on_new_round() {
        prop_assert_eq!(
            claim_wave(&arb, threads, r1),
            cells,
            "{}: re-arming scheme must win a fresh round with no reset",
            name
        );
    } else {
        prop_assert_eq!(
            claim_wave(&arb, threads, r1),
            0,
            "{}: non-re-arming scheme must yield no winner before its reset pass",
            name
        );
        arb.reset_all();
        prop_assert_eq!(
            claim_wave(&arb, threads, r1),
            cells,
            "{}: the reset pass must recover the fresh round",
            name
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn caslt_exactly_one_winner_per_cell_per_round(
        threads in 2usize..6,
        cells in 1usize..12,
        rounds in 1u32..24,
    ) {
        let arb = CasLtArray::new(cells);
        let wins = hammer(&arb, threads, rounds, false);
        prop_assert_eq!(wins, cells * rounds as usize);
    }

    #[test]
    fn gatekeeper_exactly_one_winner_with_reset_discipline(
        threads in 2usize..6,
        cells in 1usize..12,
        rounds in 1u32..16,
    ) {
        let arb = GatekeeperArray::new(cells);
        let wins = hammer(&arb, threads, rounds, true);
        prop_assert_eq!(wins, cells * rounds as usize);

        let arb = GatekeeperSkipArray::new(cells);
        let wins = hammer(&arb, threads, rounds, true);
        prop_assert_eq!(wins, cells * rounds as usize);
    }

    #[test]
    fn gatekeeper_without_reset_wins_only_round_one(
        threads in 2usize..5,
        cells in 1usize..8,
        rounds in 2u32..10,
    ) {
        // The defining limitation: no reset pass => later rounds get no
        // winner at all.
        let arb = GatekeeperArray::new(cells);
        let wins = hammer(&arb, threads, rounds, false);
        prop_assert_eq!(wins, cells);
    }

    #[test]
    fn lock_arbiter_same_invariant_as_caslt(
        threads in 2usize..5,
        cells in 1usize..8,
        rounds in 1u32..12,
    ) {
        let arb = LockArray::new(cells);
        let wins = hammer(&arb, threads, rounds, false);
        prop_assert_eq!(wins, cells * rounds as usize);
    }

    #[test]
    fn caslt_round_monotonicity_sequential(claims in proptest::collection::vec(0u32..50, 1..60)) {
        // Sequential model check: a claim wins iff its round is strictly
        // newer than every previously winning round.
        let arr = CasLtArray::new(1);
        let mut last_won: Option<u32> = None;
        for &c in &claims {
            let won = arr.try_claim(0, Round::from_iteration(c));
            let expected = last_won.is_none_or(|l| c > l);
            prop_assert_eq!(won, expected, "claim round {} after {:?}", c, last_won);
            if won {
                last_won = Some(c);
            }
        }
    }

    #[test]
    fn caslt64_matches_caslt32_semantics(claims in proptest::collection::vec(0u32..40, 1..50)) {
        let narrow = CasLtArray::new(1);
        let wide = CasLtCell64::new();
        for &c in &claims {
            let r = Round::from_iteration(c);
            let a = narrow.try_claim(0, r);
            let b = wide.try_claim_wide(r.widen());
            prop_assert_eq!(a, b, "divergence at round {}", c);
        }
    }

    #[test]
    fn priority_winner_is_global_minimum(
        offers in proptest::collection::vec(0u32..1000, 1..40),
    ) {
        let cell = PriorityArray::new(1);
        let round = Round::FIRST;
        std::thread::scope(|s| {
            for chunk in offers.chunks(8) {
                let cell = &cell;
                s.spawn(move || {
                    for &p in chunk {
                        cell.offer(0, round, p);
                    }
                });
            }
        });
        prop_assert_eq!(cell.winner(0, round), offers.iter().copied().min());
        // Exactly one offered priority is the winner (ties collapse).
        let winners = offers
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|&&p| cell.is_winner(0, round, p))
            .count();
        prop_assert_eq!(winners, 1);
    }

    #[test]
    fn reset_and_rearm_consistent_across_all_five_methods(
        threads in 2usize..6,
        cells in 1usize..10,
        base in 0u32..1000,
    ) {
        // The paper's five arbitration schemes (CAS-LT in both layouts,
        // the two gatekeeper flavours plus the packed bitmap form, and
        // the lock baseline) must agree on what reset and re-arming mean.
        let r0 = Round::from_iteration(base);
        reset_rearm_contract("caslt", CasLtArray::new(cells), threads, r0)?;
        reset_rearm_contract("caslt-padded", PaddedCasLtArray::new(cells), threads, r0)?;
        reset_rearm_contract("gatekeeper", GatekeeperArray::new(cells), threads, r0)?;
        reset_rearm_contract("gatekeeper-skip", GatekeeperSkipArray::new(cells), threads, r0)?;
        reset_rearm_contract("bit-gatekeeper", BitGatekeeperArray::new(cells), threads, r0)?;
        reset_rearm_contract("lock", LockArray::new(cells), threads, r0)?;
    }

    #[test]
    fn reset_ranges_partition_cleanly(
        cells in 1usize..40,
        cut in 0usize..40,
    ) {
        let cut = cut.min(cells);
        let arb = CasLtArray::new(cells);
        let r = Round::FIRST;
        for c in 0..cells {
            prop_assert!(arb.try_claim(c, r));
        }
        arb.reset_range(0..cut);
        arb.reset_range(cut..cells);
        for c in 0..cells {
            prop_assert!(arb.try_claim(c, r), "cell {} not re-armed", c);
        }
    }
}
