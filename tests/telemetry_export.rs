//! Exporter contracts: the chrome://tracing dump is pinned to a committed
//! golden file (stable field ordering, timestamps purely from the injected
//! clock values — never `Instant::now()` at serialization time), and the
//! JSON metrics schema round-trips losslessly.
//!
//! Regenerate the golden after an *intentional* format change with:
//!
//! ```text
//! PRAM_REGEN_GOLDEN=1 cargo test --test telemetry_export
//! ```

use pram_core::{CwCounters, ExecCounters, RoundReport, RoundSnapshot};
use pram_exec::{PoolConfig, ThreadPool};

/// A fully deterministic report: every timestamp is an injected constant,
/// so the exporters must produce byte-identical output on every run and
/// platform.
fn sample_report() -> RoundReport {
    let cw = |skips, cas, fail, wins| CwCounters {
        fast_path_skips: skips,
        cas_attempts: cas,
        cas_failures: fail,
        wins,
        gatekeeper_rmws: 0,
        lock_acquisitions: 0,
        rearm_resets: 0,
    };
    let exec = |waits, wait_ns, grabs, attempts, steals| ExecCounters {
        barrier_waits: waits,
        barrier_wait_ns: wait_ns,
        grabs,
        steal_attempts: attempts,
        steals,
    };
    let rounds = vec![
        RoundSnapshot {
            epoch: 0,
            round: 0,
            label: "push".to_string(),
            start_ns: 1_000,
            wall_ns: 2_500,
            cw: cw(3, 5, 1, 4),
            exec: exec(4, 700, 6, 2, 1),
        },
        RoundSnapshot {
            epoch: 0,
            round: 1,
            label: "pull".to_string(),
            start_ns: 4_000,
            wall_ns: 1_250,
            cw: cw(7, 1, 0, 1),
            exec: exec(4, 300, 5, 0, 0),
        },
        RoundSnapshot {
            epoch: 1,
            round: 0,
            label: String::new(), // unannotated round
            start_ns: 7_000,
            wall_ns: 3_000,
            cw: CwCounters {
                gatekeeper_rmws: 8,
                wins: 2,
                rearm_resets: 2,
                ..CwCounters::default()
            },
            exec: exec(2, 150, 4, 1, 0),
        },
    ];
    let mut totals_cw = CwCounters::default();
    let mut totals_exec = ExecCounters::default();
    for r in &rounds {
        totals_cw.add(&r.cw);
        totals_exec.add(&r.exec);
    }
    RoundReport {
        threads: 2,
        rounds,
        totals_cw,
        totals_exec,
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

#[test]
fn chrome_trace_matches_golden_file() {
    let trace = sample_report().chrome_trace();
    if std::env::var_os("PRAM_REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path(), &trace).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing — run with PRAM_REGEN_GOLDEN=1 once");
    assert_eq!(
        trace, golden,
        "chrome trace drifted from tests/golden/chrome_trace.json; if the \
         change is intentional, regenerate with PRAM_REGEN_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_is_a_pure_function_of_the_report() {
    // No clock read in the serialized path: two exports of the same report
    // are byte-identical, and exporting a rebuilt equal report matches too.
    let r = sample_report();
    let a = r.chrome_trace();
    let b = r.chrome_trace();
    assert_eq!(a, b);
    assert_eq!(a, sample_report().chrome_trace());
}

#[test]
fn chrome_trace_timestamps_are_monotone_per_track() {
    // Extract `"ts": <num>` in emission order; events are grouped per tid
    // track (epochs, rounds, barrier waits) and each track's spans are
    // emitted in collection order, so ts must be non-decreasing within
    // each contiguous tid run.
    let trace = sample_report().chrome_trace();
    let mut events: Vec<(u64, f64)> = Vec::new(); // (tid, ts)
    for obj in trace.split('{').skip(2) {
        let grab = |key: &str| -> Option<f64> {
            let at = obj.find(key)?;
            let rest = &obj[at + key.len()..];
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        if let (Some(tid), Some(ts)) = (grab("\"tid\": "), grab("\"ts\": ")) {
            events.push((tid as u64, ts));
        }
    }
    assert!(
        events.len() >= 6,
        "expected epoch+round spans, got {events:?}"
    );
    for w in events.windows(2) {
        if w[0].0 == w[1].0 {
            assert!(
                w[1].1 >= w[0].1,
                "timestamps regress within tid {}: {} then {}",
                w[0].0,
                w[0].1,
                w[1].1
            );
        }
    }
}

#[test]
fn metrics_json_round_trips() {
    let r = sample_report();
    let json = r.metrics_json();
    let parsed = RoundReport::from_metrics_json(&json).expect("parse own dump");
    assert_eq!(parsed, r, "metrics JSON round trip must be lossless");
    // And the dump itself is stable.
    assert_eq!(parsed.metrics_json(), json);
}

#[test]
fn metrics_json_rejects_foreign_or_malformed_input() {
    let r = sample_report();
    let json = r.metrics_json();
    let foreign = json.replace("pram-telemetry-v1", "pram-telemetry-v999");
    let err = RoundReport::from_metrics_json(&foreign).unwrap_err();
    assert!(err.contains("schema"), "unhelpful error: {err}");
    assert!(RoundReport::from_metrics_json("not json").is_err());
    assert!(RoundReport::from_metrics_json("{}").is_err());
}

#[test]
fn live_pool_report_round_trips_and_traces() {
    // End-to-end: a real pool run's report survives the JSON round trip
    // and produces a trace whose spans carry the kernel's annotations.
    let pool = ThreadPool::with_config(PoolConfig::new(2).telemetry(true));
    let cells = pram_core::CasLtArray::new(4);
    pool.run(|ctx| {
        ctx.converge_rounds(3, |round, flag| {
            ctx.annotate_round("claim");
            for i in 0..4 {
                cells.try_claim(i, round);
            }
            if round.get() < 3 {
                flag.set();
            }
        });
    });
    let report = pool.take_round_report();
    assert_eq!(report.rounds.len(), 3);
    let parsed = RoundReport::from_metrics_json(&report.metrics_json()).unwrap();
    assert_eq!(parsed, report);
    let trace = report.chrome_trace();
    assert!(trace.contains("[claim]"), "round labels reach the trace");
    assert!(trace.ends_with("]}\n"), "well-formed trace object");
}
