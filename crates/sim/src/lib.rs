//! # pram-sim — an ideal CRCW PRAM reference machine
//!
//! The PRAM abstraction the paper implements against real multicores:
//! unbounded processors over a flat shared memory, executing in lock-step
//! rounds, with reads preceding writes within a step and a pluggable
//! write-conflict resolution rule (§2 of the paper). This crate interprets
//! that abstract machine *exactly* — sequentially, deterministically — so it
//! can serve as the semantic yardstick for the threaded implementations:
//!
//! * **Conformance:** property tests run a kernel on the threaded substrate
//!   and check the outcome is one the ideal machine could produce.
//! * **Model checking the model:** the machine *detects* access-mode
//!   violations. Running an algorithm under [`AccessMode::Erew`] or
//!   [`AccessMode::Crew`] errors out on the exact step where concurrent
//!   access occurs — the formal version of the paper's "if a concurrent
//!   write is attempted in an exclusive write mode, the algorithm fails".
//! * **Work–depth accounting:** every step updates a [`Trace`] with the
//!   work/depth metrics the paper's §6 asymptotic analysis is stated in.
//!
//! ```
//! use pram_sim::{AccessMode, Machine, Write, WriteRule};
//!
//! // 4 processors all write 1 to cell 0 in one step — a common CW.
//! let mut m = Machine::new(AccessMode::Crcw(WriteRule::Common), vec![0; 1]);
//! m.step(4, |_pid, _view| vec![Write::new(0, 1)]).unwrap();
//! assert_eq!(m.mem()[0], 1);
//! assert_eq!(m.trace().depth, 1);
//! assert_eq!(m.trace().work, 4);
//!
//! // The same step under CREW is an error, not a wrong answer.
//! let mut m = Machine::new(AccessMode::Crew, vec![0; 1]);
//! assert!(m.step(4, |_pid, _view| vec![Write::new(0, 1)]).is_err());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod machine;
pub mod memory;
pub mod programs;
pub mod trace;

pub use error::PramError;
pub use machine::{AccessMode, ArbitraryPolicy, Machine, StepOutcome, WriteRule};
pub use memory::{MemView, Write};
pub use trace::Trace;
