//! Work–depth accounting (the W–D model of the paper's §6).

/// Running totals over all executed steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trace {
    /// Number of steps executed (the algorithm's depth `D(N)` so far).
    pub depth: u64,
    /// Total processor activations (the algorithm's work `W(N)`: each
    /// processor invoked in a step contributes 1).
    pub work: u64,
    /// Total write operations issued (before conflict resolution).
    pub writes_issued: u64,
    /// Total writes committed (after conflict resolution).
    pub writes_committed: u64,
    /// Steps in which at least one cell had more than one writer.
    pub steps_with_conflicts: u64,
    /// Largest number of writers contending for a single cell in any step —
    /// the paper's worst case is all `P_PRAM(N)` processors on one cell.
    pub max_writers_per_cell: u64,
}

impl Trace {
    /// Brent's theorem bound: the time on `p` physical processors,
    /// `D + W/p` (paper §6). Returns `None` for `p == 0`.
    pub fn brent_time(&self, p: u64) -> Option<u64> {
        (p > 0).then(|| self.depth + self.work.div_ceil(p))
    }

    pub(crate) fn record_step(
        &mut self,
        procs: usize,
        issued: usize,
        committed: usize,
        max_writers: usize,
    ) {
        self.depth += 1;
        self.work += procs as u64;
        self.writes_issued += issued as u64;
        self.writes_committed += committed as u64;
        if max_writers > 1 {
            self.steps_with_conflicts += 1;
        }
        self.max_writers_per_cell = self.max_writers_per_cell.max(max_writers as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut t = Trace::default();
        t.record_step(10, 4, 2, 3);
        t.record_step(5, 1, 1, 1);
        assert_eq!(t.depth, 2);
        assert_eq!(t.work, 15);
        assert_eq!(t.writes_issued, 5);
        assert_eq!(t.writes_committed, 3);
        assert_eq!(t.steps_with_conflicts, 1);
        assert_eq!(t.max_writers_per_cell, 3);
    }

    #[test]
    fn brent_bound() {
        let t = Trace {
            depth: 3,
            work: 100,
            ..Trace::default()
        };
        assert_eq!(t.brent_time(4), Some(3 + 25));
        assert_eq!(t.brent_time(3), Some(3 + 34)); // ceiling division
        assert_eq!(t.brent_time(0), None);
    }
}
