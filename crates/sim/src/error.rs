//! Errors the ideal machine raises — each is a *model violation*, the
//! formal counterpart of the paper's "the algorithm fails".

use std::fmt;

/// A PRAM access-mode or rule violation detected during a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two processors read the same cell under EREW.
    ReadConflict {
        /// The contested address.
        addr: usize,
        /// The two (first detected) conflicting processor ids.
        pids: (usize, usize),
    },
    /// Two processors wrote the same cell under an exclusive-write mode
    /// (EREW or CREW).
    WriteConflict {
        /// The contested address.
        addr: usize,
        /// The two (first detected) conflicting processor ids.
        pids: (usize, usize),
    },
    /// Under the Common rule, two processors wrote *different* values to
    /// the same cell in the same step.
    CommonViolation {
        /// The contested address.
        addr: usize,
        /// The two differing values.
        values: (i64, i64),
    },
    /// A processor issued one step's second write to the same cell —
    /// ill-formed under every rule (a processor is one instruction per
    /// step).
    DuplicateWrite {
        /// The address written twice.
        addr: usize,
        /// The offending processor.
        pid: usize,
    },
    /// Memory access out of bounds.
    OutOfBounds {
        /// The offending address.
        addr: usize,
        /// Memory size.
        len: usize,
    },
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::ReadConflict { addr, pids } => write!(
                f,
                "EREW read conflict at cell {addr}: processors {} and {}",
                pids.0, pids.1
            ),
            PramError::WriteConflict { addr, pids } => write!(
                f,
                "exclusive-write conflict at cell {addr}: processors {} and {}",
                pids.0, pids.1
            ),
            PramError::CommonViolation { addr, values } => write!(
                f,
                "Common-CRCW violation at cell {addr}: values {} and {} differ",
                values.0, values.1
            ),
            PramError::DuplicateWrite { addr, pid } => {
                write!(f, "processor {pid} wrote cell {addr} twice within one step")
            }
            PramError::OutOfBounds { addr, len } => {
                write!(f, "address {addr} out of bounds (memory size {len})")
            }
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(PramError, &str)> = vec![
            (
                PramError::ReadConflict {
                    addr: 3,
                    pids: (1, 2),
                },
                "read conflict",
            ),
            (
                PramError::WriteConflict {
                    addr: 3,
                    pids: (1, 2),
                },
                "write conflict",
            ),
            (
                PramError::CommonViolation {
                    addr: 0,
                    values: (1, 2),
                },
                "Common-CRCW violation",
            ),
            (PramError::DuplicateWrite { addr: 0, pid: 9 }, "twice"),
            (PramError::OutOfBounds { addr: 10, len: 5 }, "out of bounds"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
