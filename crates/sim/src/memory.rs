//! The machine's shared memory view and write operations.

use std::cell::{Cell, RefCell};

/// A single write operation issued by a processor during a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Write {
    /// Target cell.
    pub addr: usize,
    /// Value to store.
    pub value: i64,
}

impl Write {
    /// Construct a write.
    #[inline]
    pub fn new(addr: usize, value: i64) -> Write {
        Write { addr, value }
    }
}

/// Read-only view of memory handed to each processor during a step.
///
/// All reads observe the memory state **before** the step's writes — the
/// "reads happen before writes" rule of CRCW PRAM — because writes are
/// buffered by the machine and committed only after every processor has
/// run. When the machine runs in EREW mode the view also records which
/// processor read which cell, so cross-processor read conflicts can be
/// reported.
#[derive(Debug)]
pub struct MemView<'a> {
    mem: &'a [i64],
    current_pid: Cell<usize>,
    /// `Some` only under EREW: (addr → first reading pid) log.
    read_log: Option<RefCell<Vec<(usize, usize)>>>,
    /// First out-of-bounds read observed, reported when the step commits
    /// (reads return 0 rather than panicking so a processor's closure
    /// stays total).
    oob: Cell<Option<usize>>,
}

impl<'a> MemView<'a> {
    pub(crate) fn new(mem: &'a [i64], track_reads: bool) -> MemView<'a> {
        MemView {
            mem,
            current_pid: Cell::new(0),
            read_log: track_reads.then(|| RefCell::new(Vec::new())),
            oob: Cell::new(None),
        }
    }

    pub(crate) fn set_pid(&self, pid: usize) {
        self.current_pid.set(pid);
    }

    pub(crate) fn take_oob(&self) -> Option<usize> {
        self.oob.take()
    }

    pub(crate) fn reads(&self) -> Option<Vec<(usize, usize)>> {
        self.read_log.as_ref().map(|l| l.borrow().clone())
    }

    /// Read cell `addr` (pre-step state). Out-of-bounds reads yield 0 and
    /// flag the step as erroneous.
    #[inline]
    pub fn read(&self, addr: usize) -> i64 {
        if let Some(log) = &self.read_log {
            log.borrow_mut().push((addr, self.current_pid.get()));
        }
        match self.mem.get(addr) {
            Some(&v) => v,
            None => {
                if self.oob.get().is_none() {
                    self.oob.set(Some(addr));
                }
                0
            }
        }
    }

    /// Memory size.
    #[inline]
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// `true` if memory is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// The whole pre-step memory (for convenience reads of many cells).
    #[inline]
    pub fn snapshot(&self) -> &[i64] {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_prestep_memory() {
        let mem = vec![10, 20, 30];
        let v = MemView::new(&mem, false);
        assert_eq!(v.read(0), 10);
        assert_eq!(v.read(2), 30);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.snapshot(), &[10, 20, 30]);
    }

    #[test]
    fn oob_read_yields_zero_and_flags() {
        let mem = vec![1];
        let v = MemView::new(&mem, false);
        assert_eq!(v.read(5), 0);
        assert_eq!(v.take_oob(), Some(5));
        assert_eq!(v.take_oob(), None); // taken once
    }

    #[test]
    fn read_log_tracks_pids_when_enabled() {
        let mem = vec![0; 4];
        let v = MemView::new(&mem, true);
        v.set_pid(7);
        v.read(1);
        v.set_pid(8);
        v.read(1);
        assert_eq!(v.reads().unwrap(), vec![(1, 7), (1, 8)]);

        let v2 = MemView::new(&mem, false);
        v2.read(1);
        assert!(v2.reads().is_none());
    }
}
