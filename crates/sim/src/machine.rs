//! The step interpreter: access modes, conflict rules, commit logic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PramError;
use crate::memory::{MemView, Write};
use crate::trace::Trace;

/// How an *arbitrary* winner is chosen among a step's conflicting writers.
///
/// The PRAM rule guarantees nothing about which writer wins; exposing
/// several concrete policies lets tests explore the nondeterminism envelope
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitraryPolicy {
    /// Uniformly random winner from a seeded generator (reproducible).
    Seeded(u64),
    /// The writer whose closure ran first (lowest issue order).
    FirstIssued,
    /// The writer whose closure ran last.
    LastIssued,
    /// The writer with the smallest processor id.
    MinPid,
}

/// Write-conflict resolution rule (the paper's §2 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRule {
    /// All same-cell writers must write the same value; differing values
    /// are a model violation.
    Common,
    /// One same-cell writer wins, unspecified which; parameterized by a
    /// concrete [`ArbitraryPolicy`].
    Arbitrary(ArbitraryPolicy),
    /// The writer with the smallest processor id wins ("minimum processor
    /// rank has the highest priority").
    PriorityMinPid,
    /// The writer with the smallest value wins ("processor writing the
    /// smallest value has the highest priority"); ties break to the
    /// smallest pid.
    PriorityMinValue,
    /// Conflicting writes commit a sentinel "collision" symbol instead of
    /// any written value (the Collision CRCW model from the simulation
    /// literature the paper's related work surveys).
    Collision {
        /// The collision symbol.
        sentinel: i64,
    },
}

/// Memory access mode (the paper's §2: EREW ⊂ CREW ⊂ CRCW).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write under the given rule.
    Crcw(WriteRule),
}

/// Per-step summary returned by [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Processors invoked.
    pub procs: usize,
    /// Writes issued (pre-resolution).
    pub writes_issued: usize,
    /// Writes committed (post-resolution).
    pub writes_committed: usize,
    /// Largest writer multiplicity on one cell this step.
    pub max_writers_per_cell: usize,
}

/// The ideal PRAM machine: flat memory + step interpreter + accounting.
#[derive(Debug)]
pub struct Machine {
    mem: Vec<i64>,
    mode: AccessMode,
    trace: Trace,
    rng: StdRng,
}

impl Machine {
    /// A machine over `initial` memory in the given mode.
    pub fn new(mode: AccessMode, initial: Vec<i64>) -> Machine {
        let seed = match mode {
            AccessMode::Crcw(WriteRule::Arbitrary(ArbitraryPolicy::Seeded(s))) => s,
            _ => 0,
        };
        Machine {
            mem: initial,
            mode,
            trace: Trace::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A machine over `len` zeroed cells.
    pub fn zeroed(mode: AccessMode, len: usize) -> Machine {
        Machine::new(mode, vec![0; len])
    }

    /// Committed memory.
    pub fn mem(&self) -> &[i64] {
        &self.mem
    }

    /// Mutable access to memory between steps (initialization, inspection).
    pub fn mem_mut(&mut self) -> &mut [i64] {
        &mut self.mem
    }

    /// Accumulated work–depth trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Execute one lock-step PRAM step with `procs` processors.
    ///
    /// `f(pid, view)` is processor `pid`'s instruction: it may read any
    /// cells through `view` (observing pre-step memory) and returns the
    /// writes it issues this step. After all processors run, conflicts are
    /// resolved per the machine's mode and the surviving writes commit
    /// atomically.
    ///
    /// On error the step has **no effect** on memory or the trace.
    pub fn step<F>(&mut self, procs: usize, mut f: F) -> Result<StepOutcome, PramError>
    where
        F: FnMut(usize, &MemView<'_>) -> Vec<Write>,
    {
        let track_reads = self.mode == AccessMode::Erew;
        let view = MemView::new(&self.mem, track_reads);

        // Gather every processor's issued writes (reads happen inside f,
        // against pre-step memory).
        let mut issued: Vec<(usize, Write)> = Vec::new();
        for pid in 0..procs {
            view.set_pid(pid);
            for w in f(pid, &view) {
                issued.push((pid, w));
            }
        }
        if let Some(addr) = view.take_oob() {
            return Err(PramError::OutOfBounds {
                addr,
                len: self.mem.len(),
            });
        }
        for (_, w) in &issued {
            if w.addr >= self.mem.len() {
                return Err(PramError::OutOfBounds {
                    addr: w.addr,
                    len: self.mem.len(),
                });
            }
        }

        // EREW read-conflict detection.
        if let Some(mut reads) = view.reads() {
            reads.sort_unstable();
            for pair in reads.windows(2) {
                let ((a1, p1), (a2, p2)) = (pair[0], pair[1]);
                if a1 == a2 && p1 != p2 {
                    return Err(PramError::ReadConflict {
                        addr: a1,
                        pids: (p1, p2),
                    });
                }
            }
        }

        // Group writes by address (stable in issue order within a cell).
        let mut by_addr: Vec<(usize, usize, Write)> = issued
            .iter()
            .enumerate()
            .map(|(order, &(pid, w))| (order, pid, w))
            .collect();
        by_addr.sort_by_key(|&(order, _, w)| (w.addr, order));

        // Detect a single processor writing one cell twice in one step.
        for pair in by_addr.windows(2) {
            let (_, p1, w1) = pair[0];
            let (_, p2, w2) = pair[1];
            if w1.addr == w2.addr && p1 == p2 {
                return Err(PramError::DuplicateWrite {
                    addr: w1.addr,
                    pid: p1,
                });
            }
        }

        // Resolve each cell's writer group.
        let mut commits: Vec<Write> = Vec::new();
        let mut max_writers = 0usize;
        let mut i = 0;
        while i < by_addr.len() {
            let addr = by_addr[i].2.addr;
            let mut j = i;
            while j < by_addr.len() && by_addr[j].2.addr == addr {
                j += 1;
            }
            let group = &by_addr[i..j];
            max_writers = max_writers.max(group.len());
            let value = self.resolve(addr, group)?;
            commits.push(Write::new(addr, value));
            i = j;
        }

        // Commit.
        for w in &commits {
            self.mem[w.addr] = w.value;
        }
        let outcome = StepOutcome {
            procs,
            writes_issued: issued.len(),
            writes_committed: commits.len(),
            max_writers_per_cell: max_writers,
        };
        self.trace
            .record_step(procs, issued.len(), commits.len(), max_writers);
        Ok(outcome)
    }

    /// Resolve one cell's writer group to the committed value.
    fn resolve(&mut self, addr: usize, group: &[(usize, usize, Write)]) -> Result<i64, PramError> {
        debug_assert!(!group.is_empty());
        if group.len() == 1 {
            return Ok(group[0].2.value);
        }
        let rule = match self.mode {
            AccessMode::Erew | AccessMode::Crew => {
                return Err(PramError::WriteConflict {
                    addr,
                    pids: (group[0].1, group[1].1),
                });
            }
            AccessMode::Crcw(rule) => rule,
        };
        match rule {
            WriteRule::Common => {
                let v0 = group[0].2.value;
                for &(_, _, w) in &group[1..] {
                    if w.value != v0 {
                        return Err(PramError::CommonViolation {
                            addr,
                            values: (v0, w.value),
                        });
                    }
                }
                Ok(v0)
            }
            WriteRule::Arbitrary(policy) => {
                let idx = match policy {
                    ArbitraryPolicy::Seeded(_) => self.rng.gen_range(0..group.len()),
                    ArbitraryPolicy::FirstIssued => 0,
                    ArbitraryPolicy::LastIssued => group.len() - 1,
                    ArbitraryPolicy::MinPid => group
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, pid, _))| pid)
                        .map(|(k, _)| k)
                        .unwrap(),
                };
                Ok(group[idx].2.value)
            }
            WriteRule::PriorityMinPid => Ok(group
                .iter()
                .min_by_key(|&&(_, pid, _)| pid)
                .unwrap()
                .2
                .value),
            WriteRule::PriorityMinValue => Ok(group
                .iter()
                .min_by_key(|&&(_, pid, w)| (w.value, pid))
                .unwrap()
                .2
                .value),
            WriteRule::Collision { sentinel } => Ok(sentinel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crcw(rule: WriteRule) -> AccessMode {
        AccessMode::Crcw(rule)
    }

    #[test]
    fn exclusive_write_succeeds_in_every_mode() {
        for mode in [
            AccessMode::Erew,
            AccessMode::Crew,
            crcw(WriteRule::Common),
            crcw(WriteRule::PriorityMinPid),
        ] {
            let mut m = Machine::zeroed(mode, 4);
            let out = m
                .step(4, |pid, _| vec![Write::new(pid, pid as i64 + 1)])
                .unwrap();
            assert_eq!(m.mem(), &[1, 2, 3, 4]);
            assert_eq!(out.writes_committed, 4);
            assert_eq!(out.max_writers_per_cell, 1);
        }
    }

    #[test]
    fn reads_precede_writes_within_a_step() {
        // Parallel swap: pid 0 and 1 exchange cells — only correct if both
        // reads observe pre-step memory.
        let mut m = Machine::new(crcw(WriteRule::Common), vec![5, 9]);
        m.step(2, |pid, view| {
            let other = view.read(1 - pid);
            vec![Write::new(pid, other)]
        })
        .unwrap();
        assert_eq!(m.mem(), &[9, 5]);
    }

    #[test]
    fn crew_rejects_concurrent_writes_but_allows_reads() {
        let mut m = Machine::zeroed(AccessMode::Crew, 2);
        // Concurrent reads of cell 0 are fine.
        m.step(4, |pid, view| {
            let v = view.read(0);
            vec![Write::new(1, v + pid as i64)][..(pid == 0) as usize].to_vec()
        })
        .unwrap();
        // Concurrent writes are not.
        let err = m.step(3, |_pid, _| vec![Write::new(1, 7)]).unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { addr: 1, .. }));
    }

    #[test]
    fn erew_rejects_concurrent_reads() {
        let mut m = Machine::zeroed(AccessMode::Erew, 2);
        let err = m
            .step(2, |_pid, view| {
                view.read(0);
                vec![]
            })
            .unwrap_err();
        assert!(matches!(err, PramError::ReadConflict { addr: 0, .. }));
    }

    #[test]
    fn erew_allows_disjoint_reads() {
        let mut m = Machine::new(AccessMode::Erew, vec![1, 2]);
        m.step(2, |pid, view| {
            let v = view.read(pid);
            vec![Write::new(pid, v * 10)]
        })
        .unwrap();
        assert_eq!(m.mem(), &[10, 20]);
    }

    #[test]
    fn common_rule_accepts_same_value_rejects_different() {
        let mut m = Machine::zeroed(crcw(WriteRule::Common), 1);
        let out = m.step(8, |_pid, _| vec![Write::new(0, 42)]).unwrap();
        assert_eq!(out.max_writers_per_cell, 8);
        assert_eq!(m.mem()[0], 42);

        let err = m
            .step(2, |pid, _| vec![Write::new(0, pid as i64)])
            .unwrap_err();
        assert!(matches!(err, PramError::CommonViolation { addr: 0, .. }));
        // Failed step committed nothing.
        assert_eq!(m.mem()[0], 42);
        assert_eq!(m.trace().depth, 1);
    }

    #[test]
    fn arbitrary_policies_pick_a_written_value() {
        for policy in [
            ArbitraryPolicy::Seeded(7),
            ArbitraryPolicy::FirstIssued,
            ArbitraryPolicy::LastIssued,
            ArbitraryPolicy::MinPid,
        ] {
            let mut m = Machine::zeroed(crcw(WriteRule::Arbitrary(policy)), 1);
            m.step(5, |pid, _| vec![Write::new(0, 100 + pid as i64)])
                .unwrap();
            let v = m.mem()[0];
            assert!((100..105).contains(&v), "{policy:?} committed {v}");
        }
    }

    #[test]
    fn arbitrary_first_last_minpid_are_deterministic() {
        let run = |policy| {
            let mut m = Machine::zeroed(crcw(WriteRule::Arbitrary(policy)), 1);
            m.step(4, |pid, _| vec![Write::new(0, pid as i64)]).unwrap();
            m.mem()[0]
        };
        assert_eq!(run(ArbitraryPolicy::FirstIssued), 0);
        assert_eq!(run(ArbitraryPolicy::LastIssued), 3);
        assert_eq!(run(ArbitraryPolicy::MinPid), 0);
    }

    #[test]
    fn seeded_arbitrary_is_reproducible() {
        let run = || {
            let mut m = Machine::zeroed(crcw(WriteRule::Arbitrary(ArbitraryPolicy::Seeded(99))), 1);
            let mut vals = vec![];
            for _ in 0..10 {
                m.step(6, |pid, _| vec![Write::new(0, pid as i64)]).unwrap();
                vals.push(m.mem()[0]);
            }
            vals
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn priority_rules() {
        let mut m = Machine::zeroed(crcw(WriteRule::PriorityMinPid), 1);
        m.step(4, |pid, _| vec![Write::new(0, 10 - pid as i64)])
            .unwrap();
        assert_eq!(m.mem()[0], 10); // pid 0 wins

        let mut m = Machine::zeroed(crcw(WriteRule::PriorityMinValue), 1);
        m.step(4, |pid, _| vec![Write::new(0, 10 - pid as i64)])
            .unwrap();
        assert_eq!(m.mem()[0], 7); // smallest value wins
    }

    #[test]
    fn collision_rule_writes_sentinel() {
        let mut m = Machine::zeroed(crcw(WriteRule::Collision { sentinel: -1 }), 2);
        m.step(3, |pid, _| {
            if pid < 2 {
                vec![Write::new(0, pid as i64)] // conflict on cell 0
            } else {
                vec![Write::new(1, 5)] // exclusive on cell 1
            }
        })
        .unwrap();
        assert_eq!(m.mem(), &[-1, 5]);
    }

    #[test]
    fn duplicate_write_by_one_processor_rejected() {
        let mut m = Machine::zeroed(crcw(WriteRule::Common), 2);
        let err = m
            .step(1, |_pid, _| vec![Write::new(0, 1), Write::new(0, 1)])
            .unwrap_err();
        assert!(matches!(err, PramError::DuplicateWrite { addr: 0, pid: 0 }));
    }

    #[test]
    fn out_of_bounds_write_and_read_rejected() {
        let mut m = Machine::zeroed(crcw(WriteRule::Common), 2);
        let err = m.step(1, |_, _| vec![Write::new(9, 1)]).unwrap_err();
        assert!(matches!(err, PramError::OutOfBounds { addr: 9, len: 2 }));

        let err = m
            .step(1, |_, view| {
                view.read(100);
                vec![]
            })
            .unwrap_err();
        assert!(matches!(err, PramError::OutOfBounds { addr: 100, .. }));
    }

    #[test]
    fn trace_accumulates_across_steps() {
        let mut m = Machine::zeroed(crcw(WriteRule::Common), 2);
        m.step(4, |_pid, _| vec![Write::new(0, 1)]).unwrap();
        m.step(2, |pid, _| vec![Write::new(pid, 9)]).unwrap();
        let t = m.trace();
        assert_eq!(t.depth, 2);
        assert_eq!(t.work, 6);
        assert_eq!(t.writes_issued, 6);
        assert_eq!(t.writes_committed, 3);
        assert_eq!(t.steps_with_conflicts, 1);
        assert_eq!(t.max_writers_per_cell, 4);
        assert_eq!(t.brent_time(2), Some(2 + 3));
    }

    #[test]
    fn zero_processors_is_a_legal_noop_step() {
        let mut m = Machine::zeroed(crcw(WriteRule::Common), 1);
        let out = m.step(0, |_, _| vec![]).unwrap();
        assert_eq!(out.writes_issued, 0);
        assert_eq!(m.trace().depth, 1);
    }
}
