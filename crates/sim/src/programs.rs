//! Canonical CRCW PRAM programs, interpreted on the ideal machine.
//!
//! These are the abstract-machine twins of the threaded kernels in
//! `pram-algos`: same algorithms, executed under exact PRAM semantics with
//! work–depth accounting. Integration tests cross-validate the threaded
//! results against these, and the examples use them to show what the
//! paper's §6 analysis looks like when measured in model steps.

use crate::error::PramError;
use crate::machine::{AccessMode, Machine, WriteRule};
use crate::memory::Write;
use crate::trace::Trace;

/// Result of a simulator program: the answer plus its work–depth trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramRun<T> {
    /// The program's output.
    pub output: T,
    /// Work–depth accounting for the whole run.
    pub trace: Trace,
}

/// The paper's Figure 4 — the constant-time maximum algorithm — on the
/// ideal machine.
///
/// `n²` processors compare all ordered pairs in one step; the loser of each
/// comparison is marked not-max by a **common** concurrent write of `0`
/// (all writers agree), then one more step extracts the unique surviving
/// index. Depth 2, work `n² + n` — the O(1)-depth, O(n²)-work profile of
/// §7.2. Ties break exactly as the paper's line 9: on equal values the
/// smaller index is marked, so the largest index among maxima survives.
///
/// Returns the index of the maximum. `rule` must admit common writes
/// ([`WriteRule::Common`] or stronger).
pub fn constant_time_max(values: &[i64], rule: WriteRule) -> Result<ProgramRun<usize>, PramError> {
    let n = values.len();
    assert!(n > 0, "maximum of an empty list is undefined");
    // Layout: [0, n) values | [n, 2n) isMax flags | 2n: result index.
    let mut mem = Vec::with_capacity(2 * n + 1);
    mem.extend_from_slice(values);
    mem.extend(std::iter::repeat_n(1, n));
    mem.push(-1);
    let mut m = Machine::new(AccessMode::Crcw(rule), mem);

    // Step 1: all-pairs knockout; n² processors, one common CW per loser.
    m.step(n * n, |pid, view| {
        let (i, j) = (pid / n, pid % n);
        if i == j {
            return vec![];
        }
        let (vi, vj) = (view.read(i), view.read(j));
        let loser = if vi < vj || (vi == vj && i < j) { i } else { j };
        vec![Write::new(n + loser, 0)]
    })?;

    // Step 2: the unique survivor publishes its index (exclusive write).
    m.step(n, |pid, view| {
        if view.read(n + pid) == 1 {
            vec![Write::new(2 * n, pid as i64)]
        } else {
            vec![]
        }
    })?;

    let idx = m.mem()[2 * n];
    debug_assert!(idx >= 0);
    Ok(ProgramRun {
        output: idx as usize,
        trace: *m.trace(),
    })
}

/// O(1)-depth logical OR of `n` bits — the textbook demonstration that
/// common CRCW strictly beats exclusive-write models (where OR needs
/// Ω(log n) depth).
///
/// Every processor holding a 1 writes 1 to the result cell in the same
/// step; all writers agree, so the write is common.
pub fn logical_or(bits: &[bool], rule: WriteRule) -> Result<ProgramRun<bool>, PramError> {
    let n = bits.len();
    // Layout: [0, n) bits | n: result.
    let mut mem: Vec<i64> = bits.iter().map(|&b| i64::from(b)).collect();
    mem.push(0);
    let mut m = Machine::new(AccessMode::Crcw(rule), mem);
    m.step(n, |pid, view| {
        if view.read(pid) != 0 {
            vec![Write::new(n, 1)]
        } else {
            vec![]
        }
    })?;
    Ok(ProgramRun {
        output: m.mem()[n] != 0,
        trace: *m.trace(),
    })
}

/// Hook-to-minimum connected components (simplified Shiloach–Vishkin) on
/// the ideal machine — the **arbitrary**-CW twin of
/// `pram_algos::sv_components`.
///
/// Each iteration is three PRAM steps: clear the change flag; hook (one
/// processor per directed edge: if `D[v] < D[u]` and `D[u]` is a root,
/// write `D[D[u]] = D[v]` — several edges write *different* values to the
/// same root cell, so the machine's arbitrary rule elects the winner);
/// shortcut (`D[v] = D[D[v]]`, exclusive per vertex). Repeats until no
/// change. Whatever winner the arbitrary rule picks, committed hooks
/// strictly decrease root values, so the fixed point labels every vertex
/// with its component's minimum id — the same canonical output as the
/// threaded kernel, which the workspace cross-validates.
pub fn sv_components(
    n: usize,
    edges: &[(usize, usize)],
    rule: WriteRule,
) -> Result<ProgramRun<Vec<u32>>, PramError> {
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
    }
    // Layout: [0, n) parent D | n: changed flag.
    let mut mem: Vec<i64> = (0..n as i64).collect();
    mem.push(0);
    let mut m = Machine::new(AccessMode::Crcw(rule), mem);

    loop {
        m.step(1, |_pid, _view| vec![Write::new(n, 0)])?;
        // Hook: arbitrary CW onto root cells.
        m.step(edges.len(), |pid, view| {
            let (u, v) = edges[pid];
            let du = view.read(u);
            let dv = view.read(v);
            if dv < du && view.read(du as usize) == du {
                vec![Write::new(du as usize, dv), Write::new(n, 1)]
            } else {
                vec![]
            }
        })?;
        // Shortcut: exclusive write per vertex.
        m.step(n, |pid, view| {
            let dv = view.read(pid);
            let ddv = view.read(dv as usize);
            if ddv != dv {
                vec![Write::new(pid, ddv), Write::new(n, 1)]
            } else {
                vec![]
            }
        })?;
        if m.mem()[n] == 0 {
            break;
        }
    }

    // Contract to roots (serial postprocessing, as in the threaded kernel).
    let d: Vec<i64> = m.mem()[..n].to_vec();
    let labels = (0..n)
        .map(|v| {
            let mut x = v;
            while d[x] as usize != x {
                x = d[x] as usize;
            }
            x as u32
        })
        .collect();
    Ok(ProgramRun {
        output: labels,
        trace: *m.trace(),
    })
}

/// O(1)-depth first-set-bit via a **priority** concurrent write (the
/// strongest §2 rule): every processor holding a 1 writes its own index to
/// the result cell in one step; under [`WriteRule::PriorityMinValue`] the
/// smallest index commits.
///
/// Returns `None` if no bit is set. The threaded counterpart is
/// `pram_algos::first_true`, which simulates the same rule with
/// `PriorityCell`'s two-phase offer/commit protocol; the workspace's
/// cross-validation tests hold the two to identical outputs.
pub fn first_one(bits: &[bool]) -> Result<ProgramRun<Option<usize>>, PramError> {
    let n = bits.len();
    // Layout: [0, n) bits | n: result index (−1 = none).
    let mut mem: Vec<i64> = bits.iter().map(|&b| i64::from(b)).collect();
    mem.push(-1);
    let mut m = Machine::new(AccessMode::Crcw(WriteRule::PriorityMinValue), mem);
    m.step(n, |pid, view| {
        if view.read(pid) != 0 {
            vec![Write::new(n, pid as i64)]
        } else {
            vec![]
        }
    })?;
    let out = match m.mem()[n] {
        -1 => None,
        i => Some(i as usize),
    };
    Ok(ProgramRun {
        output: out,
        trace: *m.trace(),
    })
}

/// Level-synchronous BFS (the paper's Figure 3 structure) on the ideal
/// machine, one processor per directed edge per level.
///
/// Frontier expansion writes `level[v] = L + 1` concurrently from every
/// in-frontier neighbor of `v` — a **common** concurrent write (all writers
/// agree on the value), plus a common write to the `done` flag. Returns the
/// level of every vertex (−1 = unreachable).
///
/// `edges` are directed pairs `(u, v)`; pass both directions for an
/// undirected graph.
pub fn bfs_levels(
    n: usize,
    edges: &[(usize, usize)],
    source: usize,
    rule: WriteRule,
) -> Result<ProgramRun<Vec<i64>>, PramError> {
    assert!(source < n, "source out of range");
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
    }
    // Layout: [0, n) levels | n: changed flag.
    let mut mem = vec![-1i64; n + 1];
    mem[source] = 0;
    let mut m = Machine::new(AccessMode::Crcw(rule), mem);

    let mut level: i64 = 0;
    loop {
        // Reset the changed flag (one processor, exclusive write).
        m.step(1, |_pid, _view| vec![Write::new(n, 0)])?;
        // Expand the frontier: one processor per directed edge.
        m.step(edges.len(), |pid, view| {
            let (u, v) = edges[pid];
            if view.read(u) == level && view.read(v) == -1 {
                vec![Write::new(v, level + 1), Write::new(n, 1)]
            } else {
                vec![]
            }
        })?;
        if m.mem()[n] == 0 {
            break;
        }
        level += 1;
    }

    let levels = m.mem()[..n].to_vec();
    Ok(ProgramRun {
        output: levels,
        trace: *m.trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ArbitraryPolicy;

    fn serial_max_index(values: &[i64]) -> usize {
        // Paper tie-break: larger index survives equal values.
        let mut best = 0;
        for (i, &v) in values.iter().enumerate() {
            if v >= values[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn max_matches_serial_reference() {
        let cases: Vec<Vec<i64>> = vec![
            vec![5],
            vec![1, 2, 3],
            vec![3, 2, 1],
            vec![7, 7, 7],
            vec![-5, -2, -9, -2],
            (0..50).map(|i| (i * 37) % 23).collect(),
        ];
        for values in cases {
            let run = constant_time_max(&values, WriteRule::Common).unwrap();
            assert_eq!(run.output, serial_max_index(&values), "{values:?}");
        }
    }

    #[test]
    fn max_has_constant_depth_quadratic_work() {
        let values: Vec<i64> = (0..20).collect();
        let run = constant_time_max(&values, WriteRule::Common).unwrap();
        assert_eq!(run.trace.depth, 2);
        assert_eq!(run.trace.work, 20 * 20 + 20);
        // Heavy write conflicts by design: every non-max element is marked
        // by many comparisons.
        assert!(run.trace.max_writers_per_cell > 1);
    }

    #[test]
    fn max_works_under_arbitrary_rule_too() {
        // Common writes are simulable by any stronger rule in O(1) (§2).
        let values = vec![4, 9, 1, 9, 3];
        let run =
            constant_time_max(&values, WriteRule::Arbitrary(ArbitraryPolicy::Seeded(3))).unwrap();
        assert_eq!(run.output, 3);
    }

    #[test]
    fn or_is_depth_one_and_correct() {
        let run = logical_or(&[false, false, true, false], WriteRule::Common).unwrap();
        assert!(run.output);
        assert_eq!(run.trace.depth, 1);

        let run = logical_or(&[false; 8], WriteRule::Common).unwrap();
        assert!(!run.output);

        let run = logical_or(&[], WriteRule::Common).unwrap();
        assert!(!run.output);
    }

    #[test]
    fn or_conflict_multiplicity_equals_popcount() {
        let bits = [true, true, true, false, true];
        let run = logical_or(&bits, WriteRule::Common).unwrap();
        assert_eq!(run.trace.max_writers_per_cell, 4);
    }

    #[test]
    fn sv_components_labels_are_component_minima() {
        let rule = WriteRule::Arbitrary(ArbitraryPolicy::Seeded(5));
        // Components {0,1,2} and {3,4}; 5 isolated.
        let edges: Vec<(usize, usize)> = [(0, 1), (1, 2), (3, 4)]
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let run = sv_components(6, &edges, rule).unwrap();
        assert_eq!(run.output, vec![0, 0, 0, 3, 3, 5]);
        assert!(run.trace.depth >= 3);
    }

    #[test]
    fn sv_components_any_arbitrary_policy_agrees() {
        let edges: Vec<(usize, usize)> = [(0, 3), (3, 5), (1, 4), (4, 2)]
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let expect = vec![0, 1, 1, 0, 1, 0];
        for policy in [
            ArbitraryPolicy::Seeded(0),
            ArbitraryPolicy::Seeded(99),
            ArbitraryPolicy::FirstIssued,
            ArbitraryPolicy::LastIssued,
            ArbitraryPolicy::MinPid,
        ] {
            let run = sv_components(6, &edges, WriteRule::Arbitrary(policy)).unwrap();
            assert_eq!(run.output, expect, "{policy:?}");
        }
    }

    #[test]
    fn sv_components_requires_the_arbitrary_model() {
        // The paper's §7.3 point, formalized: hooking writes *different*
        // values concurrently, so the Common rule rejects the algorithm
        // outright (triangle: two edges hook root 2 with values 0 and 1).
        let edges: Vec<(usize, usize)> = [(0, 2), (1, 2), (0, 1)]
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let err = sv_components(3, &edges, WriteRule::Common).unwrap_err();
        assert!(
            matches!(err, crate::PramError::CommonViolation { .. }),
            "{err}"
        );
    }

    #[test]
    fn sv_components_counts_hook_conflicts() {
        // A star: every leaf's edge tries to hook... leaves hook onto the
        // center? center is 0, leaves 1..: edges (0,k): D[k]>D[0] so (k,0)
        // direction hooks root k to 0 — exclusive. Use an inverted star
        // (center = highest id) to force many writers on one root.
        let n = 9;
        let center = n - 1;
        let edges: Vec<(usize, usize)> = (0..center)
            .flat_map(|k| [(center, k), (k, center)])
            .collect();
        let run =
            sv_components(n, &edges, WriteRule::Arbitrary(ArbitraryPolicy::Seeded(1))).unwrap();
        assert!(run.output.iter().all(|&l| l == 0));
        // All 8 leaf-edges competed to hook the center's cell in step one.
        assert!(run.trace.max_writers_per_cell >= (n - 1) as u64);
    }

    #[test]
    fn first_one_is_depth_one_and_minimal() {
        let run = first_one(&[false, true, false, true]).unwrap();
        assert_eq!(run.output, Some(1));
        assert_eq!(run.trace.depth, 1);
        assert_eq!(run.trace.max_writers_per_cell, 2);

        assert_eq!(first_one(&[false; 5]).unwrap().output, None);
        assert_eq!(first_one(&[]).unwrap().output, None);
        assert_eq!(first_one(&[true]).unwrap().output, Some(0));
    }

    fn undirected(pairs: &[(usize, usize)]) -> Vec<(usize, usize)> {
        pairs.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn bfs_levels_on_a_path() {
        let edges = undirected(&[(0, 1), (1, 2), (2, 3)]);
        let run = bfs_levels(4, &edges, 0, WriteRule::Common).unwrap();
        assert_eq!(run.output, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_levels_with_unreachable_and_cycle() {
        // 0-1-2 triangle, 3 isolated.
        let edges = undirected(&[(0, 1), (1, 2), (2, 0)]);
        let run = bfs_levels(4, &edges, 0, WriteRule::Common).unwrap();
        assert_eq!(run.output, vec![0, 1, 1, -1]);
    }

    #[test]
    fn bfs_concurrent_frontier_writes_are_common() {
        // Diamond: 0→{1,2}→3; both 1 and 2 write level[3] = 2 in one step.
        let edges = undirected(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let run = bfs_levels(4, &edges, 0, WriteRule::Common).unwrap();
        assert_eq!(run.output, vec![0, 1, 1, 2]);
        assert!(run.trace.max_writers_per_cell >= 2);
    }

    #[test]
    fn bfs_depth_tracks_eccentricity() {
        let edges = undirected(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let run = bfs_levels(5, &edges, 0, WriteRule::Common).unwrap();
        // Two machine steps per level iteration (reset + expand); levels
        // 0..=3 expand, plus the final no-change iteration.
        assert_eq!(run.output, vec![0, 1, 2, 3, 4]);
        assert!(run.trace.depth >= 8);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bfs_rejects_bad_source() {
        let _ = bfs_levels(2, &[], 5, WriteRule::Common);
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn max_rejects_empty() {
        let _ = constant_time_max(&[], WriteRule::Common);
    }
}
