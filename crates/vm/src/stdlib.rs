//! Prebuilt VM programs for the workspace's canonical kernels.
//!
//! Each constructor returns a [`Program`] plus a memory-layout description,
//! so callers can build initial memory and decode results without
//! re-deriving cell offsets. These double as executable documentation of
//! the [`Program`] API and as the fixtures for the backend-equivalence
//! property tests.

use pram_sim::Write;

use crate::program::Program;

/// Layout for [`logical_or`]: bits at `[0, n)`, result at `n`.
#[derive(Debug, Clone, Copy)]
pub struct OrLayout {
    /// Number of input bits.
    pub n: usize,
    /// Result cell.
    pub result: usize,
}

/// O(1)-depth logical OR over `n` bits (common concurrent write).
pub fn logical_or(n: usize) -> (Program, OrLayout) {
    let mut p = Program::new(n + 1);
    p.step(n, move |pid, mem| {
        if mem.read(pid) != 0 {
            vec![Write::new(n, 1)]
        } else {
            vec![]
        }
    });
    (p, OrLayout { n, result: n })
}

/// Layout for [`constant_time_max`]: values at `[0, n)`, isMax flags at
/// `[n, 2n)` (initialize to 1), result index at `2n` (initialize to −1).
#[derive(Debug, Clone, Copy)]
pub struct MaxLayout {
    /// Number of values.
    pub n: usize,
    /// First isMax flag cell.
    pub flags: usize,
    /// Result cell.
    pub result: usize,
}

impl MaxLayout {
    /// Build initial memory from the values.
    pub fn init(&self, values: &[i64]) -> Vec<i64> {
        assert_eq!(values.len(), self.n);
        let mut mem = Vec::with_capacity(2 * self.n + 1);
        mem.extend_from_slice(values);
        mem.extend(std::iter::repeat_n(1, self.n));
        mem.push(-1);
        mem
    }
}

/// The paper's Figure 4 constant-time maximum (common concurrent writes;
/// depth 2, work n² + n). Ties break toward the larger index.
pub fn constant_time_max(n: usize) -> (Program, MaxLayout) {
    assert!(n > 0, "maximum of an empty list is undefined");
    let mut p = Program::new(2 * n + 1);
    p.step(n * n, move |pid, mem| {
        let (i, j) = (pid / n, pid % n);
        if i == j {
            return vec![];
        }
        let (vi, vj) = (mem.read(i), mem.read(j));
        let loser = if vi < vj || (vi == vj && i < j) { i } else { j };
        vec![Write::new(n + loser, 0)]
    });
    p.step(n, move |pid, mem| {
        if mem.read(n + pid) == 1 {
            vec![Write::new(2 * n, pid as i64)]
        } else {
            vec![]
        }
    });
    (
        p,
        MaxLayout {
            n,
            flags: n,
            result: 2 * n,
        },
    )
}

/// Layout for [`sv_components`]: parent pointers at `[0, n)` (initialize to
/// the identity), change flag at `n` (initialize to 1 so the repeat block
/// enters).
#[derive(Debug, Clone, Copy)]
pub struct SvLayout {
    /// Number of vertices.
    pub n: usize,
    /// Change-flag cell.
    pub flag: usize,
}

impl SvLayout {
    /// Identity parents + armed flag.
    pub fn init(&self) -> Vec<i64> {
        let mut mem: Vec<i64> = (0..self.n as i64).collect();
        mem.push(1);
        mem
    }

    /// Decode final memory into component labels (labels are component
    /// minima once converged; parents may be one hop from the root).
    pub fn labels(&self, mem: &[i64]) -> Vec<u32> {
        (0..self.n)
            .map(|v| {
                let mut x = v;
                while mem[x] as usize != x {
                    x = mem[x] as usize;
                }
                x as u32
            })
            .collect()
    }
}

/// Hook-to-minimum connected components (arbitrary concurrent writes) as a
/// repeat-until VM program. Pass both directions of every undirected edge.
pub fn sv_components(n: usize, edges: Vec<(usize, usize)>) -> (Program, SvLayout) {
    for &(u, v) in &edges {
        assert!(u < n && v < n, "edge endpoint out of range");
    }
    let m = edges.len();
    let mut p = Program::new(n + 1);
    // Worst case: components shrink by at least one root per pass.
    let max_iters = n as u32 + 2;
    p.repeat(n, max_iters, move |b| {
        // Clear the flag.
        b.step(1, move |_pid, _mem| vec![Write::new(n, 0)]);
        // Hook (arbitrary CW onto root cells).
        let edges = edges.clone();
        b.step(m, move |pid, mem| {
            let (u, v) = edges[pid];
            let du = mem.read(u);
            let dv = mem.read(v);
            if dv < du && mem.read(du as usize) == du {
                vec![Write::new(du as usize, dv), Write::new(n, 1)]
            } else {
                vec![]
            }
        });
        // Shortcut (exclusive write per vertex).
        b.step(n, move |pid, mem| {
            let dv = mem.read(pid);
            let ddv = mem.read(dv as usize);
            if ddv != dv {
                vec![Write::new(pid, ddv), Write::new(n, 1)]
            } else {
                vec![]
            }
        });
    });
    (p, SvLayout { n, flag: n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VmRule;
    use pram_exec::ThreadPool;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn stdlib_or_both_backends() {
        let (p, layout) = logical_or(10);
        let mut init = vec![0i64; 11];
        init[7] = 1;
        let a = p.run_on_machine(VmRule::Common, init.clone()).unwrap();
        let b = p.run_threaded(VmRule::Common, init, &pool()).unwrap();
        assert_eq!(a.mem[layout.result], 1);
        assert_eq!(a.mem, b.mem);

        let (p, layout) = logical_or(10);
        let out = p.run_on_machine(VmRule::Common, vec![0; 11]).unwrap();
        assert_eq!(out.mem[layout.result], 0);
    }

    #[test]
    fn stdlib_max_matches_reference_on_both_backends() {
        let values: Vec<i64> = vec![4, 9, 1, 9, 0, 3];
        let (p, layout) = constant_time_max(values.len());
        let init = layout.init(&values);
        let a = p.run_on_machine(VmRule::Common, init.clone()).unwrap();
        let b = p.run_threaded(VmRule::Common, init, &pool()).unwrap();
        assert_eq!(a.mem[layout.result], 3); // larger index wins the tie
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.trace.depth, 2);
    }

    #[test]
    fn stdlib_sv_labels_match_union_find_on_both_backends() {
        // Components {0,2,4} and {1,3}; 5 isolated.
        let undirected = [(0, 2), (2, 4), (1, 3)];
        let edges: Vec<(usize, usize)> = undirected
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let (p, layout) = sv_components(6, edges);
        let init = layout.init();
        let a = p.run_on_machine(VmRule::Arbitrary, init.clone()).unwrap();
        let b = p.run_threaded(VmRule::Arbitrary, init, &pool()).unwrap();
        let expect = vec![0, 1, 0, 1, 0, 5];
        assert_eq!(layout.labels(&a.mem), expect);
        assert_eq!(layout.labels(&b.mem), expect);
    }

    #[test]
    fn stdlib_sv_rejects_common_rule() {
        // Two edges hooking one root with different values: the Common
        // rule must refuse on both backends (paper §7.3: CC *requires*
        // arbitrary CW).
        let edges: Vec<(usize, usize)> = [(0, 2), (1, 2), (0, 1)]
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let (p, layout) = sv_components(3, edges);
        assert!(p.run_on_machine(VmRule::Common, layout.init()).is_err());
        assert!(p
            .run_threaded(VmRule::Common, layout.init(), &pool())
            .is_err());
    }
}
