//! # pram-vm — a lock-step CRCW PRAM virtual machine with two backends
//!
//! The paper's introduction names, as an explicit design goal, enabling
//! "generic compiler approaches to translating high-level representations
//! of concurrent writes in PRAM-based programming languages" (the ICE
//! lineage of Ghanim et al. 2018). This crate is that translation target in
//! miniature: a [`Program`] describes a PRAM algorithm as lock-step steps —
//! each step a pure function from `(processor id, pre-step memory)` to a
//! set of writes — and runs **unchanged** on either backend:
//!
//! * [`Program::run_on_machine`] — interpret exactly on the `pram-sim`
//!   ideal machine: one machine step per program step, the chosen conflict
//!   rule applied symbolically, work–depth accounted, model violations
//!   (common-value disagreement, out-of-bounds, duplicate writes) reported
//!   as errors.
//! * [`Program::run_threaded`] — execute on a real multicore via
//!   `pram-exec`, preserving PRAM's reads-before-writes semantics by
//!   **write buffering**: within a step, every processor's reads see the
//!   pre-step memory (writes are collected into per-thread buffers), and a
//!   barrier-separated apply phase commits them under the chosen rule —
//!   arbitrary writes arbitrated by CAS-LT (one claim word per memory
//!   cell, one fresh round per step, re-armed for free), common writes
//!   applied naively and *validated* post-commit, priority writes resolved
//!   by the offer/commit protocol.
//!
//! The two backends give the workspace its strongest correctness story:
//! property tests run random programs on both and compare (exact equality
//! for deterministic rules; winner-set admissibility for arbitrary).
//!
//! ```
//! use pram_vm::{Program, VmRule, Write};
//! use pram_exec::ThreadPool;
//!
//! // O(1) logical OR: cell i holds bit i; cell n is the result.
//! let n = 8;
//! let mut program = Program::new(n + 1);
//! program.step(n, move |pid, mem| {
//!     if mem.read(pid) != 0 {
//!         vec![Write::new(n, 1)] // common concurrent write
//!     } else {
//!         vec![]
//!     }
//! });
//!
//! let mut bits = vec![0i64; n + 1];
//! bits[3] = 1;
//!
//! // Exact, on the ideal machine:
//! let ideal = program.run_on_machine(VmRule::Common, bits.clone()).unwrap();
//! // Fast, on real threads:
//! let pool = ThreadPool::new(4);
//! let real = program.run_threaded(VmRule::Common, bits, &pool).unwrap();
//! assert_eq!(ideal.mem, real.mem);
//! assert_eq!(real.mem[n], 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod program;
pub mod stdlib;
pub mod threaded;

pub use pram_sim::Write;
pub use program::{Program, ProgramOutput, ReadMem, StepFn, VmError, VmRule};
