//! Program representation and the ideal-machine backend.

use std::fmt;
use std::sync::Arc;

use pram_sim::{AccessMode, ArbitraryPolicy, Machine, PramError, Trace, Write, WriteRule};

/// Pre-step memory as a step body sees it, backend-independent.
pub trait ReadMem {
    /// Read cell `addr` (pre-step state). Out-of-bounds reads yield 0 and
    /// fail the step.
    fn read(&self, addr: usize) -> i64;
    /// Memory size.
    fn len(&self) -> usize;
    /// `true` if memory is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A step body: processor `pid`'s instruction for one lock-step round.
pub type StepFn = Arc<dyn Fn(usize, &dyn ReadMem) -> Vec<Write> + Send + Sync>;

/// Write-conflict rule, restricted to those implementable on both
/// backends.
///
/// (The simulator additionally offers min-*value* priority and the
/// Collision rule; the threaded backend's priority cells arbitrate on
/// 32-bit processor ids, so min-pid is the shared priority flavour.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmRule {
    /// All same-cell writers must agree on the value.
    Common,
    /// One same-cell writer wins, unspecified which.
    Arbitrary,
    /// The writer with the smallest processor id wins.
    PriorityMinPid,
}

impl VmRule {
    pub(crate) fn to_sim(self) -> WriteRule {
        match self {
            VmRule::Common => WriteRule::Common,
            // Seeded for reproducibility of the reference runs.
            VmRule::Arbitrary => WriteRule::Arbitrary(ArbitraryPolicy::Seeded(0)),
            VmRule::PriorityMinPid => WriteRule::PriorityMinPid,
        }
    }
}

/// Error from a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A PRAM model violation (both backends detect these; the threaded
    /// backend reports common-value violations post-commit).
    Model(PramError),
    /// A `repeat` block exceeded its iteration bound.
    RepeatDiverged {
        /// Index of the offending unit in the program.
        unit: usize,
        /// The bound that was hit.
        max_iters: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Model(e) => write!(f, "PRAM model violation: {e}"),
            VmError::RepeatDiverged { unit, max_iters } => {
                write!(f, "repeat block {unit} exceeded {max_iters} iterations")
            }
        }
    }
}

impl std::error::Error for VmError {}

impl From<PramError> for VmError {
    fn from(e: PramError) -> VmError {
        VmError::Model(e)
    }
}

/// One lock-step round: how many processors run, and what each does.
#[derive(Clone)]
pub(crate) struct Step {
    pub(crate) procs: usize,
    pub(crate) body: StepFn,
}

/// A program unit: a single step, or a repeat-until block.
pub(crate) enum Unit {
    Step(Step),
    /// Run `steps` repeatedly while `mem[cond_addr] != 0` after a full
    /// pass, at most `max_iters` passes.
    Repeat {
        steps: Vec<Step>,
        cond_addr: usize,
        max_iters: u32,
    },
}

/// Result of a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramOutput {
    /// Final memory.
    pub mem: Vec<i64>,
    /// Work–depth accounting. The threaded backend fills the same fields
    /// by construction (its phases mirror machine steps), so the two
    /// backends' traces are comparable.
    pub trace: Trace,
}

/// A lock-step CRCW PRAM program (see crate docs).
pub struct Program {
    pub(crate) mem_len: usize,
    pub(crate) units: Vec<Unit>,
}

impl Program {
    /// An empty program over `mem_len` memory cells.
    pub fn new(mem_len: usize) -> Program {
        Program {
            mem_len,
            units: Vec::new(),
        }
    }

    /// Declared memory size.
    pub fn mem_len(&self) -> usize {
        self.mem_len
    }

    /// Append one lock-step step executed by `procs` processors.
    pub fn step<F>(&mut self, procs: usize, body: F) -> &mut Program
    where
        F: Fn(usize, &dyn ReadMem) -> Vec<Write> + Send + Sync + 'static,
    {
        self.units.push(Unit::Step(Step {
            procs,
            body: Arc::new(body),
        }));
        self
    }

    /// Append a repeat-until block: the steps added inside `build` run as
    /// full passes while `mem[cond_addr] != 0` at the end of a pass (the
    /// paper's `while (!done)` pattern — the program is responsible for
    /// clearing and setting the flag cell within the pass, typically with
    /// a reset step first and common writes of 1 on progress).
    ///
    /// Errors with [`VmError::RepeatDiverged`] after `max_iters` passes.
    pub fn repeat<B>(&mut self, cond_addr: usize, max_iters: u32, build: B) -> &mut Program
    where
        B: FnOnce(&mut RepeatBuilder),
    {
        let mut b = RepeatBuilder { steps: Vec::new() };
        build(&mut b);
        self.units.push(Unit::Repeat {
            steps: b.steps,
            cond_addr,
            max_iters,
        });
        self
    }

    /// Total step definitions (repeat bodies counted once).
    pub fn num_steps(&self) -> usize {
        self.units
            .iter()
            .map(|u| match u {
                Unit::Step(_) => 1,
                Unit::Repeat { steps, .. } => steps.len(),
            })
            .sum()
    }

    /// Interpret on the ideal machine under `rule`.
    pub fn run_on_machine(
        &self,
        rule: VmRule,
        initial: Vec<i64>,
    ) -> Result<ProgramOutput, VmError> {
        assert_eq!(initial.len(), self.mem_len, "initial memory size mismatch");
        let mut m = Machine::new(AccessMode::Crcw(rule.to_sim()), initial);
        struct View<'a>(&'a pram_sim::MemView<'a>);
        impl ReadMem for View<'_> {
            fn read(&self, addr: usize) -> i64 {
                self.0.read(addr)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
        }
        let run_step = |m: &mut Machine, s: &Step| -> Result<(), VmError> {
            m.step(s.procs, |pid, view| (s.body)(pid, &View(view)))?;
            Ok(())
        };
        for (ui, unit) in self.units.iter().enumerate() {
            match unit {
                Unit::Step(s) => run_step(&mut m, s)?,
                Unit::Repeat {
                    steps,
                    cond_addr,
                    max_iters,
                } => {
                    let mut iters = 0;
                    loop {
                        for s in steps {
                            run_step(&mut m, s)?;
                        }
                        if m.mem()[*cond_addr] == 0 {
                            break;
                        }
                        iters += 1;
                        if iters >= *max_iters {
                            return Err(VmError::RepeatDiverged {
                                unit: ui,
                                max_iters: *max_iters,
                            });
                        }
                    }
                }
            }
        }
        Ok(ProgramOutput {
            mem: m.mem().to_vec(),
            trace: *m.trace(),
        })
    }
}

/// Builder handle inside [`Program::repeat`].
pub struct RepeatBuilder {
    pub(crate) steps: Vec<Step>,
}

impl RepeatBuilder {
    /// Append one step to the repeat body.
    pub fn step<F>(&mut self, procs: usize, body: F) -> &mut RepeatBuilder
    where
        F: Fn(usize, &dyn ReadMem) -> Vec<Write> + Send + Sync + 'static,
    {
        self.steps.push(Step {
            procs,
            body: Arc::new(body),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_common_write() {
        let mut p = Program::new(2);
        p.step(4, |_pid, _mem| vec![Write::new(1, 7)]);
        let out = p.run_on_machine(VmRule::Common, vec![0, 0]).unwrap();
        assert_eq!(out.mem, vec![0, 7]);
        assert_eq!(out.trace.depth, 1);
        assert_eq!(out.trace.work, 4);
        assert_eq!(p.num_steps(), 1);
        assert_eq!(p.mem_len(), 2);
    }

    #[test]
    fn model_violation_surfaces() {
        let mut p = Program::new(1);
        p.step(2, |pid, _| vec![Write::new(0, pid as i64)]);
        let err = p.run_on_machine(VmRule::Common, vec![0]).unwrap_err();
        assert!(matches!(
            err,
            VmError::Model(PramError::CommonViolation { .. })
        ));
        assert!(err.to_string().contains("violation"));
    }

    #[test]
    fn repeat_runs_until_flag_clears() {
        // mem = [counter, flag]; each pass increments the counter and
        // keeps the flag set while counter < 5.
        let mut p = Program::new(2);
        p.repeat(1, 100, |b| {
            b.step(1, |_pid, mem| {
                let c = mem.read(0) + 1;
                let mut w = vec![Write::new(0, c)];
                w.push(Write::new(1, i64::from(c < 5)));
                w
            });
        });
        let out = p.run_on_machine(VmRule::Common, vec![0, 1]).unwrap();
        assert_eq!(out.mem[0], 5);
        assert_eq!(out.mem[1], 0);
    }

    #[test]
    fn repeat_divergence_is_an_error() {
        let mut p = Program::new(1);
        p.repeat(0, 7, |b| {
            b.step(1, |_pid, _| vec![Write::new(0, 1)]); // flag never clears
        });
        let err = p.run_on_machine(VmRule::Common, vec![1]).unwrap_err();
        assert_eq!(
            err,
            VmError::RepeatDiverged {
                unit: 0,
                max_iters: 7
            }
        );
    }

    #[test]
    fn priority_rule_on_machine() {
        let mut p = Program::new(1);
        p.step(5, |pid, _| vec![Write::new(0, 10 + pid as i64)]);
        let out = p.run_on_machine(VmRule::PriorityMinPid, vec![0]).unwrap();
        assert_eq!(out.mem[0], 10);
    }
}
