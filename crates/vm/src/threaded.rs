//! The multicore backend: lock-step interpretation with write buffering
//! and arbitrated commits.
//!
//! Each program step becomes two (or three) barrier-separated phases on
//! the `pram-exec` team:
//!
//! 1. **Collect** — processors are work-shared across the team; every
//!    body runs against the *live* memory array, which no one mutates
//!    during this phase, so all reads observe pre-step state exactly as
//!    PRAM requires. Issued writes go to per-thread buffers (no sharing,
//!    no contention). Per-processor duplicate writes and out-of-bounds
//!    accesses are detected here.
//! 2. **Apply** — each thread drains its own buffer under the rule:
//!    * *Arbitrary*: `CasLtArray::try_claim(addr, round)` elects one
//!      winner per cell per step — the paper's method doing exactly its
//!      job, with the step index as the round ("round could be substituted
//!      by the loop iteration").
//!    * *Common*: naive stores (sound for agreeing single-word writes);
//!      the claim array still runs, purely to count distinct committed
//!      cells for the trace.
//!    * *Priority (min-pid)*: offer phase on a `PriorityArray`, barrier,
//!      then unique winners store.
//! 3. **Validate** (Common only) — after the commit barrier, every thread
//!    re-reads the cells it wrote; any disagreement is the paper's
//!    "algorithm fails" condition, reported as
//!    [`pram_sim::PramError::CommonViolation`]. (Detection is
//!    post-commit: unlike the simulator, the threaded backend cannot
//!    un-write; memory contents are unspecified after this error.)
//!
//! The trace mirrors the simulator's accounting step for step;
//! `max_writers_per_cell` alone is not tracked (it would need per-cell
//! multiplicity counters on the hot path) and stays 0.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use pram_core::{CasLtArray, PriorityArray, Round};
use pram_exec::{Schedule, ThreadPool, WorkerCtx};
use pram_sim::{PramError, Trace, Write};

use crate::program::{Program, ProgramOutput, ReadMem, Step, Unit, VmError, VmRule};

/// Live memory exposed to step bodies during the collect phase.
struct AtomicMem<'a> {
    cells: &'a [AtomicI64],
    /// First out-of-bounds read address (usize::MAX = none).
    oob: &'a AtomicUsize,
}

impl ReadMem for AtomicMem<'_> {
    fn read(&self, addr: usize) -> i64 {
        match self.cells.get(addr) {
            Some(c) => c.load(Ordering::Relaxed),
            None => {
                let _ = self.oob.compare_exchange(
                    usize::MAX,
                    addr,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                0
            }
        }
    }
    fn len(&self) -> usize {
        self.cells.len()
    }
}

/// Everything the team shares while interpreting one program.
struct RunShared {
    mem: Vec<AtomicI64>,
    claims: CasLtArray,
    priority: Option<PriorityArray>,
    buffers: Vec<Mutex<Vec<(u32, Write)>>>,
    oob: AtomicUsize,
    err_flag: AtomicBool,
    err: Mutex<Option<VmError>>,
    // Trace accounting.
    depth: AtomicU64,
    work: AtomicU64,
    issued: AtomicU64,
    committed: AtomicU64,
    conflict_steps: AtomicU64,
}

impl RunShared {
    fn record_err(&self, e: VmError) {
        self.err.lock().get_or_insert(e);
        self.err_flag.store(true, Ordering::Release);
    }
    fn failed(&self) -> bool {
        self.err_flag.load(Ordering::Acquire)
    }
}

impl Program {
    /// Execute on real threads under `rule`; see the module docs for the
    /// phase protocol and its PRAM-semantics argument.
    ///
    /// # Panics
    /// Panics if `initial.len() != self.mem_len()`, or if the program
    /// executes more than `u32::MAX - 1` total steps (the round space).
    pub fn run_threaded(
        &self,
        rule: VmRule,
        initial: Vec<i64>,
        pool: &ThreadPool,
    ) -> Result<ProgramOutput, VmError> {
        assert_eq!(initial.len(), self.mem_len, "initial memory size mismatch");
        let shared = RunShared {
            mem: initial.into_iter().map(AtomicI64::new).collect(),
            claims: CasLtArray::new(self.mem_len),
            priority: (rule == VmRule::PriorityMinPid).then(|| PriorityArray::new(self.mem_len)),
            buffers: (0..pool.num_threads())
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            oob: AtomicUsize::new(usize::MAX),
            err_flag: AtomicBool::new(false),
            err: Mutex::new(None),
            depth: AtomicU64::new(0),
            work: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            conflict_steps: AtomicU64::new(0),
        };

        pool.run(|ctx| {
            // All members execute this control flow identically; every
            // branch condition is read after a barrier, so it agrees.
            let mut step_seq: u32 = 0;
            'program: for (ui, unit) in self.units.iter().enumerate() {
                match unit {
                    Unit::Step(s) => {
                        if !exec_step(ctx, &shared, rule, s, &mut step_seq) {
                            break 'program;
                        }
                    }
                    Unit::Repeat {
                        steps,
                        cond_addr,
                        max_iters,
                    } => {
                        let mut iters = 0u32;
                        loop {
                            for s in steps {
                                if !exec_step(ctx, &shared, rule, s, &mut step_seq) {
                                    break 'program;
                                }
                            }
                            // Post-barrier read: consistent across members.
                            if shared.mem[*cond_addr].load(Ordering::Relaxed) == 0 {
                                break;
                            }
                            iters += 1;
                            if iters >= *max_iters {
                                shared.record_err(VmError::RepeatDiverged {
                                    unit: ui,
                                    max_iters: *max_iters,
                                });
                                break 'program;
                            }
                        }
                    }
                }
            }
        });

        if let Some(e) = shared.err.lock().take() {
            return Err(e);
        }
        Ok(ProgramOutput {
            mem: shared
                .mem
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            trace: Trace {
                depth: shared.depth.into_inner(),
                work: shared.work.into_inner(),
                writes_issued: shared.issued.into_inner(),
                writes_committed: shared.committed.into_inner(),
                steps_with_conflicts: shared.conflict_steps.into_inner(),
                max_writers_per_cell: 0, // not tracked threaded (module docs)
            },
        })
    }
}

/// One lock-step step on the team. Returns `false` (on every member) if
/// the program must abort.
fn exec_step(
    ctx: &WorkerCtx<'_>,
    shared: &RunShared,
    rule: VmRule,
    step: &Step,
    step_seq: &mut u32,
) -> bool {
    let round = Round::from_iteration(*step_seq);
    *step_seq += 1;
    let me = ctx.thread_id();

    // --- Phase 1: collect -------------------------------------------------
    let reader = AtomicMem {
        cells: &shared.mem,
        oob: &shared.oob,
    };
    ctx.for_each(0..step.procs, Schedule::Dynamic { chunk: 64 }, |pid| {
        let writes = (step.body)(pid, &reader);
        // Per-processor duplicate-write detection (one instruction per
        // cell per step).
        for (i, w) in writes.iter().enumerate() {
            if w.addr >= shared.mem.len() {
                shared.record_err(
                    PramError::OutOfBounds {
                        addr: w.addr,
                        len: shared.mem.len(),
                    }
                    .into(),
                );
                return;
            }
            if writes[..i].iter().any(|p| p.addr == w.addr) {
                shared.record_err(PramError::DuplicateWrite { addr: w.addr, pid }.into());
                return;
            }
        }
        if !writes.is_empty() {
            let mut buf = shared.buffers[me].lock();
            buf.extend(writes.into_iter().map(|w| (pid as u32, w)));
        }
    });
    let oob_addr = shared.oob.load(Ordering::Relaxed);
    if oob_addr != usize::MAX {
        shared.record_err(
            PramError::OutOfBounds {
                addr: oob_addr,
                len: shared.mem.len(),
            }
            .into(),
        );
    }
    ctx.barrier();
    if shared.failed() {
        return false;
    }

    // --- Phase 2: apply ---------------------------------------------------
    let my_issued;
    let mut my_committed = 0u64;
    {
        let buf = shared.buffers[me].lock();
        my_issued = buf.len() as u64;
        match rule {
            VmRule::Arbitrary => {
                for &(_pid, w) in buf.iter() {
                    if shared.claims.try_claim(w.addr, round) {
                        shared.mem[w.addr].store(w.value, Ordering::Relaxed);
                        my_committed += 1;
                    }
                }
            }
            VmRule::Common => {
                for &(_pid, w) in buf.iter() {
                    // Naive store (sound: agreeing values), claim only to
                    // count distinct committed cells.
                    shared.mem[w.addr].store(w.value, Ordering::Relaxed);
                    if shared.claims.try_claim(w.addr, round) {
                        my_committed += 1;
                    }
                }
            }
            VmRule::PriorityMinPid => {
                let prio = &shared.priority.as_ref().expect("priority cells");
                for &(pid, w) in buf.iter() {
                    prio.offer(w.addr, round, pid);
                }
            }
        }
    }
    ctx.barrier();

    // --- Phase 3: rule-specific completion ---------------------------------
    match rule {
        VmRule::Arbitrary => {}
        VmRule::Common => {
            // Validate: every writer must observe its own value committed.
            let buf = shared.buffers[me].lock();
            for &(_pid, w) in buf.iter() {
                let got = shared.mem[w.addr].load(Ordering::Relaxed);
                if got != w.value {
                    shared.record_err(
                        PramError::CommonViolation {
                            addr: w.addr,
                            values: (got, w.value),
                        }
                        .into(),
                    );
                    break;
                }
            }
            drop(buf);
            ctx.barrier();
        }
        VmRule::PriorityMinPid => {
            let prio = &shared.priority.as_ref().expect("priority cells");
            let buf = shared.buffers[me].lock();
            for &(pid, w) in buf.iter() {
                if prio.is_winner(w.addr, round, pid) {
                    shared.mem[w.addr].store(w.value, Ordering::Relaxed);
                    my_committed += 1;
                }
            }
            drop(buf);
            ctx.barrier();
        }
    }

    // --- Bookkeeping --------------------------------------------------------
    shared.buffers[me].lock().clear();
    shared.issued.fetch_add(my_issued, Ordering::Relaxed);
    shared.committed.fetch_add(my_committed, Ordering::Relaxed);
    let step_issued = ctx.reduce(my_issued, |a, b| a + b);
    let step_committed = ctx.reduce(my_committed, |a, b| a + b);
    ctx.master(|| {
        shared.depth.fetch_add(1, Ordering::Relaxed);
        shared.work.fetch_add(step.procs as u64, Ordering::Relaxed);
        if step_issued > step_committed {
            shared.conflict_steps.fetch_add(1, Ordering::Relaxed);
        }
    });
    ctx.barrier();
    !shared.failed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VmRule;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn both_backends_agree_on_common_or() {
        let n = 32;
        let mut p = Program::new(n + 1);
        p.step(n, move |pid, mem| {
            if mem.read(pid) != 0 {
                vec![Write::new(n, 1)]
            } else {
                vec![]
            }
        });
        let mut init = vec![0i64; n + 1];
        init[13] = 1;
        init[29] = 1;
        let ideal = p.run_on_machine(VmRule::Common, init.clone()).unwrap();
        let real = p.run_threaded(VmRule::Common, init, &pool()).unwrap();
        assert_eq!(ideal.mem, real.mem);
        assert_eq!(ideal.trace.depth, real.trace.depth);
        assert_eq!(ideal.trace.work, real.trace.work);
        assert_eq!(ideal.trace.writes_issued, real.trace.writes_issued);
        assert_eq!(ideal.trace.writes_committed, real.trace.writes_committed);
    }

    #[test]
    fn reads_see_prestep_memory_threaded() {
        // Parallel swap across a barrierless step: only correct if the
        // collect phase reads pre-step state.
        let mut p = Program::new(2);
        p.step(2, |pid, mem| vec![Write::new(pid, mem.read(1 - pid))]);
        let out = p.run_threaded(VmRule::Common, vec![5, 9], &pool()).unwrap();
        assert_eq!(out.mem, vec![9, 5]);
    }

    #[test]
    fn arbitrary_commits_one_issued_value_threaded() {
        let mut p = Program::new(1);
        p.step(64, |pid, _| vec![Write::new(0, 100 + pid as i64)]);
        let out = p.run_threaded(VmRule::Arbitrary, vec![0], &pool()).unwrap();
        assert!((100..164).contains(&out.mem[0]), "got {}", out.mem[0]);
        assert_eq!(out.trace.writes_issued, 64);
        assert_eq!(out.trace.writes_committed, 1);
        assert_eq!(out.trace.steps_with_conflicts, 1);
    }

    #[test]
    fn priority_min_pid_threaded_matches_machine() {
        let mut p = Program::new(2);
        p.step(16, |pid, _| {
            if pid >= 3 {
                vec![Write::new(pid % 2, 1000 + pid as i64)]
            } else {
                vec![]
            }
        });
        let ideal = p
            .run_on_machine(VmRule::PriorityMinPid, vec![0, 0])
            .unwrap();
        let real = p
            .run_threaded(VmRule::PriorityMinPid, vec![0, 0], &pool())
            .unwrap();
        assert_eq!(ideal.mem, real.mem); // pid 4 wins cell 0, pid 3 cell 1
        assert_eq!(real.mem, vec![1004, 1003]);
    }

    #[test]
    fn common_violation_detected_threaded() {
        let mut p = Program::new(1);
        p.step(8, |pid, _| vec![Write::new(0, pid as i64 % 2)]);
        let err = p
            .run_threaded(VmRule::Common, vec![0], &pool())
            .unwrap_err();
        assert!(matches!(
            err,
            VmError::Model(PramError::CommonViolation { .. })
        ));
    }

    #[test]
    fn oob_and_duplicates_detected_threaded() {
        let mut p = Program::new(2);
        p.step(1, |_, _| vec![Write::new(9, 1)]);
        let err = p
            .run_threaded(VmRule::Common, vec![0, 0], &pool())
            .unwrap_err();
        assert!(matches!(err, VmError::Model(PramError::OutOfBounds { .. })));

        let mut p = Program::new(2);
        p.step(1, |_, _| vec![Write::new(0, 1), Write::new(0, 1)]);
        let err = p
            .run_threaded(VmRule::Common, vec![0, 0], &pool())
            .unwrap_err();
        assert!(matches!(
            err,
            VmError::Model(PramError::DuplicateWrite { .. })
        ));
    }

    #[test]
    fn repeat_blocks_run_threaded() {
        // Doubling counter: mem = [value, flag]; double until >= 100.
        let mut p = Program::new(2);
        p.repeat(1, 64, |b| {
            b.step(1, |_pid, mem| {
                let v = mem.read(0) * 2;
                vec![Write::new(0, v), Write::new(1, i64::from(v < 100))]
            });
        });
        let ideal = p.run_on_machine(VmRule::Common, vec![1, 1]).unwrap();
        let real = p.run_threaded(VmRule::Common, vec![1, 1], &pool()).unwrap();
        assert_eq!(ideal.mem, real.mem);
        assert_eq!(real.mem[0], 128);
    }

    #[test]
    fn repeat_divergence_threaded() {
        let mut p = Program::new(1);
        p.repeat(0, 5, |b| {
            b.step(1, |_, _| vec![Write::new(0, 1)]);
        });
        let err = p
            .run_threaded(VmRule::Common, vec![1], &pool())
            .unwrap_err();
        assert_eq!(
            err,
            VmError::RepeatDiverged {
                unit: 0,
                max_iters: 5
            }
        );
    }

    #[test]
    fn single_thread_pool_works_too() {
        let mut p = Program::new(3);
        p.step(3, |pid, _| vec![Write::new(pid, pid as i64 + 1)]);
        let pool = ThreadPool::new(1);
        let out = p
            .run_threaded(VmRule::Arbitrary, vec![0; 3], &pool)
            .unwrap();
        assert_eq!(out.mem, vec![1, 2, 3]);
    }
}
