//! A reusable sense-reversing spin barrier.
//!
//! The barrier is the synchronization point the paper requires between a
//! concurrent-write round and its dependent reads, and it executes on every
//! loop boundary, so its cost structure matters: one shared arrival counter
//! plus a generation word, both cache-line-isolated. Arrivers increment the
//! counter; the last arriver resets it, optionally runs a caller-supplied
//! closure (the hook [`crate::WorkerCtx`] uses to re-arm per-round shared
//! state exactly once, race-free), and bumps the generation, releasing the
//! spinners.
//!
//! A barrier releases *happens-before* edges in both directions: every
//! pre-barrier action of every participant happens-before every
//! post-barrier action of every participant (arrivals `AcqRel` on the
//! counter; release via a `Release` store of the generation, observed with
//! `Acquire` loads).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

use crate::config::WaitPolicy;

/// A reusable barrier for a fixed team of participants.
///
/// Every participant must call [`SpinBarrier::wait`] (or
/// [`SpinBarrier::wait_with`]) the same number of times; the k-th calls of
/// all participants form the k-th rendezvous.
#[derive(Debug)]
pub struct SpinBarrier {
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicU64>,
    total: usize,
    policy: WaitPolicy,
    spin_before_yield: u32,
    /// Set by the pool when a sibling worker panics; spinners convert it
    /// into a panic of their own instead of waiting forever for a
    /// participant that will never arrive.
    poisoned: CachePadded<AtomicBool>,
}

impl SpinBarrier {
    /// A barrier for `total` participants (≥ 1).
    pub fn new(total: usize, policy: WaitPolicy, spin_before_yield: u32) -> SpinBarrier {
        assert!(total >= 1, "a barrier needs at least one participant");
        SpinBarrier {
            arrived: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicU64::new(0)),
            total,
            policy,
            spin_before_yield,
            poisoned: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of participants.
    #[inline]
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Rendezvous. Returns `true` on the single thread that released the
    /// barrier (the last arriver) — the OpenMP-`single`-like election some
    /// callers exploit.
    #[inline]
    pub fn wait(&self) -> bool {
        self.wait_with(|| {})
    }

    /// Rendezvous; the last arriver runs `f` *before* releasing the others.
    ///
    /// Everything `f` does therefore happens-before every participant's
    /// post-barrier code — the race-free slot for resetting shared
    /// per-round state (cursors, convergence flags, gatekeeper arrays).
    pub fn wait_with(&self, f: impl FnOnce()) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(arrived <= self.total, "barrier called by a non-participant");
        if arrived == self.total {
            f();
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("barrier poisoned: a sibling worker panicked");
                }
                match self.policy {
                    WaitPolicy::Active => std::hint::spin_loop(),
                    WaitPolicy::Passive => {
                        if spins < self.spin_before_yield {
                            spins += 1;
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            }
            false
        }
    }

    /// Poison the barrier: current and future waiters panic instead of
    /// spinning forever. Called by the pool's panic propagation.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn barrier(n: usize) -> SpinBarrier {
        SpinBarrier::new(n, WaitPolicy::Passive, 64)
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = barrier(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_totally_separated() {
        // Classic barrier test: per-phase counters must be complete before
        // anyone proceeds to the next phase.
        const THREADS: usize = 8;
        const PHASES: usize = 50;
        let b = barrier(THREADS);
        let counters: Vec<AtomicU32> = (0..PHASES).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for (phase, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After the barrier, this phase's counter is full.
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            THREADS as u32,
                            "phase {phase} leaked past the barrier"
                        );
                        // And the next phase's counter is still bounded.
                        if phase + 1 < PHASES {
                            assert!(
                                counters[phase + 1].load(Ordering::Relaxed) < THREADS as u32,
                                "phase {} completed before phase {phase} released",
                                phase + 1
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_releaser_per_phase() {
        const THREADS: usize = 6;
        const PHASES: usize = 40;
        let b = barrier(THREADS);
        let releases = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if b.wait() {
                            releases.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(releases.load(Ordering::Relaxed), PHASES as u32);
    }

    #[test]
    fn wait_with_runs_before_release() {
        const THREADS: usize = 4;
        let b = barrier(THREADS);
        let slot = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for phase in 1..=20u32 {
                        b.wait_with(|| slot.store(phase, Ordering::Relaxed));
                        // The closure's effect is visible to every thread
                        // immediately after the barrier.
                        assert_eq!(slot.load(Ordering::Relaxed), phase);
                        b.wait(); // keep phases aligned for the assert
                    }
                });
            }
        });
    }

    #[test]
    fn active_policy_works_too() {
        let b = SpinBarrier::new(4, WaitPolicy::Active, 0);
        let hits = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    assert_eq!(hits.load(Ordering::Relaxed), 4);
                });
            }
        });
    }

    #[test]
    fn poison_releases_waiters_as_panics() {
        let b = barrier(2);
        let r = std::thread::scope(|s| {
            let h = s.spawn(|| b.wait()); // will never be joined by a peer
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            h.join()
        });
        assert!(r.is_err(), "waiter should have panicked on poison");
        assert!(b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = barrier(0);
    }
}
