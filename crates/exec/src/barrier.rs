//! Reusable team barriers: centralized sense-reversing and dissemination.
//!
//! The barrier is the synchronization point the paper requires between a
//! concurrent-write round and its dependent reads, and it executes on every
//! loop boundary — on high-diameter inputs tens of thousands of times per
//! kernel — so its cost structure matters. Two topologies are provided,
//! selected by [`crate::PoolConfig::barrier`] and dispatched through
//! [`TeamBarrier`]:
//!
//! * [`SpinBarrier`] — one shared arrival counter plus a generation word,
//!   both cache-line-isolated. Arrivers increment the counter; the last
//!   arriver resets it, optionally runs a caller-supplied closure (the
//!   hook [`crate::WorkerCtx`] uses to re-arm per-round shared state
//!   exactly once, race-free), and bumps the generation, releasing the
//!   spinners. Cheapest for small teams; every arrival contends one line.
//! * [`DisseminationBarrier`] — `ceil(log2 T)` rounds of pairwise
//!   signaling: in round `r`, thread `i` stamps the flag of thread
//!   `(i + 2^r) mod T` with the current episode number and waits for its
//!   own round-`r` flag. Every flag has exactly one writer and one reader
//!   and sits on its own cache line, so there is no shared hot spot at
//!   all; reuse across episodes needs no reset (flags carry monotonically
//!   increasing episode stamps — the sense-reversal generalization).
//!
//! Both barriers release *happens-before* edges in both directions: every
//! pre-barrier action of every participant happens-before every
//! post-barrier action of every participant (centralized: `AcqRel`
//! arrivals + a `Release`/`Acquire` generation word; dissemination:
//! `Release` stores / `Acquire` loads chained along the signal graph,
//! which spans all `T` participants after `ceil(log2 T)` rounds).
//!
//! Waiting escalates through [`crate::WaitPolicy`]: active waiters spin
//! forever; passive waiters spin briefly, yield for a while, then park in
//! exponentially growing timed sleeps — on oversubscribed machines
//! (threads > cores, which the thread-scaling sweep deliberately creates)
//! a tight `yield_now` loop burns the timeslice the straggler needs.
//!
//! The dissemination barrier's cross-thread flags go through the
//! [`pram_core::sync`] facade, so under `--cfg pram_check` the
//! `pram-check` crate can model-check it (no early release, episode reuse)
//! exactly like the arbiters; its spin loops emit
//! [`pram_core::sync::park_hint`] so the lockstep scheduler parks waiters
//! instead of exploring unbounded re-reads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam_utils::CachePadded;
use pram_core::sync as psync;

use crate::config::{BarrierKind, WaitPolicy};

/// Yield attempts after the spin budget, before timed parking starts.
const YIELDS_BEFORE_PARK: u32 = 64;
/// First timed-park duration, doubled per retry up to the cap.
const PARK_START_US: u64 = 5;
/// Longest single timed park — bounds release-observation latency.
const PARK_CAP_US: u64 = 100;

/// Escalating wait-loop body shared by both barrier topologies (and any
/// other bounded spin in this crate): spin → yield → exponentially growing
/// `park_timeout`, per [`WaitPolicy`].
///
/// The third stage is the oversubscription fix: a waiter that has yielded
/// [`YIELDS_BEFORE_PARK`] times is almost certainly waiting on a straggler
/// that needs the core, so it sleeps — first [`PARK_START_US`] µs,
/// doubling to [`PARK_CAP_US`] µs — instead of re-contending the run
/// queue. The cap keeps worst-case wakeup latency bounded (a poisoned or
/// released barrier is observed within one cap interval).
#[derive(Debug)]
pub struct WaitBackoff {
    policy: WaitPolicy,
    spin_before_yield: u32,
    step: u32,
}

impl WaitBackoff {
    /// A fresh backoff at the start of its spin stage.
    pub fn new(policy: WaitPolicy, spin_before_yield: u32) -> WaitBackoff {
        WaitBackoff {
            policy,
            spin_before_yield,
            step: 0,
        }
    }

    /// Perform one wait step and escalate.
    #[inline]
    pub fn wait(&mut self) {
        match self.policy {
            WaitPolicy::Active => std::hint::spin_loop(),
            WaitPolicy::Passive => {
                let s = self.step;
                self.step = s.saturating_add(1);
                if s < self.spin_before_yield {
                    std::hint::spin_loop();
                } else if s < self.spin_before_yield.saturating_add(YIELDS_BEFORE_PARK) {
                    std::thread::yield_now();
                } else {
                    let exp = s - self.spin_before_yield - YIELDS_BEFORE_PARK;
                    let us = PARK_START_US
                        .saturating_mul(1 << exp.min(5))
                        .min(PARK_CAP_US);
                    std::thread::park_timeout(Duration::from_micros(us));
                }
            }
        }
    }

    /// Whether this backoff has escalated past pure spinning (diagnostic;
    /// used by tests to pin the escalation order).
    pub fn is_yielding(&self) -> bool {
        matches!(self.policy, WaitPolicy::Passive) && self.step > self.spin_before_yield
    }
}

/// A reusable centralized barrier for a fixed team of participants.
///
/// Every participant must call [`SpinBarrier::wait`] (or
/// [`SpinBarrier::wait_with`]) the same number of times; the k-th calls of
/// all participants form the k-th rendezvous.
#[derive(Debug)]
pub struct SpinBarrier {
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicU64>,
    total: usize,
    policy: WaitPolicy,
    spin_before_yield: u32,
    /// Set by the pool when a sibling worker panics; spinners convert it
    /// into a panic of their own instead of waiting forever for a
    /// participant that will never arrive.
    poisoned: CachePadded<AtomicBool>,
}

impl SpinBarrier {
    /// A barrier for `total` participants (≥ 1).
    pub fn new(total: usize, policy: WaitPolicy, spin_before_yield: u32) -> SpinBarrier {
        assert!(total >= 1, "a barrier needs at least one participant");
        SpinBarrier {
            arrived: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicU64::new(0)),
            total,
            policy,
            spin_before_yield,
            poisoned: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of participants.
    #[inline]
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Rendezvous. Returns `true` on the single thread that released the
    /// barrier (the last arriver) — the OpenMP-`single`-like election some
    /// callers exploit.
    #[inline]
    pub fn wait(&self) -> bool {
        self.wait_with(|| {})
    }

    /// Rendezvous; the last arriver runs `f` *before* releasing the others.
    ///
    /// Everything `f` does therefore happens-before every participant's
    /// post-barrier code — the race-free slot for resetting shared
    /// per-round state (cursors, convergence flags, gatekeeper arrays).
    pub fn wait_with(&self, f: impl FnOnce()) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(arrived <= self.total, "barrier called by a non-participant");
        if arrived == self.total {
            f();
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut backoff = WaitBackoff::new(self.policy, self.spin_before_yield);
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("barrier poisoned: a sibling worker panicked");
                }
                backoff.wait();
            }
            false
        }
    }

    /// Poison the barrier: current and future waiters panic instead of
    /// spinning forever. Called by the pool's panic propagation.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// A reusable dissemination barrier: O(log T) pairwise-signal rounds, no
/// shared counter (see module docs for the topology and memory-ordering
/// argument).
///
/// Unlike [`SpinBarrier`], participants are *identified*: every thread
/// passes its stable team id (`0..total`) to [`DisseminationBarrier::wait`]
/// — the signal partners are a function of the id. The k-th calls of all
/// participants form the k-th rendezvous (episode), and a thread must
/// never skip an episode other threads complete.
#[derive(Debug)]
pub struct DisseminationBarrier {
    /// `flags[tid][r]`: episode stamp written by `tid`'s round-`r` partner
    /// `(tid - 2^r) mod T`. One writer, one reader, own cache line;
    /// routed through the sync facade so the checker can explore it.
    flags: Box<[Box<[CachePadded<psync::AtomicU64>]>]>,
    /// Per-thread episode counter. Thread-private bookkeeping (slot `tid`
    /// is only ever touched by thread `tid`), so it stays a plain atomic —
    /// instrumenting it would add scheduling points without adding any
    /// cross-thread interaction.
    episode: Box<[CachePadded<AtomicU64>]>,
    /// Broadcast slot for [`DisseminationBarrier::wait_with`]: member 0
    /// stamps the episode here after running the closure.
    release: CachePadded<psync::AtomicU64>,
    total: usize,
    rounds: u32,
    policy: WaitPolicy,
    spin_before_yield: u32,
    poisoned: CachePadded<AtomicBool>,
}

impl DisseminationBarrier {
    /// A barrier for `total` participants (≥ 1).
    pub fn new(total: usize, policy: WaitPolicy, spin_before_yield: u32) -> DisseminationBarrier {
        assert!(total >= 1, "a barrier needs at least one participant");
        let rounds = if total > 1 {
            usize::BITS - (total - 1).leading_zeros()
        } else {
            0
        };
        let mk_flags = || {
            let mut v = Vec::with_capacity(rounds as usize);
            v.resize_with(rounds as usize, || {
                CachePadded::new(psync::AtomicU64::new(0))
            });
            v.into_boxed_slice()
        };
        let mut flags = Vec::with_capacity(total);
        flags.resize_with(total, mk_flags);
        let mut episode = Vec::with_capacity(total);
        episode.resize_with(total, || CachePadded::new(AtomicU64::new(0)));
        DisseminationBarrier {
            flags: flags.into_boxed_slice(),
            episode: episode.into_boxed_slice(),
            release: CachePadded::new(psync::AtomicU64::new(0)),
            total,
            rounds,
            policy,
            spin_before_yield,
            poisoned: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of participants.
    #[inline]
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Signal rounds: `ceil(log2 participants)`.
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Spin (with escalation) until `flag >= episode`, converting poison
    /// into a panic. The `>=` is what makes episode reuse reset-free: a
    /// fast partner may already have stamped a *later* episode, which
    /// subsumes the awaited arrival.
    fn spin_until(&self, flag: &psync::AtomicU64, episode: u64) {
        let addr = flag as *const psync::AtomicU64 as usize;
        let mut backoff = WaitBackoff::new(self.policy, self.spin_before_yield);
        loop {
            if flag.load(Ordering::Acquire) >= episode {
                return;
            }
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("barrier poisoned: a sibling worker panicked");
            }
            backoff.wait();
            psync::park_hint(addr);
        }
    }

    /// Advance and return this thread's episode, then run the signal
    /// rounds. On return, every participant has entered this episode.
    fn rendezvous(&self, tid: usize) -> u64 {
        assert!(tid < self.total, "barrier wait from a non-participant id");
        let e = self.episode[tid].load(Ordering::Relaxed) + 1;
        self.episode[tid].store(e, Ordering::Relaxed);
        for r in 0..self.rounds {
            let partner = (tid + (1usize << r)) % self.total;
            let flag = &*self.flags[partner][r as usize];
            flag.store(e, Ordering::Release);
            psync::unpark_hint(flag as *const psync::AtomicU64 as usize);
            self.spin_until(&self.flags[tid][r as usize], e);
        }
        e
    }

    /// Rendezvous. Returns `true` on exactly one member (member 0) — the
    /// same OpenMP-`single`-like election [`SpinBarrier::wait`] provides.
    /// Like the centralized barrier's releaser, the elected member returns
    /// only after every participant has arrived.
    #[inline]
    pub fn wait(&self, tid: usize) -> bool {
        self.rendezvous(tid);
        tid == 0
    }

    /// Rendezvous; member 0 runs `f` after all participants arrive and
    /// *before* any other member returns (a rendezvous plus a broadcast
    /// phase — one extra flag hop over [`DisseminationBarrier::wait`]).
    ///
    /// Everything `f` does happens-before every participant's post-barrier
    /// code, matching [`SpinBarrier::wait_with`]'s contract.
    pub fn wait_with(&self, tid: usize, f: impl FnOnce()) -> bool {
        let e = self.rendezvous(tid);
        if tid == 0 {
            f();
            self.release.store(e, Ordering::Release);
            psync::unpark_hint(&*self.release as *const psync::AtomicU64 as usize);
            true
        } else {
            self.spin_until(&self.release, e);
            false
        }
    }

    /// Poison the barrier: current and future waiters panic instead of
    /// waiting forever (parked waiters observe it within one timed-park
    /// cap).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// The barrier a [`crate::ThreadPool`] actually synchronizes on: one of
/// the two topologies, selected by [`BarrierKind`] at pool construction
/// and dispatched per call.
///
/// Callers pass their team id; the centralized topology ignores it, the
/// dissemination topology requires it. The enum (rather than a trait
/// object) keeps the per-round dispatch a predictable branch instead of an
/// indirect call on the hottest path in the crate.
#[derive(Debug)]
pub enum TeamBarrier {
    /// Centralized sense-reversing barrier.
    Central(SpinBarrier),
    /// Dissemination barrier.
    Dissemination(DisseminationBarrier),
}

impl TeamBarrier {
    /// A barrier of the given topology for `total` participants.
    pub fn new(
        kind: BarrierKind,
        total: usize,
        policy: WaitPolicy,
        spin_before_yield: u32,
    ) -> TeamBarrier {
        match kind {
            BarrierKind::Central => {
                TeamBarrier::Central(SpinBarrier::new(total, policy, spin_before_yield))
            }
            BarrierKind::Dissemination => TeamBarrier::Dissemination(DisseminationBarrier::new(
                total,
                policy,
                spin_before_yield,
            )),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        match self {
            TeamBarrier::Central(b) => b.participants(),
            TeamBarrier::Dissemination(b) => b.participants(),
        }
    }

    /// Rendezvous as team member `tid`; `true` on exactly one member.
    #[inline]
    pub fn wait(&self, tid: usize) -> bool {
        match self {
            TeamBarrier::Central(b) => b.wait(),
            TeamBarrier::Dissemination(b) => b.wait(tid),
        }
    }

    /// Rendezvous; the elected member runs `f` after all arrive and before
    /// any other member returns.
    #[inline]
    pub fn wait_with(&self, tid: usize, f: impl FnOnce()) -> bool {
        match self {
            TeamBarrier::Central(b) => b.wait_with(f),
            TeamBarrier::Dissemination(b) => b.wait_with(tid, f),
        }
    }

    /// Poison: current and future waiters panic.
    pub fn poison(&self) {
        match self {
            TeamBarrier::Central(b) => b.poison(),
            TeamBarrier::Dissemination(b) => b.poison(),
        }
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        match self {
            TeamBarrier::Central(b) => b.is_poisoned(),
            TeamBarrier::Dissemination(b) => b.is_poisoned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn barrier(n: usize) -> SpinBarrier {
        SpinBarrier::new(n, WaitPolicy::Passive, 64)
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = barrier(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_totally_separated() {
        // Classic barrier test: per-phase counters must be complete before
        // anyone proceeds to the next phase.
        const THREADS: usize = 8;
        const PHASES: usize = 50;
        let b = barrier(THREADS);
        let counters: Vec<AtomicU32> = (0..PHASES).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for (phase, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After the barrier, this phase's counter is full.
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            THREADS as u32,
                            "phase {phase} leaked past the barrier"
                        );
                        // And the next phase's counter is still bounded.
                        if phase + 1 < PHASES {
                            assert!(
                                counters[phase + 1].load(Ordering::Relaxed) < THREADS as u32,
                                "phase {} completed before phase {phase} released",
                                phase + 1
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_releaser_per_phase() {
        const THREADS: usize = 6;
        const PHASES: usize = 40;
        let b = barrier(THREADS);
        let releases = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if b.wait() {
                            releases.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(releases.load(Ordering::Relaxed), PHASES as u32);
    }

    #[test]
    fn wait_with_runs_before_release() {
        const THREADS: usize = 4;
        let b = barrier(THREADS);
        let slot = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for phase in 1..=20u32 {
                        b.wait_with(|| slot.store(phase, Ordering::Relaxed));
                        // The closure's effect is visible to every thread
                        // immediately after the barrier.
                        assert_eq!(slot.load(Ordering::Relaxed), phase);
                        b.wait(); // keep phases aligned for the assert
                    }
                });
            }
        });
    }

    #[test]
    fn active_policy_works_too() {
        let b = SpinBarrier::new(4, WaitPolicy::Active, 0);
        let hits = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    assert_eq!(hits.load(Ordering::Relaxed), 4);
                });
            }
        });
    }

    #[test]
    fn poison_releases_waiters_as_panics() {
        let b = barrier(2);
        let r = std::thread::scope(|s| {
            let h = s.spawn(|| b.wait()); // will never be joined by a peer
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            h.join()
        });
        assert!(r.is_err(), "waiter should have panicked on poison");
        assert!(b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = barrier(0);
    }

    #[test]
    fn backoff_escalates_in_order() {
        // spin_before_yield spins, then yields, then timed parks — the
        // escalation must be monotone and never panic far into the tail.
        let mut b = WaitBackoff::new(WaitPolicy::Passive, 4);
        for _ in 0..4 {
            b.wait();
            assert!(!b.is_yielding());
        }
        for _ in 0..(YIELDS_BEFORE_PARK + 8) {
            b.wait();
        }
        assert!(b.is_yielding());
        // Active never escalates.
        let mut a = WaitBackoff::new(WaitPolicy::Active, 0);
        for _ in 0..1000 {
            a.wait();
        }
        assert!(!a.is_yielding());
    }

    #[test]
    fn dissemination_round_counts() {
        for (total, rounds) in [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)] {
            let b = DisseminationBarrier::new(total, WaitPolicy::Passive, 8);
            assert_eq!(b.rounds(), rounds, "total={total}");
            assert_eq!(b.participants(), total);
        }
    }

    #[test]
    fn dissemination_single_participant_never_blocks() {
        let b = DisseminationBarrier::new(1, WaitPolicy::Passive, 8);
        for _ in 0..10 {
            assert!(b.wait(0));
            assert!(b.wait_with(0, || {}));
        }
    }

    #[test]
    fn dissemination_phases_are_totally_separated() {
        const THREADS: usize = 5; // non-power-of-two exercises the mod wrap
        const PHASES: usize = 50;
        let b = DisseminationBarrier::new(THREADS, WaitPolicy::Passive, 64);
        let counters: Vec<AtomicU32> = (0..PHASES).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let b = &b;
                let counters = &counters;
                s.spawn(move || {
                    for (phase, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait(tid);
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            THREADS as u32,
                            "phase {phase} leaked past the barrier"
                        );
                        if phase + 1 < PHASES {
                            assert!(
                                counters[phase + 1].load(Ordering::Relaxed) < THREADS as u32,
                                "phase {} completed before phase {phase} released",
                                phase + 1
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn dissemination_wait_with_closure_visible_to_all() {
        const THREADS: usize = 4;
        let b = DisseminationBarrier::new(THREADS, WaitPolicy::Passive, 64);
        let slot = AtomicU32::new(0);
        let elections = AtomicU32::new(0);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let b = &b;
                let slot = &slot;
                let elections = &elections;
                s.spawn(move || {
                    for phase in 1..=20u32 {
                        if b.wait_with(tid, || slot.store(phase, Ordering::Relaxed)) {
                            elections.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(slot.load(Ordering::Relaxed), phase);
                        b.wait(tid); // keep phases aligned for the assert
                    }
                });
            }
        });
        assert_eq!(elections.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn dissemination_poison_releases_parked_waiters() {
        let b = DisseminationBarrier::new(2, WaitPolicy::Passive, 4);
        let r = std::thread::scope(|s| {
            let h = s.spawn(|| b.wait(0)); // peer (tid 1) never arrives
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            h.join()
        });
        assert!(r.is_err(), "waiter should have panicked on poison");
        assert!(b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "non-participant id")]
    fn dissemination_out_of_range_id_rejected() {
        let b = DisseminationBarrier::new(2, WaitPolicy::Passive, 4);
        b.wait(2);
    }

    #[test]
    fn team_barrier_dispatches_both_kinds() {
        for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
            let b = TeamBarrier::new(kind, 3, WaitPolicy::Passive, 32);
            assert_eq!(b.participants(), 3);
            assert!(!b.is_poisoned());
            let hits = AtomicU32::new(0);
            let elections = AtomicU32::new(0);
            std::thread::scope(|s| {
                for tid in 0..3 {
                    let b = &b;
                    let hits = &hits;
                    let elections = &elections;
                    s.spawn(move || {
                        for _ in 0..25 {
                            hits.fetch_add(1, Ordering::Relaxed);
                            if b.wait(tid) {
                                elections.fetch_add(1, Ordering::Relaxed);
                            }
                            b.wait_with(tid, || {});
                        }
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 75);
            assert_eq!(elections.load(Ordering::Relaxed), 25, "{kind:?}");
        }
    }
}
