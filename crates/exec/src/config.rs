//! Pool configuration: team size and wait policy.

/// How a thread waits at a barrier (the analog of `OMP_WAIT_POLICY`).
///
/// The paper's experiments set the OpenMP runtime to the *active* policy:
/// waiting threads spin, never yielding the core, minimizing barrier
/// latency when every thread owns a core. On oversubscribed machines
/// (more threads than cores — including this workspace's thread-sweep
/// benchmarks run on small boxes) active waiting is pathological: a
/// spinning waiter burns the timeslice the straggler needs. The *passive*
/// policy spins briefly, then politely yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Pure spin (`OMP_WAIT_POLICY=active`). Lowest latency when
    /// `threads <= cores`; livelock-prone when oversubscribed.
    Active,
    /// Spin [`PoolConfig::spin_before_yield`] iterations, then
    /// `std::thread::yield_now` between re-checks. Robust default.
    #[default]
    Passive,
}

/// Configuration for [`crate::ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Team size, including the caller's thread (≥ 1).
    pub threads: usize,
    /// Barrier wait behaviour.
    pub wait_policy: WaitPolicy,
    /// Spin iterations before the passive policy starts yielding.
    pub spin_before_yield: u32,
}

impl PoolConfig {
    /// A team of `threads` with the default (passive) wait policy.
    pub fn new(threads: usize) -> PoolConfig {
        PoolConfig {
            threads,
            ..PoolConfig::default()
        }
    }

    /// Override the wait policy.
    pub fn wait_policy(mut self, policy: WaitPolicy) -> PoolConfig {
        self.wait_policy = policy;
        self
    }

    /// Override the pre-yield spin count.
    pub fn spin_before_yield(mut self, iters: u32) -> PoolConfig {
        self.spin_before_yield = iters;
        self
    }
}

impl Default for PoolConfig {
    /// One thread per available core, passive waiting.
    fn default() -> PoolConfig {
        PoolConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            wait_policy: WaitPolicy::Passive,
            spin_before_yield: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = PoolConfig::new(7)
            .wait_policy(WaitPolicy::Active)
            .spin_before_yield(5);
        assert_eq!(c.threads, 7);
        assert_eq!(c.wait_policy, WaitPolicy::Active);
        assert_eq!(c.spin_before_yield, 5);
    }

    #[test]
    fn default_is_passive_with_positive_team() {
        let c = PoolConfig::default();
        assert!(c.threads >= 1);
        assert_eq!(c.wait_policy, WaitPolicy::Passive);
    }
}
