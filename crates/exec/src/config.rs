//! Pool configuration: team size, wait policy, barrier topology, and the
//! irregular-loop scheduling preference.

use crate::schedule::ScheduleKind;

/// How a thread waits at a barrier (the analog of `OMP_WAIT_POLICY`).
///
/// The paper's experiments set the OpenMP runtime to the *active* policy:
/// waiting threads spin, never yielding the core, minimizing barrier
/// latency when every thread owns a core. On oversubscribed machines
/// (more threads than cores — including this workspace's thread-sweep
/// benchmarks run on small boxes) active waiting is pathological: a
/// spinning waiter burns the timeslice the straggler needs. The *passive*
/// policy spins briefly, then politely yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Pure spin (`OMP_WAIT_POLICY=active`). Lowest latency when
    /// `threads <= cores`; livelock-prone when oversubscribed.
    Active,
    /// Spin [`PoolConfig::spin_before_yield`] iterations, then
    /// `std::thread::yield_now` between re-checks. Robust default.
    #[default]
    Passive,
}

/// Barrier topology for the pool's team-wide rendezvous.
///
/// The paper's kernels are lock-step: on high-diameter inputs (a 2^14
/// path runs ~16k BFS rounds) the barrier executes tens of thousands of
/// times and its cost structure dominates wall time, so the topology is
/// configurable:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// One shared arrival counter + generation word
    /// ([`crate::SpinBarrier`]). Cheapest at small team sizes — a single
    /// `fetch_add` per arrival — but every arrival contends the same cache
    /// line, the centralized hot spot that collapses as teams grow.
    #[default]
    Central,
    /// Dissemination barrier ([`crate::DisseminationBarrier`]):
    /// `ceil(log2 T)` rounds of pairwise signaling through per-thread,
    /// cache-line-padded flag slots. No shared counter at all — each flag
    /// has exactly one writer and one reader — so arrival traffic scales
    /// as O(T log T) *uncontended* stores instead of O(T) CASes on one
    /// line.
    Dissemination,
}

/// The pool's preferred concurrent-write method, advisory metadata that
/// kernels read back via [`crate::ThreadPool::method_kind`] (typically
/// through `pram_algos::CwMethod::for_pool`) so one configuration point
/// selects arbitration for every kernel launched on the pool.
///
/// The substrate itself never instantiates arbiters — kernels do — so
/// this enum mirrors the kernel-level method names without depending on
/// them. [`MethodKind::Adaptive`] selects the telemetry-driven
/// `pram_core::AdaptiveArbiter`; for its online switching to have data,
/// enable [`PoolConfig::telemetry`] (without it the adaptive arbiter
/// stays on its starting delegate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MethodKind {
    /// Unarbitrated stores (sound only for single-word common writes).
    Naive,
    /// Fetch-and-add gatekeeper.
    Gatekeeper,
    /// Gatekeeper with the load-first skip mitigation.
    GatekeeperSkip,
    /// CAS-if-less-than round claims (the paper's method).
    #[default]
    CasLt,
    /// CAS-LT with one cache line per claim word.
    CasLtPadded,
    /// Per-target mutex baseline.
    Lock,
    /// Contention-adaptive delegation driven by round telemetry, with
    /// switch decisions made in the elected member's slot of the tuning
    /// rendezvous ([`crate::WorkerCtx::tune`]).
    Adaptive,
}

impl MethodKind {
    /// Stable short name (matches the kernel-level method names).
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Naive => "naive",
            MethodKind::Gatekeeper => "gatekeeper",
            MethodKind::GatekeeperSkip => "gatekeeper-skip",
            MethodKind::CasLt => "caslt",
            MethodKind::CasLtPadded => "caslt-padded",
            MethodKind::Lock => "lock",
            MethodKind::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for [`crate::ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Team size, including the caller's thread (≥ 1).
    pub threads: usize,
    /// Barrier wait behaviour.
    pub wait_policy: WaitPolicy,
    /// Spin iterations before the passive policy starts yielding.
    pub spin_before_yield: u32,
    /// Barrier topology.
    pub barrier: BarrierKind,
    /// How irregular worksharing loops
    /// ([`crate::WorkerCtx::for_each_frontier`] and other callers of
    /// [`crate::WorkerCtx::irregular_schedule`]) distribute chunks:
    /// shared-cursor dynamic or per-worker work stealing.
    pub irregular: ScheduleKind,
    /// Collect per-worker [`pram_core::ExecStats`] (barrier waits,
    /// grab/steal counts). Off by default: recording costs one branch on
    /// the hot paths when disabled, atomic increments when enabled.
    pub collect_stats: bool,
    /// Collect per-round concurrent-write telemetry
    /// ([`pram_core::CwTelemetry`]): each worker records its claim
    /// outcomes into a cache-padded shard, and
    /// [`crate::WorkerCtx::converge_rounds`] snapshots the merged counters
    /// at every round's closing barrier into a
    /// [`pram_core::RoundReport`]. Implies `collect_stats`. Off by
    /// default; no effect when the `telemetry` feature is disabled.
    pub telemetry: bool,
    /// Preferred concurrent-write method for kernels launched on this
    /// pool (advisory; see [`MethodKind`]). Defaults to
    /// [`MethodKind::CasLt`], the paper's overall winner.
    pub method: MethodKind,
}

impl PoolConfig {
    /// A team of `threads` with the default (passive) wait policy.
    pub fn new(threads: usize) -> PoolConfig {
        PoolConfig {
            threads,
            ..PoolConfig::default()
        }
    }

    /// Override the wait policy.
    pub fn wait_policy(mut self, policy: WaitPolicy) -> PoolConfig {
        self.wait_policy = policy;
        self
    }

    /// Override the pre-yield spin count.
    pub fn spin_before_yield(mut self, iters: u32) -> PoolConfig {
        self.spin_before_yield = iters;
        self
    }

    /// Override the barrier topology.
    pub fn barrier(mut self, kind: BarrierKind) -> PoolConfig {
        self.barrier = kind;
        self
    }

    /// Override the irregular-loop scheduling preference.
    pub fn irregular(mut self, kind: ScheduleKind) -> PoolConfig {
        self.irregular = kind;
        self
    }

    /// Enable or disable per-worker execution statistics.
    pub fn collect_stats(mut self, on: bool) -> PoolConfig {
        self.collect_stats = on;
        self
    }

    /// Enable or disable per-round concurrent-write telemetry.
    pub fn telemetry(mut self, on: bool) -> PoolConfig {
        self.telemetry = on;
        self
    }

    /// Override the pool's preferred concurrent-write method.
    pub fn method(mut self, kind: MethodKind) -> PoolConfig {
        self.method = kind;
        self
    }
}

impl Default for PoolConfig {
    /// One thread per available core, passive waiting, central barrier,
    /// dynamic irregular loops, no stats.
    fn default() -> PoolConfig {
        PoolConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            wait_policy: WaitPolicy::Passive,
            spin_before_yield: 128,
            barrier: BarrierKind::Central,
            irregular: ScheduleKind::Dynamic,
            collect_stats: false,
            telemetry: false,
            method: MethodKind::CasLt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = PoolConfig::new(7)
            .wait_policy(WaitPolicy::Active)
            .spin_before_yield(5)
            .barrier(BarrierKind::Dissemination)
            .irregular(ScheduleKind::Stealing)
            .collect_stats(true)
            .telemetry(true)
            .method(MethodKind::Adaptive);
        assert_eq!(c.threads, 7);
        assert_eq!(c.method, MethodKind::Adaptive);
        assert_eq!(c.wait_policy, WaitPolicy::Active);
        assert_eq!(c.spin_before_yield, 5);
        assert_eq!(c.barrier, BarrierKind::Dissemination);
        assert_eq!(c.irregular, ScheduleKind::Stealing);
        assert!(c.collect_stats);
        assert!(c.telemetry);
    }

    #[test]
    fn default_is_passive_with_positive_team() {
        let c = PoolConfig::default();
        assert!(c.threads >= 1);
        assert_eq!(c.wait_policy, WaitPolicy::Passive);
        assert_eq!(c.barrier, BarrierKind::Central);
        assert_eq!(c.irregular, ScheduleKind::Dynamic);
        assert!(!c.collect_stats);
        assert!(!c.telemetry);
        assert_eq!(c.method, MethodKind::CasLt);
    }

    #[test]
    fn method_kind_names_are_stable() {
        let all = [
            MethodKind::Naive,
            MethodKind::Gatekeeper,
            MethodKind::GatekeeperSkip,
            MethodKind::CasLt,
            MethodKind::CasLtPadded,
            MethodKind::Lock,
            MethodKind::Adaptive,
        ];
        for kind in all {
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(MethodKind::default(), MethodKind::CasLt);
    }
}
