//! Shared frontier/worklist buffers for sparse, frontier-centric kernels.
//!
//! Level-synchronous kernels that scan *all* n vertices per round waste
//! work once the active set is small. The frontier-centric alternative
//! keeps the active set explicit: during a round every worker appends
//! discoveries to a thread-local [`LocalBuffer`], which publishes into the
//! shared [`FrontierBuffer`] by reserving a region with one `fetch_add`
//! and copying — the classic grow-local, publish-with-one-RMW queue. After
//! the round's barrier the buffer is a plain read-only array for the next
//! round.
//!
//! Entries are `u64` (vertex ids, edge ids — anything that fits a word)
//! stored in `AtomicU64` slots with `Relaxed` operations, so concurrent
//! publication is race-free by construction and the barrier supplies the
//! happens-before edge for readers, the same discipline every
//! concurrent-write target in this workspace follows.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

/// A shared append-only array of `u64` entries with a fixed capacity.
///
/// Writers publish disjoint regions reserved by a single `fetch_add` on
/// the length; readers consume the whole array after a synchronization
/// point. [`FrontierBuffer::clear`] recycles the buffer for the next round
/// and must also be separated from readers/writers by a barrier (the
/// kernels here clear inside [`crate::WorkerCtx::barrier_with`]).
#[derive(Debug)]
pub struct FrontierBuffer {
    slots: Box<[AtomicU64]>,
    len: CachePadded<AtomicUsize>,
}

impl FrontierBuffer {
    /// An empty buffer able to hold `capacity` entries.
    pub fn with_capacity(capacity: usize) -> FrontierBuffer {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU64::new(0));
        FrontierBuffer {
            slots: v.into_boxed_slice(),
            len: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Published entry count (authoritative after a synchronization
    /// point; advisory while publishers are active).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).min(self.capacity())
    }

    /// `true` if no entries are published.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries. Call only while no reader or publisher is active
    /// (e.g. from the releaser of [`crate::WorkerCtx::barrier_with`]).
    #[inline]
    pub fn clear(&self) {
        self.len.store(0, Ordering::Relaxed);
    }

    /// Publish `items` as one contiguous region; returns the region's
    /// starting index.
    ///
    /// # Panics
    /// Panics if the reservation would exceed the capacity.
    pub fn publish(&self, items: &[u64]) -> usize {
        if items.is_empty() {
            return self.len.load(Ordering::Relaxed);
        }
        let start = self.len.fetch_add(items.len(), Ordering::Relaxed);
        assert!(
            start + items.len() <= self.slots.len(),
            "frontier overflow: {} + {} > capacity {}",
            start,
            items.len(),
            self.slots.len()
        );
        for (i, &x) in items.iter().enumerate() {
            self.slots[start + i].store(x, Ordering::Relaxed);
        }
        start
    }

    /// The entry at `index` (`index < len()`).
    #[inline]
    pub fn get(&self, index: usize) -> u64 {
        self.slots[index].load(Ordering::Relaxed)
    }

    /// Iterate the published entries (call after a synchronization point).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Copy the published entries out (diagnostics/tests).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// Default flush threshold for [`LocalBuffer`]: large enough to amortize
/// the `fetch_add`, small enough to stay in L1.
pub const LOCAL_BUFFER_FLUSH: usize = 1024;

/// A worker-private staging buffer feeding a [`FrontierBuffer`].
///
/// `push` is a plain `Vec` append; when the buffer reaches its flush
/// threshold it publishes to the shared buffer in one reservation. The
/// worker **must** call [`LocalBuffer::flush`] before the round's closing
/// barrier — unflushed entries are invisible to other workers.
#[derive(Debug)]
pub struct LocalBuffer {
    buf: Vec<u64>,
    threshold: usize,
}

impl LocalBuffer {
    /// An empty buffer with the default flush threshold.
    pub fn new() -> LocalBuffer {
        LocalBuffer::with_threshold(LOCAL_BUFFER_FLUSH)
    }

    /// An empty buffer flushing at `threshold` entries.
    pub fn with_threshold(threshold: usize) -> LocalBuffer {
        let threshold = threshold.max(1);
        LocalBuffer {
            buf: Vec::with_capacity(threshold),
            threshold,
        }
    }

    /// Entries staged locally (not yet published).
    #[inline]
    pub fn staged(&self) -> usize {
        self.buf.len()
    }

    /// Stage `value`, publishing to `target` if the threshold is reached.
    #[inline]
    pub fn push(&mut self, value: u64, target: &FrontierBuffer) {
        self.buf.push(value);
        if self.buf.len() >= self.threshold {
            self.flush(target);
        }
    }

    /// Publish everything staged to `target`.
    pub fn flush(&mut self, target: &FrontierBuffer) {
        if !self.buf.is_empty() {
            target.publish(&self.buf);
            self.buf.clear();
        }
    }
}

impl Default for LocalBuffer {
    fn default() -> LocalBuffer {
        LocalBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reserves_disjoint_regions() {
        let fb = FrontierBuffer::with_capacity(100);
        let a = fb.publish(&[1, 2, 3]);
        let b = fb.publish(&[4, 5]);
        assert_ne!(a, b);
        assert_eq!(fb.len(), 5);
        let mut all = fb.to_vec();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
        fb.clear();
        assert!(fb.is_empty());
    }

    #[test]
    fn concurrent_publication_loses_nothing() {
        let fb = FrontierBuffer::with_capacity(8 * 1000);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let fb = &fb;
                s.spawn(move || {
                    let mut local = LocalBuffer::with_threshold(13);
                    for i in 0..1000u64 {
                        local.push(t * 1000 + i, fb);
                    }
                    local.flush(fb);
                });
            }
        });
        let mut all = fb.to_vec();
        assert_eq!(all.len(), 8000);
        all.sort_unstable();
        for (i, &x) in all.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn empty_publish_is_a_noop() {
        let fb = FrontierBuffer::with_capacity(4);
        fb.publish(&[]);
        assert_eq!(fb.len(), 0);
    }

    #[test]
    #[should_panic(expected = "frontier overflow")]
    fn overflow_is_detected() {
        let fb = FrontierBuffer::with_capacity(2);
        fb.publish(&[1, 2, 3]);
    }

    #[test]
    fn local_buffer_flushes_at_threshold() {
        let fb = FrontierBuffer::with_capacity(10);
        let mut local = LocalBuffer::with_threshold(3);
        local.push(1, &fb);
        local.push(2, &fb);
        assert_eq!(fb.len(), 0);
        assert_eq!(local.staged(), 2);
        local.push(3, &fb); // hits threshold
        assert_eq!(fb.len(), 3);
        assert_eq!(local.staged(), 0);
    }
}
