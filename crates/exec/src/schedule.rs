//! Loop scheduling policies — the `schedule(...)` clause of OpenMP `for`.
//!
//! [`Schedule`] selects how [`crate::WorkerCtx::for_each`] partitions an
//! index space across the team:
//!
//! * **Static** — indices are partitioned up front, no shared state, no
//!   atomics. With no chunk size, each thread gets one contiguous block
//!   (OpenMP's default); with a chunk size, chunks are dealt round-robin.
//!   The paper's kernels all use OpenMP's default static schedule.
//! * **Dynamic** — threads repeatedly grab the next `chunk` indices from a
//!   shared cursor. Load-balances irregular iterations (e.g. BFS frontier
//!   expansion over skewed degree distributions) at the cost of one atomic
//!   RMW per chunk.
//! * **Guided** — like dynamic, but the grabbed chunk shrinks as the loop
//!   drains (`remaining / 2T`, floored at `min_chunk`), amortizing the
//!   atomic over big early chunks while keeping tail balance.
//!
//! The pure partitioning arithmetic lives here, separately testable; the
//! shared-cursor choreography lives in [`crate::pool`].

use std::ops::Range;

/// Loop scheduling policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Compile-time partitioning; `chunk: None` = one block per thread.
    Static {
        /// Round-robin chunk size, or `None` for blocked partitioning.
        chunk: Option<usize>,
    },
    /// Shared-cursor chunking with a fixed grab size.
    Dynamic {
        /// Indices grabbed per atomic operation (≥ 1).
        chunk: usize,
    },
    /// Shared-cursor chunking with geometrically shrinking grabs.
    Guided {
        /// Smallest grab size (≥ 1).
        min_chunk: usize,
    },
    /// Per-worker chunk deques with steal-half rebalancing
    /// ([`crate::StealQueues`]): each worker seeds its deque with its
    /// static block split into `chunk`-sized ranges, drains it in order
    /// (preserving the cache locality dynamic scheduling destroys), and
    /// only when its own deque is empty steals the back half of a
    /// victim's. Uncontended loops touch no shared state after seeding;
    /// skewed loops rebalance without funneling every grab through one
    /// shared cursor.
    Stealing {
        /// Indices per deque chunk (≥ 1).
        chunk: usize,
    },
}

impl Default for Schedule {
    /// OpenMP's default: blocked static.
    fn default() -> Schedule {
        Schedule::Static { chunk: None }
    }
}

impl Schedule {
    /// Dynamic with chunk 1 — the maximally balanced, maximally contended
    /// extreme; useful in tests.
    pub fn dynamic() -> Schedule {
        Schedule::Dynamic { chunk: 1 }
    }

    /// Guided with min chunk 1.
    pub fn guided() -> Schedule {
        Schedule::Guided { min_chunk: 1 }
    }

    /// Stealing with chunk 1 — maximal rebalancing granularity; useful in
    /// tests.
    pub fn stealing() -> Schedule {
        Schedule::Stealing { chunk: 1 }
    }
}

/// The *family* of schedule an irregular loop should use, with the chunk
/// size left to the call site (frontier loops compute a degree-weighted
/// chunk per round). [`crate::PoolConfig::irregular`] selects this
/// pool-wide; [`crate::WorkerCtx::irregular_schedule`] instantiates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleKind {
    /// One shared cursor, `fetch_add` per grab ([`Schedule::Dynamic`]).
    #[default]
    Dynamic,
    /// Per-worker deques with steal-half ([`Schedule::Stealing`]).
    Stealing,
}

impl ScheduleKind {
    /// The concrete [`Schedule`] for this kind at the given chunk size.
    pub fn with_chunk(self, chunk: usize) -> Schedule {
        match self {
            ScheduleKind::Dynamic => Schedule::Dynamic { chunk },
            ScheduleKind::Stealing => Schedule::Stealing { chunk },
        }
    }
}

/// The contiguous block thread `tid` of `threads` owns under blocked-static
/// scheduling of `len` indices: the first `len % threads` threads get one
/// extra index.
pub fn static_block(len: usize, threads: usize, tid: usize) -> Range<usize> {
    debug_assert!(tid < threads);
    let base = len / threads;
    let extra = len % threads;
    let start = tid * base + tid.min(extra);
    let size = base + usize::from(tid < extra);
    start..start + size
}

/// Iterator over the chunks thread `tid` owns under round-robin static
/// scheduling with the given chunk size.
pub fn static_chunks(
    len: usize,
    threads: usize,
    chunk: usize,
    tid: usize,
) -> impl Iterator<Item = Range<usize>> {
    debug_assert!(tid < threads);
    assert!(chunk >= 1, "static chunk size must be >= 1");
    let stride = chunk
        .checked_mul(threads)
        .expect("chunk * threads overflowed");
    (0..)
        .map(move |k| {
            let start = k * stride + tid * chunk;
            start..(start + chunk).min(len)
        })
        .take_while(move |r| r.start < len)
}

/// Next grab size for guided scheduling: `remaining / (2 * threads)`,
/// clamped to `[min_chunk, remaining]`.
pub fn guided_grab(remaining: usize, threads: usize, min_chunk: usize) -> usize {
    debug_assert!(remaining > 0);
    (remaining / (2 * threads.max(1)))
        .max(min_chunk.max(1))
        .min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(pieces: Vec<Range<usize>>, len: usize) {
        let mut seen = vec![false; len];
        for r in pieces {
            for i in r {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index unassigned");
    }

    #[test]
    fn static_block_is_a_partition() {
        for &(len, threads) in &[(0, 1), (1, 4), (10, 3), (100, 7), (5, 8), (64, 64)] {
            let pieces = (0..threads)
                .map(|t| static_block(len, threads, t))
                .collect();
            assert_partition(pieces, len);
        }
    }

    #[test]
    fn static_block_is_balanced() {
        let sizes: Vec<usize> = (0..7).map(|t| static_block(100, 7, t).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "imbalance: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn static_chunks_is_a_partition() {
        for &(len, threads, chunk) in &[(0, 2, 3), (10, 3, 2), (100, 4, 7), (9, 2, 100), (16, 4, 4)]
        {
            let pieces = (0..threads)
                .flat_map(|t| static_chunks(len, threads, chunk, t))
                .collect();
            assert_partition(pieces, len);
        }
    }

    #[test]
    fn static_chunks_round_robin_order() {
        // threads=2, chunk=2, len=10: thread 0 owns [0,2),[4,6),[8,10).
        let t0: Vec<_> = static_chunks(10, 2, 2, 0).collect();
        assert_eq!(t0, vec![0..2, 4..6, 8..10]);
        let t1: Vec<_> = static_chunks(10, 2, 2, 1).collect();
        assert_eq!(t1, vec![2..4, 6..8]);
    }

    #[test]
    fn guided_grab_shrinks_and_respects_bounds() {
        let mut remaining = 1000usize;
        let mut grabs = vec![];
        while remaining > 0 {
            let g = guided_grab(remaining, 4, 3);
            assert!(g >= 1 && g <= remaining);
            grabs.push(g);
            remaining -= g;
        }
        assert_eq!(grabs.iter().sum::<usize>(), 1000);
        // Monotone non-increasing until the min_chunk floor.
        for w in grabs.windows(2) {
            assert!(w[1] <= w[0].max(3));
        }
        assert_eq!(*grabs.last().unwrap(), grabs.last().copied().unwrap());
        assert!(grabs.last().copied().unwrap() <= 3);
    }

    #[test]
    fn guided_grab_edge_cases() {
        assert_eq!(guided_grab(1, 8, 1), 1);
        assert_eq!(guided_grab(5, 1, 10), 5); // min_chunk larger than rest
        assert_eq!(guided_grab(100, 0, 1), 50); // degenerate team treated as 1
    }

    #[test]
    fn default_is_blocked_static() {
        assert_eq!(Schedule::default(), Schedule::Static { chunk: None });
        assert_eq!(Schedule::dynamic(), Schedule::Dynamic { chunk: 1 });
        assert_eq!(Schedule::guided(), Schedule::Guided { min_chunk: 1 });
        assert_eq!(Schedule::stealing(), Schedule::Stealing { chunk: 1 });
    }

    #[test]
    fn schedule_kind_instantiates_with_chunk() {
        assert_eq!(ScheduleKind::default(), ScheduleKind::Dynamic);
        assert_eq!(
            ScheduleKind::Dynamic.with_chunk(7),
            Schedule::Dynamic { chunk: 7 }
        );
        assert_eq!(
            ScheduleKind::Stealing.with_chunk(3),
            Schedule::Stealing { chunk: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "chunk size must be")]
    fn zero_static_chunk_rejected() {
        let _ = static_chunks(10, 2, 0, 0).count();
    }
}
