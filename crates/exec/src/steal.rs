//! Per-worker chunk deques with steal-half rebalancing — the substrate
//! behind [`crate::Schedule::Stealing`].
//!
//! The shared-cursor dynamic schedule balances perfectly but funnels every
//! grab through one contended `fetch_add`, and hands out chunks in global
//! index order — a worker's consecutive chunks are usually far apart, so
//! the cache locality a static partition would have given is destroyed.
//! Work stealing keeps both properties at once: each worker seeds its own
//! deque with its *static block* of the index space split into
//! `chunk`-sized ranges, then drains it front-to-back (contiguous,
//! cache-friendly, touching only its own lock). Only when its deque runs
//! dry does it scan the other workers and steal the **back half** of the
//! first non-empty victim deque — back half because the victim pops from
//! the front, so the back is the work it would reach last (coldest in its
//! cache, warmest for rebalancing), and half because one steal then
//! amortizes over many subsequent local pops.
//!
//! The deques are plain locked `VecDeque`s behind the [`pram_core::sync`]
//! facade rather than lock-free Chase–Lev deques: the uncontended
//! `parking_lot` fast path is a single CAS (comparable to a Chase–Lev
//! bottom update), the ranges grabbed are coarse enough that queue
//! operations are off the critical path, and — decisively for this
//! workspace — the facade lets `pram-check` model-check the no-drop /
//! no-duplicate property under exhaustive interleaving exploration, which
//! a hand-rolled lock-free deque would make intractable to get right.
//!
//! ## Safety argument (no drop, no duplicate)
//!
//! Ranges only ever move deque → deque (a steal) or deque → execution (a
//! grab), always under a deque lock, and a grabbed range is always fully
//! executed by its grabber. During a steal the batch exists only in the
//! thief's stack frame between the two lock regions — a scanner that
//! observes "all deques empty" at that instant exits early, which loses
//! *balance* (the thief finishes the batch alone), never *indices*.
//! Reuse across loops is barrier-separated by the caller
//! ([`crate::WorkerCtx::for_each_nowait`]): no member repopulates until
//! every member has stopped scanning the previous loop's deques.

use std::collections::VecDeque;
use std::ops::Range;

use crossbeam_utils::CachePadded;
use pram_core::sync as psync;
use pram_core::ExecStats;

use crate::schedule::static_block;

/// One worker's deque, padded so neighbouring locks never share a line.
type Deque = CachePadded<psync::Mutex<VecDeque<Range<usize>>>>;

/// One locked chunk deque per worker (see module docs).
pub struct StealQueues {
    deques: Box<[Deque]>,
}

impl std::fmt::Debug for StealQueues {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealQueues")
            .field("workers", &self.deques.len())
            .finish_non_exhaustive()
    }
}

impl StealQueues {
    /// Empty deques for a team of `workers` (≥ 1).
    pub fn new(workers: usize) -> StealQueues {
        assert!(workers >= 1, "a steal pool needs at least one worker");
        let mut v = Vec::with_capacity(workers);
        v.resize_with(workers, || {
            CachePadded::new(psync::Mutex::new(VecDeque::new()))
        });
        StealQueues {
            deques: v.into_boxed_slice(),
        }
    }

    /// Number of per-worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Seed worker `tid`'s deque with its blocked-static share of
    /// `0..len`, split into ranges of at most `chunk` indices.
    ///
    /// Callers must separate `populate` from the previous loop's grabs
    /// with a full rendezvous (see the module safety argument); under that
    /// discipline the deque is always empty here.
    pub fn populate(&self, tid: usize, len: usize, chunk: usize) {
        let chunk = chunk.max(1);
        let block = static_block(len, self.deques.len(), tid);
        let mut dq = self.deques[tid].lock();
        debug_assert!(dq.is_empty(), "populate without barrier separation");
        let mut start = block.start;
        while start < block.end {
            let end = (start + chunk).min(block.end);
            dq.push_back(start..end);
            start = end;
        }
    }

    /// Pop the front range of `tid`'s own deque — its statically owned
    /// work, in ascending index order.
    pub fn pop_own(&self, tid: usize) -> Option<Range<usize>> {
        self.deques[tid].lock().pop_front()
    }

    /// Scan the other workers (round-robin from `tid + 1`) and steal the
    /// back half of the first non-empty deque: one range is returned for
    /// immediate execution, the rest are re-queued on `tid`'s own deque.
    ///
    /// Never holds two deque locks at once (victim is released before the
    /// thief's own deque is taken), so steals cannot deadlock against each
    /// other or against `populate`. Returns `None` only after a full scan
    /// observed every victim empty — at which point the loop is done or
    /// its tail is owned by members already executing it.
    pub fn steal(&self, tid: usize, stats: Option<&ExecStats>) -> Option<Range<usize>> {
        let n = self.deques.len();
        for k in 1..n {
            let victim = (tid + k) % n;
            let mut batch: VecDeque<Range<usize>> = {
                let mut dq = self.deques[victim].lock();
                let len = dq.len();
                if len == 0 {
                    continue;
                }
                dq.split_off(len - len.div_ceil(2))
            };
            let first = batch.pop_front();
            if !batch.is_empty() {
                self.deques[tid].lock().extend(batch);
            }
            if let Some(st) = stats {
                st.record_steal(tid, true);
            }
            return first;
        }
        if let Some(st) = stats {
            st.record_steal(tid, false);
        }
        None
    }

    /// Next range for `tid` to execute: own deque first, then stealing.
    #[inline]
    pub fn next(&self, tid: usize, stats: Option<&ExecStats>) -> Option<Range<usize>> {
        self.pop_own(tid).or_else(|| self.steal(tid, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &StealQueues, tid: usize) -> Vec<Range<usize>> {
        let mut out = vec![];
        while let Some(r) = q.next(tid, None) {
            out.push(r);
        }
        out
    }

    #[test]
    fn populate_splits_static_block_into_chunks() {
        let q = StealQueues::new(2);
        q.populate(0, 10, 2); // block 0..5 -> [0..2, 2..4, 4..5]
        q.populate(1, 10, 2); // block 5..10 -> [5..7, 7..9, 9..10]
                              // Own block first; then a steal of victim's back half [7..9, 9..10]
                              // (7..9 executed, 9..10 re-queued), then the victim's last range.
        assert_eq!(drain_all(&q, 0), vec![0..2, 2..4, 4..5, 7..9, 9..10, 5..7]);
    }

    #[test]
    fn own_pops_come_in_ascending_order() {
        let q = StealQueues::new(3);
        for t in 0..3 {
            q.populate(t, 30, 4);
        }
        let mut last = None;
        while let Some(r) = q.pop_own(1) {
            if let Some(prev) = last {
                assert!(r.start >= prev, "own order regressed");
            }
            last = Some(r.end);
        }
    }

    #[test]
    fn steal_takes_back_half_and_requeues_rest() {
        let q = StealQueues::new(2);
        q.populate(0, 8, 1); // worker 0 owns 0..4 as four unit ranges
                             // Worker 1 owns 4..8 but has drained; steal from 0.
        let got = q.steal(1, None).expect("victim non-empty");
        // Back half of [0..1,1..2,2..3,3..4] is [2..3,3..4]; first returned.
        assert_eq!(got, 2..3);
        assert_eq!(q.pop_own(1), Some(3..4)); // re-queued remainder
                                              // Victim keeps its front half.
        assert_eq!(drain_all(&q, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn every_index_grabbed_exactly_once_across_workers() {
        let q = StealQueues::new(4);
        let len = 103;
        for t in 0..4 {
            q.populate(t, len, 3);
        }
        let mut seen = vec![0u32; len];
        // Interleave grabs in an adversarial round-robin.
        let mut live = true;
        while live {
            live = false;
            for t in 0..4 {
                if let Some(r) = q.next(t, None) {
                    live = true;
                    for i in r {
                        seen[i] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }

    #[test]
    fn steal_records_hits_and_misses() {
        let q = StealQueues::new(2);
        let stats = ExecStats::new(2);
        q.populate(0, 4, 1);
        assert!(q.steal(1, Some(&stats)).is_some());
        while q.next(0, None).is_some() {}
        while q.next(1, None).is_some() {}
        assert!(q.steal(1, Some(&stats)).is_none());
        let s = stats.worker_snapshot(1);
        assert!(s.steal_attempts >= 2);
        assert_eq!(s.steals, 1);
    }

    #[test]
    fn single_worker_never_steals() {
        let q = StealQueues::new(1);
        q.populate(0, 5, 2);
        assert_eq!(drain_all(&q, 0), vec![0..2, 2..4, 4..5]);
        assert_eq!(q.steal(0, None), None);
    }

    #[test]
    fn empty_range_populates_nothing() {
        let q = StealQueues::new(2);
        q.populate(0, 0, 4);
        q.populate(1, 0, 4);
        assert_eq!(q.next(0, None), None);
        assert_eq!(q.next(1, None), None);
    }
}
