//! The persistent worker pool and the per-thread region context.
//!
//! [`ThreadPool::run`] is `#pragma omp parallel`: one closure, executed by
//! every thread of the team (SPMD). Inside, [`WorkerCtx`] provides the
//! worksharing and synchronization constructs the paper's kernels are built
//! from. The team is spawned once and reused across regions — region entry
//! costs one condvar broadcast, not `threads` thread spawns — because the
//! benchmarks enter a region per kernel invocation and any spawn cost would
//! pollute the concurrent-write comparison.
//!
//! ## Panic handling
//!
//! A panic inside a region would classically deadlock the team at the next
//! barrier (the panicking thread never arrives). The pool instead poisons
//! the barrier: sibling threads blocked at (or arriving at) a barrier panic
//! too, the region drains, and [`ThreadPool::run`] resumes the original
//! panic payload on the caller. The pool itself stays poisoned — subsequent
//! `run` calls panic immediately — because team state (barrier phase,
//! cursors) is unrecoverable mid-protocol.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_utils::CachePadded;
use parking_lot::{Condvar, Mutex};
use pram_core::{
    CwCounters, CwTelemetry, ExecCounters, ExecStats, Round, RoundReport, RoundSnapshot,
    ShardGuard, SliceArbiter,
};

use crate::barrier::TeamBarrier;
use crate::config::{MethodKind, PoolConfig};
use crate::frontier::FrontierBuffer;
use crate::schedule::{guided_grab, static_block, static_chunks, Schedule, ScheduleKind};
use crate::steal::StealQueues;

/// Default per-grab edge budget for [`WorkerCtx::for_each_frontier`]:
/// enough edge work to amortize one shared-cursor `fetch_add`, small
/// enough to rebalance skewed frontiers.
pub const FRONTIER_GRAIN_EDGES: usize = 4096;

/// The closure type executed by every team member during a region.
type JobFn<'a> = dyn Fn(&WorkerCtx<'_>) + Sync + 'a;

/// Lifetime-erased pointer to the current region's closure.
///
/// Sound because [`ThreadPool::run`] does not return until every worker has
/// finished executing through the pointer, so the pointee (a local in the
/// caller's frame) outlives all uses.
struct RawJob(*const JobFn<'static>);
// SAFETY: the pointer crosses threads only between `run`'s publication and
// its completion wait, during which the pointee is alive and the closure is
// `Sync`.
unsafe impl Send for RawJob {}

impl Clone for RawJob {
    fn clone(&self) -> Self {
        RawJob(self.0)
    }
}

struct DispatchState {
    /// Region sequence number; workers run one region per increment.
    seq: u64,
    job: Option<RawJob>,
    shutdown: bool,
}

struct PoolShared {
    threads: usize,
    barrier: TeamBarrier,
    /// Shared loop cursor for dynamic/guided scheduling. Reset by the
    /// barrier releaser at loop entry, so no reset/grab race exists.
    cursor: CachePadded<AtomicUsize>,
    /// Per-worker chunk deques for `Schedule::Stealing`. Reuse across
    /// loops is barrier-separated (see the stealing arm of
    /// `for_each_nowait`), so one set serves every loop.
    steal: StealQueues,
    /// Pool-wide preference for irregular loops
    /// (`WorkerCtx::irregular_schedule`).
    irregular: ScheduleKind,
    /// Per-worker execution counters, when `PoolConfig::collect_stats`
    /// (or `PoolConfig::telemetry`, which folds them into round reports).
    stats: Option<ExecStats>,
    /// Sharded concurrent-write counters, when `PoolConfig::telemetry`.
    /// Each team member routes its claim telemetry into shard
    /// `thread_id` via a thread-local [`ShardGuard`] installed for the
    /// duration of region execution.
    telem: Option<CwTelemetry>,
    /// Per-round snapshots accumulated by `converge_rounds`; drained by
    /// [`ThreadPool::take_round_report`].
    round_log: Mutex<Vec<RoundSnapshot>>,
    /// Kernel-supplied label for the round in flight
    /// ([`WorkerCtx::annotate_round`]); taken by the member-0 snapshot at
    /// the round's closing barrier.
    round_label: Mutex<Option<&'static str>>,
    /// Adaptive-arbitration switch decisions made during the round in
    /// flight ([`WorkerCtx::tune`]); appended to the round's label at the
    /// member-0 snapshot, exposing the decision trace through
    /// [`RoundReport`] with no schema change.
    switch_note: Mutex<Option<String>>,
    /// The pool's preferred concurrent-write method
    /// ([`PoolConfig::method`]), advisory metadata for kernels.
    method: MethodKind,
    /// Monotone id handed to each `converge_rounds` invocation, grouping
    /// its rounds in the report ("epoch" = one kernel run).
    epoch: AtomicU32,
    /// Counter baseline captured at each round's opening rendezvous (all
    /// members quiescent), subtracted at the closing barrier to form the
    /// round's deltas.
    round_base: Mutex<(CwCounters, ExecCounters)>,
    /// Pool creation time: the origin for all round timestamps, so spans
    /// from different epochs share one monotone clock.
    t0: std::time::Instant,
    /// Double-buffered convergence flags for `converge_rounds`; round `i`
    /// uses slot `i % 2`, and barrier spacing guarantees slot reuse is
    /// race-free (see `converge_rounds`).
    changed: [CachePadded<AtomicBool>; 2],
    dispatch: Mutex<DispatchState>,
    dispatch_cv: Condvar,
    /// Workers still executing the current region.
    remaining: Mutex<usize>,
    remaining_cv: Condvar,
    /// First panic payload from any team member.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// `#pragma omp critical` support.
    critical: Mutex<()>,
    /// Type-erased accumulator for `WorkerCtx::reduce`.
    reduce_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A persistent team of threads executing SPMD regions.
///
/// The calling thread participates as team member 0, so `ThreadPool::new(n)`
/// spawns `n - 1` workers. Dropping the pool shuts the workers down.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes `run` calls: the team protocol supports one region at a
    /// time.
    region_guard: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// A team of `threads` (≥ 1) with default configuration.
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool::with_config(PoolConfig::new(threads))
    }

    /// A team configured by `config`.
    pub fn with_config(config: PoolConfig) -> ThreadPool {
        assert!(config.threads >= 1, "a team needs at least one thread");
        let shared = Arc::new(PoolShared {
            threads: config.threads,
            barrier: TeamBarrier::new(
                config.barrier,
                config.threads,
                config.wait_policy,
                config.spin_before_yield,
            ),
            cursor: CachePadded::new(AtomicUsize::new(0)),
            steal: StealQueues::new(config.threads),
            irregular: config.irregular,
            stats: (config.collect_stats || config.telemetry)
                .then(|| ExecStats::new(config.threads)),
            telem: config.telemetry.then(|| CwTelemetry::new(config.threads)),
            round_log: Mutex::new(Vec::new()),
            round_label: Mutex::new(None),
            switch_note: Mutex::new(None),
            method: config.method,
            epoch: AtomicU32::new(0),
            round_base: Mutex::new((CwCounters::default(), ExecCounters::default())),
            t0: std::time::Instant::now(),
            changed: [
                CachePadded::new(AtomicBool::new(false)),
                CachePadded::new(AtomicBool::new(false)),
            ],
            dispatch: Mutex::new(DispatchState {
                seq: 0,
                job: None,
                shutdown: false,
            }),
            dispatch_cv: Condvar::new(),
            remaining: Mutex::new(0),
            remaining_cv: Condvar::new(),
            panic_payload: Mutex::new(None),
            critical: Mutex::new(()),
            reduce_slot: Mutex::new(None),
        });
        let handles = (1..config.threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pram-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            region_guard: Mutex::new(()),
        }
    }

    /// Team size (including the caller's thread).
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Per-worker execution statistics (barrier waits, grab/steal counts),
    /// if enabled via [`PoolConfig::collect_stats`]. Counters accumulate
    /// across regions; call [`ExecStats::reset`] between measurements.
    pub fn stats(&self) -> Option<&ExecStats> {
        self.shared.stats.as_ref()
    }

    /// Sharded concurrent-write telemetry, if enabled via
    /// [`PoolConfig::telemetry`]. Counters accumulate across regions.
    pub fn telemetry(&self) -> Option<&CwTelemetry> {
        self.shared.telem.as_ref()
    }

    /// The pool's preferred concurrent-write method
    /// ([`PoolConfig::method`]). Kernels typically read this through
    /// `pram_algos::CwMethod::for_pool`.
    pub fn method_kind(&self) -> MethodKind {
        self.shared.method
    }

    /// Drain the per-round snapshots recorded by
    /// [`WorkerCtx::converge_rounds`] since the last call, merged with the
    /// pool-lifetime counter totals into a [`RoundReport`].
    ///
    /// Totals cover every claim routed through this pool's shards and
    /// every recorded barrier wait / grab / steal — including work outside
    /// `converge_rounds` — so they can exceed the per-round sums.
    /// Returns an empty report when telemetry is disabled.
    pub fn take_round_report(&self) -> RoundReport {
        let rounds = std::mem::take(&mut *self.shared.round_log.lock());
        RoundReport {
            threads: self.shared.threads,
            rounds,
            totals_cw: self
                .shared
                .telem
                .as_ref()
                .map(CwTelemetry::totals)
                .unwrap_or_default(),
            totals_exec: self
                .shared
                .stats
                .as_ref()
                .map(|st| ExecCounters::from(st.total_snapshot()))
                .unwrap_or_default(),
        }
    }

    /// Execute `f` on every team member — enter a parallel region.
    ///
    /// Blocks until all members have returned from `f`. `f` runs with
    /// `thread_id() == 0` on the calling thread itself. Regions do not
    /// nest: calling `run` from inside a region deadlocks (the region guard
    /// is held), exactly like re-entering a non-nested OpenMP runtime.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&WorkerCtx<'_>) + Sync,
    {
        let _region = self.region_guard.lock();
        assert!(
            !self.shared.barrier.is_poisoned(),
            "thread pool poisoned by an earlier panic; create a fresh pool"
        );

        // Publish the job. The pointee `f` lives until the completion wait
        // below returns, upholding RawJob's safety contract.
        let job: &JobFn<'_> = &f;
        // SAFETY: lifetime erasure only; see RawJob.
        let raw = RawJob(unsafe {
            std::mem::transmute::<*const JobFn<'_>, *const JobFn<'static>>(job as *const _)
        });
        *self.shared.remaining.lock() = self.shared.threads - 1;
        {
            let mut st = self.shared.dispatch.lock();
            st.seq += 1;
            st.job = Some(raw);
            self.shared.dispatch_cv.notify_all();
        }

        // Participate as member 0, routing claim telemetry to shard 0.
        let _telem_guard = self
            .shared
            .telem
            .as_ref()
            .map(|t| ShardGuard::install(t.shard(0)));
        let ctx = WorkerCtx {
            shared: &self.shared,
            id: 0,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
            self.shared.barrier.poison();
            self.shared.panic_payload.lock().get_or_insert(payload);
        }

        // Wait for the rest of the team.
        {
            let mut rem = self.shared.remaining.lock();
            while *rem > 0 {
                self.shared.remaining_cv.wait(&mut rem);
            }
        }

        if let Some(payload) = self.shared.panic_payload.lock().take() {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.dispatch.lock();
            st.shutdown = true;
            self.shared.dispatch_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked already delivered its payload via
            // `run`; ignore the join error to keep drop non-panicking.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    // Route this worker's claim telemetry to its own shard for the
    // thread's whole lifetime (the guard is a thread-local registration).
    let _telem_guard = shared
        .telem
        .as_ref()
        .map(|t| ShardGuard::install(t.shard(id)));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.dispatch.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq > seen {
                    seen = st.seq;
                    break st.job.as_ref().expect("job published with seq").clone();
                }
                shared.dispatch_cv.wait(&mut st);
            }
        };
        let ctx = WorkerCtx { shared, id };
        // SAFETY: `run` keeps the pointee alive until all workers complete.
        let res = catch_unwind(AssertUnwindSafe(|| unsafe { (&*job.0)(&ctx) }));
        if let Err(payload) = res {
            shared.barrier.poison();
            shared.panic_payload.lock().get_or_insert(payload);
        }
        let mut rem = shared.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            shared.remaining_cv.notify_all();
        }
    }
}

/// Result of [`WorkerCtx::converge_rounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Rounds executed (≥ 1 unless `max_rounds == 0`).
    pub rounds: u32,
    /// `true` if the last executed round reported no change.
    pub converged: bool,
}

/// Vote handle threads use inside [`WorkerCtx::converge_rounds`] to report
/// that the current round made progress (the paper's `done = false`).
#[derive(Debug)]
pub struct ChangedFlag<'a> {
    flag: &'a AtomicBool,
}

impl ChangedFlag<'_> {
    /// Record that this round changed something (idempotent; `Relaxed` —
    /// the closing barrier publishes it).
    #[inline]
    pub fn set(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Current (racy, advisory) view of the flag; authoritative only after
    /// the round's closing barrier.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A team member's view of the current parallel region.
pub struct WorkerCtx<'p> {
    shared: &'p PoolShared,
    id: usize,
}

impl WorkerCtx<'_> {
    /// This member's id in `0..num_threads()` (caller thread = 0).
    #[inline]
    pub fn thread_id(&self) -> usize {
        self.id
    }

    /// Team size.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Per-worker execution statistics, if enabled via
    /// [`PoolConfig::collect_stats`].
    #[inline]
    pub fn stats(&self) -> Option<&ExecStats> {
        self.shared.stats.as_ref()
    }

    /// The pool's irregular-loop schedule ([`PoolConfig::irregular`])
    /// instantiated at `chunk` — what [`WorkerCtx::for_each_frontier`]
    /// passes to [`WorkerCtx::for_each`].
    #[inline]
    pub fn irregular_schedule(&self, chunk: usize) -> Schedule {
        self.shared.irregular.with_chunk(chunk)
    }

    /// Team-wide barrier. Returns `true` on the electing member (the
    /// releaser for the central topology, member 0 for dissemination —
    /// either way, exactly one member, and only after all have arrived).
    ///
    /// This is the "synchronization point" the paper requires between a
    /// concurrent-write round and dependent reads.
    #[inline]
    pub fn barrier(&self) -> bool {
        match &self.shared.stats {
            None => self.shared.barrier.wait(self.id),
            Some(st) => {
                let t0 = std::time::Instant::now();
                let r = self.shared.barrier.wait(self.id);
                st.record_barrier_wait(self.id, t0.elapsed().as_nanos() as u64);
                r
            }
        }
    }

    /// Barrier whose elected member runs `f` after all members arrive and
    /// before any member proceeds — the race-free slot for re-arming
    /// shared per-round state (e.g. a gatekeeper array's reset pass, when
    /// done serially).
    #[inline]
    pub fn barrier_with(&self, f: impl FnOnce()) -> bool {
        match &self.shared.stats {
            None => self.shared.barrier.wait_with(self.id, f),
            Some(st) => {
                let t0 = std::time::Instant::now();
                let r = self.shared.barrier.wait_with(self.id, f);
                st.record_barrier_wait(self.id, t0.elapsed().as_nanos() as u64);
                r
            }
        }
    }

    /// Worksharing loop over `range` with the implicit ending barrier
    /// (OpenMP `#pragma omp for`). Every team member must call this with
    /// the same range and schedule; each index is executed exactly once by
    /// exactly one member.
    ///
    /// The closure is `FnMut`: each member constructs and runs its own
    /// instance, so worker-local accumulators (e.g. a
    /// [`crate::LocalBuffer`]) can be captured mutably.
    pub fn for_each(&self, range: Range<usize>, schedule: Schedule, f: impl FnMut(usize)) {
        self.for_each_nowait(range, schedule, f);
        self.barrier();
    }

    /// [`WorkerCtx::for_each`] without the ending barrier (`nowait`).
    ///
    /// Dynamic and guided schedules still synchronize once at loop *entry*
    /// (the shared cursor must be reset by a full rendezvous), and the
    /// stealing schedule twice (quiesce the previous loop's deque users,
    /// then publish the seeded deques); static schedules are entirely
    /// synchronization-free.
    pub fn for_each_nowait(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        mut f: impl FnMut(usize),
    ) {
        let base = range.start;
        let len = range.end.saturating_sub(range.start);
        match schedule {
            Schedule::Static { chunk: None } => {
                for i in static_block(len, self.shared.threads, self.id) {
                    f(base + i);
                }
            }
            Schedule::Static { chunk: Some(c) } => {
                for r in static_chunks(len, self.shared.threads, c, self.id) {
                    for i in r {
                        f(base + i);
                    }
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let cursor = &self.shared.cursor;
                self.barrier_with(|| cursor.store(0, Ordering::Relaxed));
                let stats = self.shared.stats.as_ref();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    if let Some(st) = stats {
                        st.record_grab(self.id);
                    }
                    for i in start..(start + chunk).min(len) {
                        f(base + i);
                    }
                }
            }
            Schedule::Stealing { chunk } => {
                let chunk = chunk.max(1);
                let queues = &self.shared.steal;
                // Quiesce: a member of a *previous* stealing loop may still
                // be scanning these deques (it exits its grab loop only
                // after observing every deque empty); nobody repopulates
                // until every member has reached this rendezvous.
                self.barrier();
                queues.populate(self.id, len, chunk);
                // Publish: every deque is seeded before anyone grabs, so a
                // thief cannot observe a not-yet-populated deque as "done".
                self.barrier();
                let stats = self.shared.stats.as_ref();
                while let Some(r) = queues.next(self.id, stats) {
                    if let Some(st) = stats {
                        st.record_grab(self.id);
                    }
                    for i in r {
                        f(base + i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let cursor = &self.shared.cursor;
                self.barrier_with(|| cursor.store(0, Ordering::Relaxed));
                loop {
                    let cur = cursor.load(Ordering::Relaxed);
                    if cur >= len {
                        break;
                    }
                    let take = guided_grab(len - cur, self.shared.threads, min_chunk);
                    if cursor
                        .compare_exchange_weak(
                            cur,
                            cur + take,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        for i in cur..cur + take {
                            f(base + i);
                        }
                    }
                }
            }
        }
    }

    /// Worksharing over a rectangular 2-D index space (OpenMP
    /// `collapse(2)`, as the paper's Figure 4 pair loop uses): iterates
    /// `f(i, j)` for all `i < rows`, `j < cols`, partitioned by `schedule`
    /// over the flattened space, with the implicit ending barrier.
    pub fn for_each_2d(
        &self,
        rows: usize,
        cols: usize,
        schedule: Schedule,
        mut f: impl FnMut(usize, usize),
    ) {
        let total = rows.checked_mul(cols).expect("2-D index space overflows");
        self.for_each(0..total, schedule, |flat| f(flat / cols, flat % cols));
    }

    /// Run `f` on member 0 only (OpenMP `master`); no synchronization.
    pub fn master(&self, f: impl FnOnce()) {
        if self.id == 0 {
            f();
        }
    }

    /// Run `f` under the team-wide critical-section lock
    /// (`#pragma omp critical`).
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.shared.critical.lock();
        f()
    }

    /// Team-wide reduction (`#pragma omp ... reduction(op: var)`): every
    /// member contributes `value`; all members receive the combined result.
    ///
    /// `combine` must be associative and commutative (contribution order is
    /// scheduling-dependent). Every member must call this at the same
    /// point. Cost: three barriers plus one short critical section per
    /// member — intended for per-phase results (a max, a count), not inner
    /// loops.
    pub fn reduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Send + Clone + 'static,
        F: Fn(T, T) -> T,
    {
        let slot = &self.shared.reduce_slot;
        self.barrier_with(|| *slot.lock() = None);
        {
            let mut acc = slot.lock();
            *acc = Some(match acc.take() {
                None => Box::new(value),
                Some(prev) => {
                    let prev = *prev
                        .downcast::<T>()
                        .expect("mixed reduce types in one call");
                    Box::new(combine(prev, value))
                }
            });
        }
        self.barrier();
        let result = slot
            .lock()
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .expect("reduction accumulator populated by all members")
            .clone();
        // Third barrier: nobody may reset the slot (e.g. by entering the
        // next reduce) until every member has cloned the result.
        self.barrier();
        result
    }

    /// Sum `weight` over the published entries of `frontier` — the
    /// frontier's edge count, which drives both the chunking of
    /// [`WorkerCtx::for_each_frontier`] and a direction-optimizing
    /// push/pull heuristic.
    ///
    /// Every team member must call this at the same point (it reduces).
    /// The scan partitions statically, so the cost is
    /// `O(frontier.len() / threads)` plus one [`WorkerCtx::reduce`].
    pub fn frontier_edge_count(
        &self,
        frontier: &FrontierBuffer,
        mut weight: impl FnMut(u64) -> usize,
    ) -> usize {
        let len = frontier.len();
        let mut local = 0usize;
        for i in static_block(len, self.shared.threads, self.id) {
            local += weight(frontier.get(i));
        }
        self.reduce(local, |a, b| a + b)
    }

    /// Worksharing loop over the published entries of `frontier` with
    /// degree-weighted chunking and the implicit ending barrier.
    ///
    /// Chunks are sized so each shared-cursor grab covers roughly
    /// `grain_edges` edges, given the frontier's total edge weight
    /// `frontier_edges` (from [`WorkerCtx::frontier_edge_count`]): a
    /// frontier of few heavy vertices is handed out nearly one vertex at a
    /// time, a frontier of many light vertices in large blocks. Dynamic
    /// assignment then rebalances whatever the average-degree estimate
    /// gets wrong. Every team member must call this at the same point with
    /// the same arguments.
    pub fn for_each_frontier(
        &self,
        frontier: &FrontierBuffer,
        frontier_edges: usize,
        grain_edges: usize,
        mut f: impl FnMut(u64),
    ) {
        let len = frontier.len();
        let mean_degree = frontier_edges / len.max(1);
        let chunk = (grain_edges.max(1) / mean_degree.max(1)).clamp(1, 2048);
        // Keep at least a few grabs per member so dynamic assignment can
        // actually balance.
        let chunk = chunk.min(len / (4 * self.shared.threads) + 1);
        self.for_each(0..len, self.irregular_schedule(chunk), |i| {
            f(frontier.get(i))
        });
    }

    /// The lock-step convergence loop of the paper's BFS and CC kernels
    /// (`while (!done) { done = true; … parallel writes may clear done …
    /// barrier }`), with rounds supplied automatically.
    ///
    /// Every team member must call this at the same point with the same
    /// `max_rounds`. Per round `i`, the body runs with
    /// `Round::from_iteration(i)` — fresh per round, satisfying CAS-LT's
    /// round discipline — and a [`ChangedFlag`]; barriers bound the round
    /// on both sides, providing the synchronization point before dependent
    /// reads *and* the happens-before edge that makes
    /// [`pram_core::ConVec::write_with`]'s contract hold. The loop exits
    /// after the first round in which no member set the flag, or after
    /// `max_rounds`.
    ///
    /// Not nestable (it owns the pool's convergence flags).
    pub fn converge_rounds(
        &self,
        max_rounds: u32,
        mut body: impl FnMut(Round, &ChangedFlag<'_>),
    ) -> Convergence {
        let telem = self.shared.telem.as_ref();
        // One epoch id per converge_rounds invocation; member 0 owns the
        // snapshot bookkeeping.
        let epoch = match telem {
            Some(_) if self.id == 0 => self.shared.epoch.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        let mut executed = 0;
        let mut converged = false;
        for i in 0..max_rounds {
            let slot = &*self.shared.changed[(i % 2) as usize];
            // Slot reuse is race-free: round i's reset happens at a barrier
            // every member reaches only after reading slot (i-2)%2 == i%2
            // at the end of round i-2, two barriers ago.
            self.barrier_with(|| {
                slot.store(false, Ordering::Relaxed);
                if let Some(t) = telem {
                    // Every member is at the rendezvous: no claim is in
                    // flight, so this baseline is exact for the round.
                    *self.shared.round_base.lock() = (t.totals(), self.exec_totals());
                }
            });
            let start_ns = match telem {
                Some(_) if self.id == 0 => self.shared.t0.elapsed().as_nanos() as u64,
                _ => 0,
            };
            let flag = ChangedFlag { flag: slot };
            body(Round::from_iteration(i), &flag);
            self.barrier();
            if let Some(t) = telem {
                if self.id == 0 {
                    // Quiescent window: sibling members issue no claims
                    // between the closing barrier above and the next
                    // rendezvous, so the deltas below are exact.
                    let (base_cw, base_exec) = *self.shared.round_base.lock();
                    let label = self.shared.round_label.lock().take().unwrap_or("");
                    // Fold any adaptive switch decision into the label so
                    // the decision trace rides the existing report schema.
                    let label = match self.shared.switch_note.lock().take() {
                        Some(note) if label.is_empty() => note,
                        Some(note) => format!("{label} | {note}"),
                        None => label.to_string(),
                    };
                    self.shared.round_log.lock().push(RoundSnapshot {
                        epoch,
                        round: i,
                        label,
                        start_ns,
                        wall_ns: (self.shared.t0.elapsed().as_nanos() as u64)
                            .saturating_sub(start_ns),
                        cw: t.totals().delta_since(&base_cw),
                        exec: self.exec_totals().delta_since(&base_exec),
                    });
                }
            }
            executed = i + 1;
            if !slot.load(Ordering::Relaxed) {
                converged = true;
                break;
            }
        }
        Convergence {
            rounds: executed,
            converged,
        }
    }

    /// Kernel-side round annotation for telemetry: label the round in
    /// flight (e.g. `"push"` / `"pull"` for a direction-optimizing BFS).
    /// The label is attached to the round's [`RoundSnapshot`] at its
    /// closing barrier. No-op unless [`PoolConfig::telemetry`] is set;
    /// members of a team may call it redundantly (last write wins, and
    /// kernels pass the same label from every member).
    #[inline]
    pub fn annotate_round(&self, label: &'static str) {
        if self.shared.telem.is_some() {
            *self.shared.round_label.lock() = Some(label);
        }
    }

    /// Round-barrier tuning rendezvous for contention-adaptive arbiters:
    /// the elected member feeds the pool's cumulative claim counters to
    /// [`SliceArbiter::epoch_boundary`] while the whole team is parked at
    /// the barrier, so a delegate switch is observed by every member
    /// before any further claim — the race-free switch point
    /// `pram_core::adaptive` requires.
    ///
    /// A no-op (no barrier, no atomics) unless the arbiter adapts
    /// ([`SliceArbiter::adapts`]) **and** the pool collects telemetry
    /// ([`PoolConfig::telemetry`] — without counters the policy would
    /// have no evidence), so static arbiters and plain pools pay nothing.
    /// Every team member must call it at the same point, like
    /// [`WorkerCtx::barrier`]. Committed switches are appended to the
    /// round's [`RoundSnapshot`] label (see
    /// [`ThreadPool::take_round_report`]).
    pub fn tune<A: SliceArbiter + ?Sized>(&self, arb: &A) {
        let Some(telem) = self.shared.telem.as_ref() else {
            return;
        };
        if !arb.adapts() {
            return;
        }
        self.barrier_with(|| {
            if let Some(decision) = arb.epoch_boundary(&telem.totals()) {
                let mut note = self.shared.switch_note.lock();
                *note = Some(match note.take() {
                    Some(prev) => format!("{prev}; {decision}"),
                    None => decision.to_string(),
                });
            }
        });
    }

    /// Team-wide exec counter totals (zero when stats are disabled).
    fn exec_totals(&self) -> ExecCounters {
        self.shared
            .stats
            .as_ref()
            .map(|st| ExecCounters::from(st.total_snapshot()))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicU64::new(0);
        pool.run(|ctx| {
            assert_eq!(ctx.thread_id(), 0);
            assert_eq!(ctx.num_threads(), 1);
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_members_execute_the_region() {
        let pool = ThreadPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(|ctx| {
            mask.fetch_or(1 << ctx.thread_id(), Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn regions_are_reusable() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..20 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 60);
    }

    fn check_for_each(threads: usize, len: usize, schedule: Schedule) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..len, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} under {schedule:?}");
        }
    }

    #[test]
    fn for_each_static_blocked_covers_exactly_once() {
        check_for_each(4, 103, Schedule::Static { chunk: None });
    }

    #[test]
    fn for_each_static_chunked_covers_exactly_once() {
        check_for_each(3, 100, Schedule::Static { chunk: Some(7) });
    }

    #[test]
    fn for_each_dynamic_covers_exactly_once() {
        check_for_each(4, 101, Schedule::Dynamic { chunk: 3 });
    }

    #[test]
    fn for_each_guided_covers_exactly_once() {
        check_for_each(4, 257, Schedule::Guided { min_chunk: 2 });
    }

    #[test]
    fn for_each_stealing_covers_exactly_once() {
        check_for_each(4, 101, Schedule::Stealing { chunk: 3 });
        check_for_each(3, 7, Schedule::Stealing { chunk: 100 });
        check_for_each(1, 50, Schedule::Stealing { chunk: 4 });
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // One worker's static block carries almost all the work; with
        // stealing the loop still covers everything exactly once, and the
        // heavy block's chunks end up spread across the team.
        let pool = ThreadPool::with_config(
            PoolConfig::new(4)
                .irregular(ScheduleKind::Stealing)
                .collect_stats(true),
        );
        let len = 4096;
        let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..len, ctx.irregular_schedule(8), |i| {
                // Worker 0's static block (first quarter) is 100x heavier.
                if i < len / 4 {
                    std::hint::black_box((0..100).sum::<u64>());
                }
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
        // Every chunk grabbed exactly once team-wide.
        let total = pool.stats().unwrap().total_snapshot();
        assert_eq!(total.grabs, (len / 8) as u64);
    }

    #[test]
    fn repeated_stealing_loops_are_isolated() {
        // Back-to-back stealing loops over different ranges: the entry
        // barriers must keep one loop's deques from bleeding into the next.
        let pool = ThreadPool::new(4);
        let a: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            for round in 0..20u64 {
                ctx.for_each(0..a.len(), Schedule::Stealing { chunk: 2 }, |i| {
                    a[i].fetch_add(round + 1, Ordering::Relaxed);
                });
            }
        });
        let expect: u64 = (1..=20).sum();
        for (i, slot) in a.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), expect, "index {i}");
        }
    }

    #[test]
    fn dissemination_pool_runs_all_constructs() {
        use crate::config::BarrierKind;
        let pool = ThreadPool::with_config(
            PoolConfig::new(4)
                .barrier(BarrierKind::Dissemination)
                .collect_stats(true),
        );
        let sum = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.for_each(0..1000, Schedule::Dynamic { chunk: 7 }, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            let c = ctx.converge_rounds(10, |round, flag| {
                if round.get() < 3 {
                    flag.set();
                }
                ctx.barrier();
            });
            assert_eq!(c.rounds, 3);
            let r = ctx.reduce(1u64, |x, y| x + y);
            assert_eq!(r, 4);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
        // Stats recorded barrier waits for every member.
        let st = pool.stats().unwrap();
        for tid in 0..4 {
            assert!(st.worker_snapshot(tid).barrier_waits > 0, "tid {tid}");
        }
    }

    #[test]
    fn dissemination_pool_panic_propagates_and_poisons() {
        use crate::config::BarrierKind;
        let pool = ThreadPool::with_config(PoolConfig::new(4).barrier(BarrierKind::Dissemination));
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id() == 2 {
                    panic!("boom in worker");
                }
                ctx.barrier();
            });
        }));
        assert!(r.is_err());
        let r2 = catch_unwind(AssertUnwindSafe(|| pool.run(|_| {})));
        assert!(r2.is_err());
    }

    #[test]
    fn stats_disabled_by_default() {
        let pool = ThreadPool::new(2);
        pool.run(|ctx| {
            assert!(ctx.stats().is_none());
            ctx.barrier();
        });
        assert!(pool.stats().is_none());
    }

    #[test]
    fn for_each_empty_and_offset_ranges() {
        let pool = ThreadPool::new(2);
        let sum = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.for_each(10..10, Schedule::default(), |_| unreachable!());
            ctx.for_each(5..10, Schedule::dynamic(), |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5 + 6 + 7 + 8 + 9);
    }

    #[test]
    fn sequential_loops_see_previous_results() {
        // The implicit barrier makes loop 2 observe all of loop 1.
        let pool = ThreadPool::new(4);
        let a: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let b: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each(0..64, Schedule::default(), |i| {
                a[i].store(i as u64 + 1, Ordering::Relaxed);
            });
            ctx.for_each(0..64, Schedule::default(), |i| {
                // Read a[63-i], written (possibly) by another member.
                b[i].store(a[63 - i].load(Ordering::Relaxed), Ordering::Relaxed);
            });
        });
        for (i, slot) in b.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), (63 - i) as u64 + 1);
        }
    }

    #[test]
    fn telemetry_round_report_records_rounds() {
        use pram_core::CasLtArray;
        let pool = ThreadPool::with_config(PoolConfig::new(3).telemetry(true));
        assert!(pool.stats().is_some(), "telemetry implies exec stats");
        let cells = CasLtArray::new(4);
        pool.run(|ctx| {
            let c = ctx.converge_rounds(10, |round, flag| {
                ctx.annotate_round("claim");
                for i in 0..4 {
                    cells.try_claim(i, round);
                }
                if round.get() < 3 {
                    flag.set();
                }
                ctx.barrier();
            });
            assert_eq!(c.rounds, 3);
        });
        let report = pool.take_round_report();
        assert_eq!(report.threads, 3);
        assert_eq!(report.rounds.len(), 3);
        let mut last_start = 0;
        for (i, r) in report.rounds.iter().enumerate() {
            assert_eq!(r.epoch, 0);
            assert_eq!(r.round as usize, i);
            assert_eq!(r.label, "claim");
            assert!(r.start_ns >= last_start, "round starts are monotone");
            last_start = r.start_ns;
            #[cfg(feature = "telemetry")]
            {
                // Fully contended CAS-LT round: 3 threads × 4 cells,
                // every claim resolves, exactly one win per cell.
                assert_eq!(r.cw.wins, 4, "round {i}");
                assert_eq!(r.cw.resolutions(), 3 * 4, "round {i}");
                assert_eq!(r.cw.fast_path_skips + r.cw.cas_attempts, 3 * 4, "round {i}");
            }
        }
        #[cfg(feature = "telemetry")]
        assert_eq!(report.totals_cw.wins, 3 * 4);
        // A second epoch, drained separately.
        pool.run(|ctx| {
            ctx.converge_rounds(1, |round, _| {
                cells.try_claim(0, round);
                ctx.barrier();
            });
        });
        let report2 = pool.take_round_report();
        assert_eq!(report2.rounds.len(), 1);
        assert_eq!(report2.rounds[0].epoch, 1);
        assert!(pool.take_round_report().rounds.is_empty(), "log drains");
    }

    #[test]
    fn telemetry_disabled_pool_records_nothing() {
        let pool = ThreadPool::new(2);
        pool.run(|ctx| {
            ctx.annotate_round("ignored");
            ctx.converge_rounds(2, |_, _| {
                ctx.barrier();
            });
        });
        let report = pool.take_round_report();
        assert!(report.rounds.is_empty());
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn converge_rounds_runs_expected_rounds() {
        let pool = ThreadPool::new(4);
        let work = AtomicU64::new(0);
        pool.run(|ctx| {
            // Change for 5 rounds, then stabilize.
            let c = ctx.converge_rounds(100, |round, flag| {
                ctx.master(|| {
                    work.fetch_add(1, Ordering::Relaxed);
                });
                if round.get() <= 5 {
                    flag.set();
                }
                ctx.barrier();
            });
            assert_eq!(c.rounds, 6); // rounds 1..=5 changed, round 6 didn't
            assert!(c.converged);
        });
        assert_eq!(work.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn converge_rounds_respects_max() {
        let pool = ThreadPool::new(2);
        pool.run(|ctx| {
            let c = ctx.converge_rounds(3, |_round, flag| {
                flag.set(); // never converges
            });
            assert_eq!(c.rounds, 3);
            assert!(!c.converged);
        });
    }

    #[test]
    fn converge_rounds_zero_max() {
        let pool = ThreadPool::new(2);
        pool.run(|ctx| {
            let c = ctx.converge_rounds(0, |_, _| unreachable!());
            assert_eq!(c.rounds, 0);
            assert!(!c.converged);
        });
    }

    #[test]
    fn rounds_are_distinct_and_increasing() {
        let pool = ThreadPool::new(3);
        let seen = Mutex::new(Vec::new());
        pool.run(|ctx| {
            ctx.converge_rounds(10, |round, flag| {
                ctx.master(|| seen.lock().push(round.get()));
                if round.get() < 4 {
                    flag.set();
                }
                ctx.barrier();
            });
        });
        assert_eq!(*seen.lock(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let pool = ThreadPool::new(4);
        struct RacyCell(std::cell::UnsafeCell<u64>);
        // SAFETY (test): all access goes through ctx.critical.
        unsafe impl Sync for RacyCell {}
        let cell = RacyCell(std::cell::UnsafeCell::new(0));
        pool.run(|ctx| {
            let cell: &RacyCell = &cell; // capture the Sync wrapper whole
            for _ in 0..1000 {
                ctx.critical(|| {
                    // SAFETY: the critical section serializes access.
                    unsafe { *cell.0.get() += 1 };
                });
            }
        });
        assert_eq!(cell.0.into_inner(), 4000);
    }

    #[test]
    fn master_runs_once() {
        let pool = ThreadPool::new(4);
        let n = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.master(|| {
                n.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_2d_covers_the_rectangle_exactly_once() {
        let (rows, cols) = (13, 7);
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..rows * cols).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            ctx.for_each_2d(rows, cols, Schedule::Dynamic { chunk: 5 }, |i, j| {
                assert!(i < rows && j < cols);
                hits[i * cols + j].fetch_add(1, Ordering::Relaxed);
            });
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn for_each_2d_degenerate_dimensions() {
        let pool = ThreadPool::new(2);
        pool.run(|ctx| {
            ctx.for_each_2d(0, 5, Schedule::default(), |_, _| unreachable!());
            ctx.for_each_2d(5, 0, Schedule::default(), |_, _| unreachable!());
        });
    }

    #[test]
    fn reduce_combines_every_member_once() {
        let pool = ThreadPool::new(4);
        let sums = Mutex::new(Vec::new());
        pool.run(|ctx| {
            let local = (ctx.thread_id() + 1) as u64;
            let total = ctx.reduce(local, |a, b| a + b);
            sums.lock().push(total);
        });
        assert_eq!(*sums.lock(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn reduce_supports_non_numeric_payloads() {
        let pool = ThreadPool::new(3);
        pool.run(|ctx| {
            let mine = vec![ctx.thread_id()];
            let mut all = ctx.reduce(mine, |mut a, b| {
                a.extend(b);
                a
            });
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        });
    }

    #[test]
    fn consecutive_reduces_do_not_bleed() {
        let pool = ThreadPool::new(4);
        pool.run(|ctx| {
            for k in 1u64..=10 {
                let total = ctx.reduce(k, |a, b| a + b);
                assert_eq!(total, 4 * k);
                let min = ctx.reduce(ctx.thread_id() as u64 + k, |a, b| a.min(b));
                assert_eq!(min, k);
            }
        });
    }

    #[test]
    fn reduce_single_member_is_identity() {
        let pool = ThreadPool::new(1);
        pool.run(|ctx| {
            assert_eq!(ctx.reduce(41u32, |a, b| a + b), 41);
        });
    }

    #[test]
    fn panic_in_region_propagates_and_poisons() {
        let pool = ThreadPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id() == 1 {
                    panic!("boom in worker");
                }
                // Other members head to a barrier that will be poisoned.
                ctx.barrier();
            });
        }));
        assert!(r.is_err());
        // The pool is now unusable.
        let r2 = catch_unwind(AssertUnwindSafe(|| pool.run(|_| {})));
        assert!(r2.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_pool_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn frontier_loop_covers_entries_exactly_once() {
        use crate::frontier::{FrontierBuffer, LocalBuffer};
        let pool = ThreadPool::new(4);
        let n = 5000usize;
        let fb = FrontierBuffer::with_capacity(n);
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(|ctx| {
            // Publish 0..n from per-worker buffers.
            let mut local = LocalBuffer::with_threshold(64);
            ctx.for_each_nowait(0..n, Schedule::default(), |i| {
                local.push(i as u64, &fb);
            });
            local.flush(&fb);
            ctx.barrier();

            // Skewed weights: entry 0 carries almost all the edge weight.
            let weight = |v: u64| if v == 0 { 100_000 } else { 1 };
            let total = ctx.frontier_edge_count(&fb, weight);
            assert_eq!(total, 100_000 + n - 1);
            ctx.for_each_frontier(&fb, total, 4096, |v| {
                hits[v as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "entry {i}");
        }
    }

    #[test]
    fn frontier_loop_empty_frontier_is_fine() {
        use crate::frontier::FrontierBuffer;
        let pool = ThreadPool::new(3);
        let fb = FrontierBuffer::with_capacity(10);
        pool.run(|ctx| {
            assert_eq!(ctx.frontier_edge_count(&fb, |_| 1), 0);
            ctx.for_each_frontier(&fb, 0, 4096, |_| unreachable!());
        });
    }

    #[test]
    fn oversubscribed_team_still_correct() {
        // More threads than this machine plausibly has cores.
        let pool = ThreadPool::new(16);
        let sum = AtomicU64::new(0);
        pool.run(|ctx| {
            ctx.for_each(0..10_000, Schedule::default(), |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            ctx.barrier();
            ctx.for_each(0..100, Schedule::dynamic(), |_| {});
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }
}
