//! # pram-exec — an OpenMP-style execution substrate for PRAM kernels
//!
//! The paper implements its kernels with OpenMP: a team of threads enters a
//! parallel region once, then repeatedly loop-schedules an index space and
//! meets at barriers between lock-step rounds
//! (`#pragma omp parallel` / `#pragma omp for` / implicit barriers, with
//! `OMP_WAIT_POLICY` controlling how waiting threads behave). This crate is
//! that runtime rebuilt from scratch on `std::thread` + atomics, so the
//! concurrent-write methods of `pram-core` are exercised under the same
//! execution structure the paper measured:
//!
//! * [`ThreadPool`] — a persistent team of workers. [`ThreadPool::run`]
//!   executes one closure on **every** thread of the team (SPMD), like
//!   entering `#pragma omp parallel`.
//! * [`WorkerCtx`] — the per-thread view inside a region:
//!   [`WorkerCtx::for_each`] (OpenMP `for` with [`Schedule`]
//!   static/dynamic/guided clauses and the implicit ending barrier),
//!   [`WorkerCtx::barrier`], [`WorkerCtx::converge_rounds`] (the
//!   `while(!done)` lock-step pattern of the paper's BFS and CC kernels,
//!   with barrier-separated [`pram_core::Round`]s supplied automatically).
//! * [`SpinBarrier`] / [`DisseminationBarrier`] — the team rendezvous, in
//!   two topologies selected by [`BarrierKind`]: a sense-reversing
//!   centralized barrier (one shared arrival counter) and an O(log T)
//!   dissemination barrier (pairwise signaling through padded per-thread
//!   flags, no shared hot spot). Both support an active (pure spin,
//!   `OMP_WAIT_POLICY=active`) or passive (spin → yield → timed park)
//!   [`WaitPolicy`].
//! * [`StealQueues`] — per-worker chunk deques with steal-half
//!   rebalancing, backing [`Schedule::Stealing`]: locality-preserving
//!   static seeding with dynamic rebalancing only under skew, as an
//!   alternative to the shared-cursor dynamic schedule for irregular
//!   loops ([`PoolConfig::irregular`] picks the family pool-wide).
//! * [`FrontierBuffer`] / [`LocalBuffer`] — grow-local,
//!   publish-with-one-`fetch_add` shared worklists for frontier-centric
//!   kernels, consumed through the degree-weighted
//!   [`WorkerCtx::for_each_frontier`] loop.
//!
//! ## Why lock-step structure matters here
//!
//! PRAM semantics require a synchronization point between a concurrent
//! write and any dependent read (paper §4). Every loop issued through
//! [`WorkerCtx::for_each`] ends in a barrier, and
//! [`WorkerCtx::converge_rounds`] barriers between rounds, so kernels built
//! on this crate satisfy the *round discipline* that
//! [`pram_core::payload`] requires for its multi-word writes — the safety
//! argument is structural, not per-call-site.
//!
//! ```
//! use pram_exec::{Schedule, ThreadPool};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let hits = AtomicU64::new(0);
//! pool.run(|ctx| {
//!     // All 4 threads execute this closure; indices are partitioned.
//!     ctx.for_each(0..1000, Schedule::default(), |_i| {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod config;
pub mod frontier;
pub mod pool;
pub mod schedule;
pub mod steal;

pub use barrier::{DisseminationBarrier, SpinBarrier, TeamBarrier, WaitBackoff};
pub use config::{BarrierKind, MethodKind, PoolConfig, WaitPolicy};
// Telemetry vocabulary re-exported so pool users need not depend on
// pram-core directly for reports.
pub use frontier::{FrontierBuffer, LocalBuffer};
pub use pool::{ChangedFlag, ThreadPool, WorkerCtx, FRONTIER_GRAIN_EDGES};
pub use pram_core::{CwCounters, CwTelemetry, ExecCounters, RoundReport, RoundSnapshot};
pub use schedule::{Schedule, ScheduleKind};
pub use steal::StealQueues;
