//! # pram-algos — classic CRCW PRAM kernels over pluggable concurrent-write
//! methods
//!
//! The paper's §7 evaluates its CAS-LT concurrent-write method against the
//! naive and gatekeeper (prefix-sum) practices on three classic CRCW PRAM
//! algorithms. This crate implements those kernels — once each — against
//! the [`pram_core::SliceArbiter`] abstraction, so every kernel runs under
//! every method:
//!
//! * [`max`] — the constant-time maximum algorithm (paper Figure 4):
//!   depth-O(1), work-O(n²), an extreme stress of *common* concurrent
//!   writes.
//! * [`mod@bfs`] — the Rodinia-style level-synchronous breadth-first search
//!   (paper Figure 3): per-level frontier expansion whose vertex-claiming
//!   write updates four arrays at once. Besides the paper's dense scan, a
//!   sparse top-down and a Beamer-style direction-optimizing frontier
//!   strategy run on the same claim substrate ([`BfsStrategy`]).
//! * [`cc`] — Awerbuch–Shiloach connected components: star-based hooking,
//!   the paper's *arbitrary* concurrent-write benchmark (no safe naive
//!   variant exists, as §7.3 explains — hooking updates multiple arrays).
//! * [`sv`] — a simplified Shiloach–Vishkin (hook-to-minimum) variant, an
//!   extension beyond the paper's three kernels.
//! * [`any`] — O(1) logical OR (common CW) and first-true (priority CW)
//!   one-step kernels.
//! * [`matching`] — maximal matching whose match commit is a two-cell
//!   arbitrary concurrent write (extension, after the paper's ref. \[23\]).
//! * [`mod@reduce`] / [`mod@list_rank`] / [`mod@scan`] — EREW tournament
//!   reduction, CREW pointer-jumping list ranking, and work-efficient
//!   Blelloch prefix sum: the exclusive-write comparators for the paper's
//!   future-work study (CRCW-with-better-work-depth vs EREW/CREW-in-use),
//!   benched in `ext_crew_vs_crcw`.
//!
//! Every kernel takes a [`CwMethod`] selecting the arbitration scheme and a
//! [`pram_exec::ThreadPool`] to run on, and is validated against the serial
//! references in [`pram_graph::serial`] (and, in the workspace tests,
//! against the ideal machine in `pram-sim`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod any;
pub mod bfs;
pub mod cc;
pub mod list_rank;
pub mod matching;
pub mod max;
pub mod method;
pub mod reduce;
pub mod scan;
pub mod sv;

pub use any::{first_true, logical_or};
pub use bfs::{bfs, bfs_with_strategy, bfs_with_strategy_rev, BfsResult, BfsStrategy};
pub use cc::{connected_components, connected_components_worklist, CcResult};
pub use list_rank::list_rank;
pub use matching::{maximal_matching, MatchingResult};
pub use max::max_index;
pub use method::CwMethod;
pub use reduce::max_index_tournament;
pub use scan::{exclusive_scan, inclusive_scan};
pub use sv::sv_components;
