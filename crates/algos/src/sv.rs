//! Simplified Shiloach–Vishkin connected components (hook-to-minimum) —
//! an extension kernel beyond the paper's three benchmarks.
//!
//! The paper's CC benchmark is Awerbuch–Shiloach ([`crate::cc`]); this is
//! the other classic of the family: every iteration hooks each root onto
//! the smallest neighboring parent value and then pointer-jumps. Hooks are
//! *arbitrary* concurrent writes — many edges race to hook the same root
//! with different (all strictly smaller) values — and arbitration is what
//! prevents a lost-union bug: with naive writes, two winners in the same
//! round overwrite each other's merge and the surviving forest can split a
//! component (see the `sv_naive_can_lose_unions` demonstration in the
//! workspace tests).
//!
//! Because every committed hook strictly decreases the target root's value,
//! the parent forest is acyclic under *any* interleaving — this kernel
//! needs no snapshot pass, making it a useful contrast to
//! [`crate::cc`]'s stricter phase discipline.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use pram_core::SliceArbiter;
use pram_exec::{Schedule, ThreadPool};
use pram_graph::CsrGraph;

use crate::method::{dispatch_method, CwMethod};

/// Output of [`sv_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvResult {
    /// Canonical component labels (smallest vertex id per component).
    pub labels: Vec<u32>,
    /// Iterations executed.
    pub iterations: u32,
    /// Whether the fixed point was reached within the cap.
    pub converged: bool,
}

/// Hook-to-minimum Shiloach–Vishkin under the given concurrent-write
/// method.
pub fn sv_components(g: &CsrGraph, method: CwMethod, pool: &ThreadPool) -> SvResult {
    dispatch_method!(method, g.num_vertices(), |arb| sv_with_arbiter(
        g, &arb, pool
    ))
}

/// The kernel against an explicit arbiter (one cell per vertex).
pub fn sv_with_arbiter<A: SliceArbiter>(g: &CsrGraph, arb: &A, pool: &ThreadPool) -> SvResult {
    let n = g.num_vertices();
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");
    let edges: Vec<(u32, u32)> = g.directed_edges().collect();
    let m = edges.len();

    let d: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();

    let bits = usize::BITS - n.max(2).leading_zeros();
    // Hook rounds are bounded by O(log n) and each shortcut halves depths;
    // the quadratic cap is pure paranoia for adversarial interleavings.
    let max_iters = (bits + 2) * (bits + 2) + 16;

    let iterations = AtomicU32::new(0);
    let converged = AtomicU8::new(0);

    pool.run(|ctx| {
        let sched = Schedule::default();
        let c = ctx.converge_rounds(max_iters, |round, flag| {
            // Hook: for each edge, try to hang u's root onto a smaller
            // parent value from v's side.
            ctx.for_each(0..m, sched, |e| {
                let (u, v) = edges[e];
                let du = d[u as usize].load(Ordering::Relaxed);
                let dv = d[v as usize].load(Ordering::Relaxed);
                // Only roots hook (racy check; the claim makes it safe —
                // at most one writer per root per round, and committed
                // values strictly decrease, so stale reads cannot cycle).
                if dv < du
                    && d[du as usize].load(Ordering::Relaxed) == du
                    && arb.try_claim(du as usize, round)
                {
                    d[du as usize].store(dv, Ordering::Relaxed);
                    flag.set();
                }
            });
            if !arb.rearms_on_new_round() {
                ctx.for_each(0..n, sched, |v| arb.reset_range(v..v + 1));
            }
            // Shortcut.
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed);
                let ddv = d[dv as usize].load(Ordering::Relaxed);
                if ddv != dv {
                    d[v].store(ddv, Ordering::Relaxed);
                    flag.set();
                }
            });
        });
        iterations.store(c.rounds, Ordering::Relaxed);
        converged.store(u8::from(c.converged), Ordering::Relaxed);
    });

    let d: Vec<u32> = d.into_iter().map(AtomicU32::into_inner).collect();
    let labels = pram_graph::serial::canonical_labels_from(
        |v| {
            // Fully contract (serial, tiny): follow pointers to the root.
            let mut x = v;
            while d[x as usize] != x {
                x = d[x as usize];
            }
            x
        },
        n,
    );
    SvResult {
        labels,
        iterations: iterations.into_inner(),
        converged: converged.into_inner() != 0,
    }
}

/// Verify an [`SvResult`] against union–find ground truth.
pub fn verify_sv(g: &CsrGraph, r: &SvResult) -> Result<(), String> {
    let n = g.num_vertices();
    let edges: Vec<(u32, u32)> = g.directed_edges().collect();
    let expect = pram_graph::serial::cc_labels(n, &edges);
    if r.labels != expect {
        let v = (0..n).find(|&v| expect[v] != r.labels[v]).unwrap();
        return Err(format!(
            "labels[{v}] = {} but union-find says {}",
            r.labels[v], expect[v]
        ));
    }
    if !r.converged {
        return Err("did not converge within the iteration cap".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::GraphGen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges(n, edges, true)
    }

    #[test]
    fn matches_union_find_on_structured_graphs() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(1, &[]),
            graph(6, &GraphGen::path(6)),
            graph(8, &GraphGen::star(8)),
            graph(12, &GraphGen::disjoint_cliques(4, 3)),
            graph(16, &GraphGen::grid(4, 4)),
        ];
        for g in &cases {
            for m in CwMethod::ALL.into_iter().filter(|m| m.single_winner()) {
                let r = sv_components(g, m, &pool);
                verify_sv(g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let pool = ThreadPool::new(2);
        // Component {1, 3, 5} and {0, 2}; labels are the minima.
        let g = graph(6, &[(1, 3), (3, 5), (0, 2)]);
        let r = sv_components(&g, CwMethod::CasLt, &pool);
        assert_eq!(r.labels, vec![0, 1, 0, 1, 4, 1]);
    }

    #[test]
    fn random_graphs_match() {
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let edges = GraphGen::new(100 + seed).gnm(150, 250);
            let g = graph(150, &edges);
            let r = sv_components(&g, CwMethod::CasLt, &pool);
            verify_sv(&g, &r).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn converges_quickly_on_path() {
        let pool = ThreadPool::new(2);
        let g = graph(512, &GraphGen::path(512));
        let r = sv_components(&g, CwMethod::CasLt, &pool);
        assert!(r.converged);
        assert!(
            r.iterations <= 30,
            "path of 512 took {} iterations",
            r.iterations
        );
    }
}
