//! List ranking by pointer jumping — the classic CREW PRAM primitive.
//!
//! Given a linked list (`next[v]` = successor; the terminal points to
//! itself), compute each node's distance to the terminal in ⌈log₂ n⌉
//! lock-step rounds: every round, `rank[v] += rank[next[v]]` and
//! `next[v] = next[next[v]]`. Reads are concurrent (many nodes share a
//! successor mid-contraction), writes are exclusive (each node writes only
//! its own slots) — CREW, no write arbitration needed. It is here as the
//! second half of the paper's future-work comparison axis (exclusive-write
//! algorithms on the same substrate as the CRCW kernels) and as a
//! non-graph exercise of the lock-step driver.
//!
//! Work O(n log n), depth O(log n) — the textbook non-optimal version;
//! the optimal O(n)-work variant (sparse ruling sets) is noted as an
//! extension in DESIGN.md.

use std::sync::atomic::{AtomicU32, Ordering};

use pram_exec::{Schedule, ThreadPool};

/// Distance of every node to its chain's terminal (`next[v] == v`).
///
/// # Panics
/// Panics if `next` has out-of-range successors or more than `u32::MAX`
/// nodes.
///
/// ```
/// use pram_algos::list_rank::list_rank;
/// use pram_exec::ThreadPool;
///
/// // 2 -> 0 -> 1 -> 1 (terminal)
/// let pool = ThreadPool::new(2);
/// assert_eq!(list_rank(&[1, 1, 0], &pool), vec![1, 0, 2]);
/// ```
pub fn list_rank(next: &[u32], pool: &ThreadPool) -> Vec<u32> {
    let n = next.len();
    assert!(n <= u32::MAX as usize, "node ids are u32");
    for (v, &s) in next.iter().enumerate() {
        assert!((s as usize) < n, "next[{v}] = {s} out of range");
    }
    if n == 0 {
        return vec![];
    }

    // Double-buffered (rank, next) so every round is read-then-write clean.
    let rank: [Vec<AtomicU32>; 2] = [
        next.iter()
            .enumerate()
            .map(|(v, &s)| AtomicU32::new(u32::from(s as usize != v)))
            .collect(),
        (0..n).map(|_| AtomicU32::new(0)).collect(),
    ];
    let nxt: [Vec<AtomicU32>; 2] = [
        next.iter().map(|&s| AtomicU32::new(s)).collect(),
        (0..n).map(|_| AtomicU32::new(0)).collect(),
    ];

    let rounds_run = AtomicU32::new(0);
    pool.run(|ctx| {
        // log2(n) jumps suffice; converge_rounds stops earlier when no
        // pointer moved.
        let max_rounds = (usize::BITS - n.leading_zeros()) + 1;
        let c = ctx.converge_rounds(max_rounds, |round, flag| {
            let cur = ((round.get() - 1) % 2) as usize;
            let (rs, rd) = (&rank[cur], &rank[1 - cur]);
            let (ns, nd) = (&nxt[cur], &nxt[1 - cur]);
            ctx.for_each(0..n, Schedule::default(), |v| {
                let s = ns[v].load(Ordering::Relaxed) as usize;
                let jumped = ns[s].load(Ordering::Relaxed); // concurrent read
                rd[v].store(
                    rs[v].load(Ordering::Relaxed) + rs[s].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                nd[v].store(jumped, Ordering::Relaxed); // exclusive write
                if jumped as usize != s {
                    flag.set();
                }
            });
        });
        rounds_run.store(c.rounds, Ordering::Relaxed);
    });

    // Round i writes buffer i % 2, so after r rounds the ranks live in
    // buffer r % 2.
    let last = (rounds_run.into_inner() % 2) as usize;
    rank[last]
        .iter()
        .map(|r| r.load(Ordering::Relaxed))
        .collect()
}

/// Serial reference: rank by walking each chain once from its terminal.
pub fn list_rank_serial(next: &[u32]) -> Vec<u32> {
    let n = next.len();
    let mut rank = vec![u32::MAX; n];
    for start in 0..n {
        if rank[start] != u32::MAX {
            continue;
        }
        // Walk to the terminal (or a node with a known rank), stacking.
        let mut path = vec![];
        let mut v = start as u32;
        while rank[v as usize] == u32::MAX && next[v as usize] != v {
            path.push(v);
            rank[v as usize] = u32::MAX - 1; // visiting marker
            v = next[v as usize];
            if rank[v as usize] == u32::MAX - 1 {
                panic!("next[] contains a cycle");
            }
        }
        let mut base = if next[v as usize] == v {
            rank[v as usize] = if rank[v as usize] == u32::MAX {
                0
            } else {
                rank[v as usize]
            };
            rank[v as usize]
        } else {
            rank[v as usize]
        };
        for &u in path.iter().rev() {
            base += 1;
            rank[u as usize] = base;
        }
    }
    rank
}

/// A random list over `n` nodes (seeded): returns `next` and the head.
/// Node order is a random permutation; the last node is the terminal.
pub fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    assert!(n > 0);
    // Fisher–Yates with a splitmix-style generator (no extra deps).
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut rand = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (rand() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut next = vec![0u32; n];
    for w in order.windows(2) {
        next[w[0] as usize] = w[1];
    }
    let last = *order.last().unwrap();
    next[last as usize] = last;
    (next, order[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chains() {
        let pool = ThreadPool::new(2);
        // 0 -> 1 -> 2 -> 2
        assert_eq!(list_rank(&[1, 2, 2], &pool), vec![2, 1, 0]);
        // Single node.
        assert_eq!(list_rank(&[0], &pool), vec![0]);
        // Empty.
        assert_eq!(list_rank(&[], &pool), Vec::<u32>::new());
    }

    #[test]
    fn serial_reference_is_sound() {
        assert_eq!(list_rank_serial(&[1, 2, 2]), vec![2, 1, 0]);
        assert_eq!(list_rank_serial(&[0, 0, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn random_lists_match_serial() {
        let pool = ThreadPool::new(4);
        for n in [2usize, 3, 5, 17, 64, 257, 1000] {
            for seed in 0..3 {
                let (next, head) = random_list(n, seed);
                let got = list_rank(&next, &pool);
                let expect = list_rank_serial(&next);
                assert_eq!(got, expect, "n = {n} seed = {seed}");
                assert_eq!(got[head as usize], n as u32 - 1, "head has max rank");
            }
        }
    }

    #[test]
    fn multiple_disjoint_chains() {
        let pool = ThreadPool::new(3);
        // Two chains: 0->1->1 and 3->2->2; 4 isolated terminal.
        let next = vec![1, 1, 2, 2, 4];
        assert_eq!(list_rank(&next, &pool), list_rank_serial(&next));
        assert_eq!(list_rank(&next, &pool), vec![1, 0, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn serial_detects_cycles() {
        let _ = list_rank_serial(&[1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parallel_rejects_bad_successor() {
        let pool = ThreadPool::new(1);
        let _ = list_rank(&[5], &pool);
    }
}
