//! Awerbuch–Shiloach connected components (evaluated in the paper's
//! Figures 10–12) — the *arbitrary* concurrent-write benchmark.
//!
//! Each iteration runs star-based hooking twice (conditional, then
//! unconditional) followed by one pointer-jumping shortcut:
//!
//! 1. **Star detection** (3 passes): mark which vertices belong to depth-≤1
//!    trees, using common concurrent writes of `false`.
//! 2. **Conditional hooking**: for every directed edge `(u, v)` with `u` in
//!    a star and `D[v] < D[u]`, hook `u`'s root onto `D[v]`. Many edges
//!    target the same root with *different* values — a true arbitrary
//!    concurrent write. The winner updates **two** arrays (`D[root]` and
//!    `hook_edge[root]`), which is why the paper implements no naive CC:
//!    torn two-array writes are unsound (§7.3).
//! 3. **Unconditional hooking**: surviving stars hook onto any differing
//!    neighbor component (safe: after conditional hooking, no two adjacent
//!    stars survive, so targets are non-hooking trees — no cycles).
//! 4. **Shortcut**: `D[v] = D[D[v]]`.
//!
//! ## Reads-before-writes, made explicit
//!
//! PRAM semantics read all operands before any same-step write commits. A
//! threaded hooking pass has no such guarantee: a hooked root's new pointer
//! could be read mid-pass as if it were a root, directing a *second* hook
//! at a non-root cell and splitting a component. We restore the PRAM
//! read/write separation by snapshotting `D` before each hooking pass
//! (`D_snap`) and hooking from the snapshot — an O(n) pass per phase,
//! identical across methods, that stands in for the lock-step semantics
//! OpenMP's fork-join also only approximates. DESIGN.md discusses the
//! substitution.

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

use pram_core::{Round, SliceArbiter};
use pram_exec::{FrontierBuffer, LocalBuffer, Schedule, ThreadPool, WorkerCtx};
use pram_graph::CsrGraph;

use crate::method::{dispatch_method, CwMethod};

/// Sentinel for "this root was never hooked".
pub const NO_HOOK: usize = usize::MAX;

/// Output of [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// Canonical component labels: the smallest vertex id in each
    /// component.
    pub labels: Vec<u32>,
    /// For each vertex that served as a hooked root: the directed-edge
    /// index (into the CSR target array) whose hook won; [`NO_HOOK`]
    /// otherwise. Winner-consistent with the hook that set the parent —
    /// the two-array write the arbitration protects.
    pub hook_edge: Vec<usize>,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Whether the algorithm reached its fixed point within the iteration
    /// cap (always true for single-winner methods; naive runs may produce
    /// pointer cycles and hit the cap).
    pub converged: bool,
}

/// Awerbuch–Shiloach connected components under the given concurrent-write
/// method.
///
/// The paper implements gatekeeper and CAS-LT variants only; passing
/// [`CwMethod::Naive`] is permitted for demonstration but the result may be
/// arbitrarily wrong (torn two-array hooks) — exactly the §7.3 argument.
///
/// ```
/// use pram_algos::{connected_components, CwMethod};
/// use pram_exec::ThreadPool;
/// use pram_graph::{CsrGraph, GraphGen};
///
/// let g = CsrGraph::from_edges(8, &GraphGen::disjoint_cliques(2, 4), true);
/// let pool = ThreadPool::new(2);
/// let r = connected_components(&g, CwMethod::CasLt, &pool);
/// assert_eq!(r.labels, vec![0, 0, 0, 0, 4, 4, 4, 4]);
/// ```
pub fn connected_components(g: &CsrGraph, method: CwMethod, pool: &ThreadPool) -> CcResult {
    dispatch_method!(method, g.num_vertices(), |arb| cc_with_arbiter(
        g, &arb, pool
    ))
}

/// The kernel against an explicit arbiter (one cell per vertex, freshly
/// armed).
pub fn cc_with_arbiter<A: SliceArbiter>(g: &CsrGraph, arb: &A, pool: &ThreadPool) -> CcResult {
    let n = g.num_vertices();
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");
    let edges: Vec<(u32, u32)> = g.directed_edges().collect();
    let m = edges.len();

    let d: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();
    let d_snap: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let star: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(1)).collect();
    let hook_edge: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(NO_HOOK)).collect();

    // Awerbuch–Shiloach converges in O(log n) iterations; naive runs can
    // cycle, so cap generously and report.
    let max_iters = 4 * (usize::BITS - n.max(2).leading_zeros()) + 16;

    let iterations = AtomicU32::new(0);
    let converged = AtomicU8::new(0);

    pool.run(|ctx| {
        let sched = Schedule::default();

        // Star detection: JaJa's three-pass formulation; passes 2 and 3 use
        // common concurrent writes / race-benign in-place propagation.
        let star_pass = |ctx: &WorkerCtx<'_>| {
            ctx.for_each(0..n, sched, |v| star[v].store(1, Ordering::Relaxed));
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed) as usize;
                let ddv = d[dv].load(Ordering::Relaxed) as usize;
                if dv != ddv {
                    // Common CW of `false` — naive stores are sound here.
                    star[v].store(0, Ordering::Relaxed);
                    star[ddv].store(0, Ordering::Relaxed);
                }
            });
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed) as usize;
                let ddv = d[dv].load(Ordering::Relaxed) as usize;
                // In-place is race-benign: any cell both read and written
                // in this pass provably keeps its value (module docs).
                star[v].store(star[ddv].load(Ordering::Relaxed), Ordering::Relaxed);
            });
        };

        // Snapshot D — the explicit reads-before-writes separation.
        let snapshot = |ctx: &WorkerCtx<'_>| {
            ctx.for_each(0..n, sched, |v| {
                d_snap[v].store(d[v].load(Ordering::Relaxed), Ordering::Relaxed)
            });
        };

        let c = ctx.converge_rounds(max_iters, |iter_round, flag| {
            ctx.annotate_round("hook");
            let i = iter_round.get() - 1;
            // Two distinct CW rounds per iteration (one per hooking phase).
            let hook_rounds = [
                Round::from_iteration(2 * i),
                Round::from_iteration(2 * i + 1),
            ];

            for (phase, &round) in hook_rounds.iter().enumerate() {
                let conditional = phase == 0;
                star_pass(ctx);
                snapshot(ctx);
                ctx.for_each(0..m, sched, |e| {
                    let (u, v) = edges[e];
                    if star[u as usize].load(Ordering::Relaxed) == 0 {
                        return;
                    }
                    let du = d_snap[u as usize].load(Ordering::Relaxed);
                    let dv = d_snap[v as usize].load(Ordering::Relaxed);
                    let should = if conditional { dv < du } else { dv != du };
                    if should && arb.try_claim(du as usize, round) {
                        // The guarded two-array arbitrary write.
                        d[du as usize].store(dv, Ordering::Relaxed);
                        hook_edge[du as usize].store(e, Ordering::Relaxed);
                        flag.set();
                    }
                });
                if !arb.rearms_on_new_round() {
                    // Gatekeeper methods: re-zero before the next CW round.
                    ctx.for_each(0..n, sched, |v| arb.reset_range(v..v + 1));
                }
            }

            // Shortcut: pointer jumping (exclusive write per vertex).
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed);
                let ddv = d[dv as usize].load(Ordering::Relaxed);
                if ddv != dv {
                    d[v].store(ddv, Ordering::Relaxed);
                    flag.set();
                }
            });
            ctx.tune(arb);
        });
        iterations.store(c.rounds, Ordering::Relaxed);
        converged.store(u8::from(c.converged), Ordering::Relaxed);
    });

    let d: Vec<u32> = d.into_iter().map(AtomicU32::into_inner).collect();
    let labels = pram_graph::serial::canonical_labels_from(|v| d[d[v as usize] as usize], n);
    CcResult {
        labels,
        hook_edge: hook_edge.into_iter().map(AtomicUsize::into_inner).collect(),
        iterations: iterations.into_inner(),
        converged: converged.into_inner() != 0,
    }
}

/// Awerbuch–Shiloach with an **active-edge worklist**: like
/// [`connected_components`], but each iteration ends by compacting the edge
/// list, permanently dropping every edge whose endpoints already share a
/// parent (`D[u] == D[v]`).
///
/// The drop is safe because trees only ever merge: once two endpoints are
/// in the same tree they remain in the same component forever, so the edge
/// can never again hook two *distinct* trees. As components coalesce, the
/// per-iteration hooking work shrinks from `O(m)` towards zero while the
/// fixed `O(n)` star/snapshot/shortcut passes are untouched — the same
/// frontier-centric trade the sparse BFS strategies make.
///
/// The compacted list lives in a double-buffered
/// [`pram_exec::FrontierBuffer`] of edge indices, rebuilt with per-worker
/// [`pram_exec::LocalBuffer`]s. Arbitration is byte-for-byte the kernel of
/// [`cc_with_arbiter`]: the same `try_claim(root, round)` guards the same
/// two-array hook write, so every concurrent-write method dispatches
/// unchanged.
pub fn connected_components_worklist(
    g: &CsrGraph,
    method: CwMethod,
    pool: &ThreadPool,
) -> CcResult {
    dispatch_method!(method, g.num_vertices(), |arb| cc_worklist_with_arbiter(
        g, &arb, pool
    ))
}

/// The worklist kernel against an explicit arbiter (one cell per vertex,
/// freshly armed).
pub fn cc_worklist_with_arbiter<A: SliceArbiter>(
    g: &CsrGraph,
    arb: &A,
    pool: &ThreadPool,
) -> CcResult {
    let n = g.num_vertices();
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");
    let edges: Vec<(u32, u32)> = g.directed_edges().collect();
    let m = edges.len();

    let d: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();
    let d_snap: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let star: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(1)).collect();
    let hook_edge: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(NO_HOOK)).collect();

    // Double-buffered active-edge list, initially every directed edge.
    let work = [
        FrontierBuffer::with_capacity(m),
        FrontierBuffer::with_capacity(m),
    ];
    let all: Vec<u64> = (0..m as u64).collect();
    work[0].publish(&all);
    drop(all);

    let max_iters = 4 * (usize::BITS - n.max(2).leading_zeros()) + 16;
    let iterations = AtomicU32::new(0);
    let converged = AtomicU8::new(0);

    pool.run(|ctx| {
        let sched = Schedule::default();
        let mut wi = 0usize; // work[wi] is the current active-edge list

        let star_pass = |ctx: &WorkerCtx<'_>| {
            ctx.for_each(0..n, sched, |v| star[v].store(1, Ordering::Relaxed));
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed) as usize;
                let ddv = d[dv].load(Ordering::Relaxed) as usize;
                if dv != ddv {
                    star[v].store(0, Ordering::Relaxed);
                    star[ddv].store(0, Ordering::Relaxed);
                }
            });
            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed) as usize;
                let ddv = d[dv].load(Ordering::Relaxed) as usize;
                star[v].store(star[ddv].load(Ordering::Relaxed), Ordering::Relaxed);
            });
        };
        let snapshot = |ctx: &WorkerCtx<'_>| {
            ctx.for_each(0..n, sched, |v| {
                d_snap[v].store(d[v].load(Ordering::Relaxed), Ordering::Relaxed)
            });
        };

        let c = ctx.converge_rounds(max_iters, |iter_round, flag| {
            ctx.annotate_round("hook");
            let i = iter_round.get() - 1;
            let hook_rounds = [
                Round::from_iteration(2 * i),
                Round::from_iteration(2 * i + 1),
            ];
            let cur = &work[wi];
            let wlen = cur.len();

            for (phase, &round) in hook_rounds.iter().enumerate() {
                let conditional = phase == 0;
                star_pass(ctx);
                snapshot(ctx);
                // Hooking now walks only the active edges.
                ctx.for_each(0..wlen, sched, |k| {
                    let e = cur.get(k) as usize;
                    let (u, v) = edges[e];
                    if star[u as usize].load(Ordering::Relaxed) == 0 {
                        return;
                    }
                    let du = d_snap[u as usize].load(Ordering::Relaxed);
                    let dv = d_snap[v as usize].load(Ordering::Relaxed);
                    let should = if conditional { dv < du } else { dv != du };
                    if should && arb.try_claim(du as usize, round) {
                        d[du as usize].store(dv, Ordering::Relaxed);
                        hook_edge[du as usize].store(e, Ordering::Relaxed);
                        flag.set();
                    }
                });
                if !arb.rearms_on_new_round() {
                    ctx.for_each(0..n, sched, |v| arb.reset_range(v..v + 1));
                }
            }

            ctx.for_each(0..n, sched, |v| {
                let dv = d[v].load(Ordering::Relaxed);
                let ddv = d[dv as usize].load(Ordering::Relaxed);
                if ddv != dv {
                    d[v].store(ddv, Ordering::Relaxed);
                    flag.set();
                }
            });

            // Compact: keep only edges whose endpoints still have distinct
            // parents. `D[u] == D[v]` ⇒ same tree ⇒ same component forever,
            // so dropped edges can never hook again.
            let next = &work[1 - wi];
            ctx.barrier_with(|| next.clear());
            let mut local = LocalBuffer::new();
            ctx.for_each_nowait(0..wlen, sched, |k| {
                let e = cur.get(k) as usize;
                let (u, v) = edges[e];
                if d[u as usize].load(Ordering::Relaxed) != d[v as usize].load(Ordering::Relaxed) {
                    local.push(e as u64, next);
                }
            });
            local.flush(next);
            ctx.barrier();
            wi = 1 - wi;
            ctx.tune(arb);
        });
        ctx.master(|| {
            iterations.store(c.rounds, Ordering::Relaxed);
            converged.store(u8::from(c.converged), Ordering::Relaxed);
        });
    });

    let d: Vec<u32> = d.into_iter().map(AtomicU32::into_inner).collect();
    let labels = pram_graph::serial::canonical_labels_from(|v| d[d[v as usize] as usize], n);
    CcResult {
        labels,
        hook_edge: hook_edge.into_iter().map(AtomicUsize::into_inner).collect(),
        iterations: iterations.into_inner(),
        converged: converged.into_inner() != 0,
    }
}

/// Verify a [`CcResult`] against union–find ground truth, including the
/// hook-edge cross-array consistency that arbitration protects.
pub fn verify_cc(g: &CsrGraph, r: &CcResult) -> Result<(), String> {
    let n = g.num_vertices();
    let edges: Vec<(u32, u32)> = g.directed_edges().collect();
    let expect = pram_graph::serial::cc_labels(n, &edges);
    if r.labels != expect {
        let v = (0..n).find(|&v| expect[v] != r.labels[v]).unwrap();
        return Err(format!(
            "labels[{v}] = {} but union-find says {}",
            r.labels[v], expect[v]
        ));
    }
    if !r.converged {
        return Err("did not converge within the iteration cap".into());
    }
    // Each recorded hook edge must connect vertices of the component whose
    // root it hooked — the two-array consistency check.
    for (root, &e) in r.hook_edge.iter().enumerate() {
        if e == NO_HOOK {
            continue;
        }
        let Some(&(u, v)) = edges.get(e) else {
            return Err(format!("hook_edge[{root}] = {e} is not an edge index"));
        };
        if r.labels[u as usize] != r.labels[root] || r.labels[v as usize] != r.labels[root] {
            return Err(format!(
                "hook_edge[{root}] = {e} = ({u}, {v}) crosses components \
                 ({}, {} vs root's {})",
                r.labels[u as usize], r.labels[v as usize], r.labels[root]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::GraphGen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges(n, edges, true)
    }

    fn single_winner_methods() -> impl Iterator<Item = CwMethod> {
        CwMethod::ALL.into_iter().filter(|m| m.single_winner())
    }

    #[test]
    fn structured_graphs_all_methods() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(1, &[]),
            graph(5, &[]),
            graph(5, &GraphGen::path(5)),
            graph(8, &GraphGen::star(8)),
            graph(6, &GraphGen::cycle(6)),
            graph(12, &GraphGen::disjoint_cliques(3, 4)),
            graph(9, &GraphGen::grid(3, 3)),
            graph(4, &GraphGen::complete(4)),
        ];
        for g in &cases {
            for m in single_winner_methods() {
                let r = connected_components(g, m, &pool);
                verify_cc(g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
    }

    #[test]
    fn random_multigraphs() {
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let edges = GraphGen::new(seed).gnm(120, 200);
            let g = graph(120, &edges);
            for m in [CwMethod::CasLt, CwMethod::Gatekeeper] {
                let r = connected_components(&g, m, &pool);
                verify_cc(&g, &r).unwrap_or_else(|e| panic!("seed {seed} {m}: {e}"));
            }
        }
    }

    #[test]
    fn random_forests_preserve_component_structure() {
        let pool = ThreadPool::new(4);
        let edges = GraphGen::new(3).random_forest(300, 0.7);
        let g = graph(300, &edges);
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        verify_cc(&g, &r).unwrap();
    }

    #[test]
    fn rmat_skewed_graph() {
        let pool = ThreadPool::new(4);
        let edges = GraphGen::new(1).rmat_standard(8, 600);
        let g = graph(256, &edges);
        for m in [CwMethod::CasLt, CwMethod::GatekeeperSkip, CwMethod::Lock] {
            let r = connected_components(&g, m, &pool);
            verify_cc(&g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn iteration_count_is_logarithmic_on_paths() {
        let pool = ThreadPool::new(2);
        let g = graph(256, &GraphGen::path(256));
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        assert!(r.converged);
        assert!(
            r.iterations <= 20,
            "path of 256 took {} iterations",
            r.iterations
        );
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn hook_edges_recorded_for_merged_components() {
        let pool = ThreadPool::new(2);
        let g = graph(4, &GraphGen::path(4));
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        // One component; at least one root must have been hooked.
        assert!(r.hook_edge.iter().any(|&e| e != NO_HOOK));
        verify_cc(&g, &r).unwrap();
    }

    #[test]
    fn worklist_matches_reference_on_structured_graphs() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(1, &[]),
            graph(5, &[]),
            graph(5, &GraphGen::path(5)),
            graph(8, &GraphGen::star(8)),
            graph(12, &GraphGen::disjoint_cliques(3, 4)),
            graph(9, &GraphGen::grid(3, 3)),
        ];
        for g in &cases {
            for m in single_winner_methods() {
                let r = connected_components_worklist(g, m, &pool);
                verify_cc(g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
    }

    #[test]
    fn worklist_agrees_with_dense_labels_on_random_graphs() {
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let edges = GraphGen::new(seed).gnm(150, 350);
            let g = graph(150, &edges);
            let dense = connected_components(&g, CwMethod::CasLt, &pool);
            let sparse = connected_components_worklist(&g, CwMethod::CasLt, &pool);
            assert_eq!(sparse.labels, dense.labels, "seed {seed}");
            verify_cc(&g, &sparse).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn singleton_components_never_hook() {
        let pool = ThreadPool::new(2);
        let g = graph(5, &[]);
        let r = connected_components(&g, CwMethod::CasLt, &pool);
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
        assert!(r.hook_edge.iter().all(|&e| e == NO_HOOK));
        assert_eq!(r.iterations, 1);
    }
}
