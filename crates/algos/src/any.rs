//! One-step CRCW kernels: O(1) logical OR (common writes) and first-true
//! (priority writes).
//!
//! Logical OR is the textbook separation between CRCW and the exclusive
//! models — one common-CW step versus Ω(log n) reduction depth — and a
//! minimal end-to-end exercise of every arbitration scheme on a *single*
//! contended cell. First-true demonstrates the paper's §2 hierarchy in the
//! other direction: a *priority* write (strongest rule) built from
//! [`pram_core::PriorityCell`]'s offer/commit protocol, with the pool
//! barrier as the phase separator.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use pram_core::{
    Arbiter, CasLtCell, GatekeeperCell, GatekeeperSkipCell, LockCell, NaiveCell, PriorityCell,
    Round,
};
use pram_exec::{Schedule, ThreadPool};

use crate::method::CwMethod;

/// O(1)-depth logical OR of `bits` under the given concurrent-write method:
/// every set bit's processor concurrently writes `1` to one shared cell (a
/// common write — all writers agree).
///
/// ```
/// use pram_algos::{logical_or, CwMethod};
/// use pram_exec::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// assert!(logical_or(&[false, true, false], CwMethod::CasLt, &pool));
/// assert!(!logical_or(&[false; 64], CwMethod::Naive, &pool));
/// ```
pub fn logical_or(bits: &[bool], method: CwMethod, pool: &ThreadPool) -> bool {
    fn run<A: Arbiter>(bits: &[bool], cell: &A, pool: &ThreadPool) -> bool {
        let result = AtomicU8::new(0);
        pool.run(|ctx| {
            ctx.for_each(0..bits.len(), Schedule::default(), |i| {
                if bits[i] && cell.try_claim(Round::FIRST) {
                    result.store(1, Ordering::Relaxed);
                }
            });
        });
        result.into_inner() != 0
    }
    match method {
        CwMethod::Naive => run(bits, &NaiveCell, pool),
        CwMethod::Gatekeeper => run(bits, &GatekeeperCell::new(), pool),
        CwMethod::GatekeeperSkip => run(bits, &GatekeeperSkipCell::new(), pool),
        // One round on one cell: nothing for the adaptive policy to
        // observe, so it is its starting delegate (CAS-LT) here.
        CwMethod::CasLt | CwMethod::CasLtPadded | CwMethod::Adaptive => {
            run(bits, &CasLtCell::new(), pool)
        }
        CwMethod::Lock => run(bits, &LockCell::new(), pool),
    }
}

/// Index of the first `true` in `bits`, by a priority concurrent write:
/// every set bit offers its index (smaller = higher priority) in one step;
/// after the barrier the unique winner publishes.
///
/// Returns `None` if no bit is set.
pub fn first_true(bits: &[bool], pool: &ThreadPool) -> Option<usize> {
    let cell = PriorityCell::new();
    let round = Round::FIRST;
    let winner = AtomicU32::new(u32::MAX);
    assert!(
        bits.len() < u32::MAX as usize,
        "index space exceeds u32 priorities"
    );
    pool.run(|ctx| {
        // Offer phase: a priority write is issued by every set bit.
        ctx.for_each(0..bits.len(), Schedule::default(), |i| {
            if bits[i] {
                cell.offer(round, i as u32);
            }
        });
        // for_each's implicit barrier separates offer from commit.
        ctx.for_each(0..bits.len(), Schedule::default(), |i| {
            if bits[i] && cell.is_winner(round, i as u32) {
                // Unique winner: exclusive write.
                winner.store(i as u32, Ordering::Relaxed);
            }
        });
    });
    match winner.into_inner() {
        u32::MAX => None,
        w => Some(w as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_all_methods_all_patterns() {
        let pool = ThreadPool::new(4);
        let patterns: Vec<Vec<bool>> = vec![
            vec![],
            vec![false; 100],
            vec![true; 100],
            (0..100).map(|i| i == 99).collect(),
            (0..100).map(|i| i % 7 == 0).collect(),
        ];
        for bits in &patterns {
            let expect = bits.iter().any(|&b| b);
            for m in CwMethod::ALL {
                assert_eq!(logical_or(bits, m, &pool), expect, "{m} on {bits:?}");
            }
        }
    }

    #[test]
    fn first_true_finds_global_minimum_index() {
        let pool = ThreadPool::new(4);
        let mut bits = vec![false; 500];
        bits[137] = true;
        bits[400] = true;
        bits[138] = true;
        assert_eq!(first_true(&bits, &pool), Some(137));
    }

    #[test]
    fn first_true_none_when_empty() {
        let pool = ThreadPool::new(2);
        assert_eq!(first_true(&[], &pool), None);
        assert_eq!(first_true(&[false; 64], &pool), None);
    }

    #[test]
    fn first_true_single_bit_positions() {
        let pool = ThreadPool::new(3);
        for pos in [0usize, 1, 63, 64, 99] {
            let mut bits = vec![false; 100];
            bits[pos] = true;
            assert_eq!(first_true(&bits, &pool), Some(pos));
        }
    }
}
