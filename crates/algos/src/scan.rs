//! Parallel prefix sum (Blelloch scan) — the primitive behind the
//! gatekeeper method's ancestry.
//!
//! The prefix-sum concurrent-write method the paper compares against
//! descends from XMT's *hardware* prefix-sum unit (Vishkin et al. 2008):
//! on that architecture, `k` threads incrementing a gatekeeper is a
//! constant-time parallel prefix sum, and electing the writer that
//! observed 0 is free. On a multicore there is no such unit — the
//! `fetch_add` loop serializes — which is precisely the §6 cost the paper
//! attacks. This module provides the *algorithmic* prefix sum a multicore
//! can offer instead: the classic work-efficient up-sweep/down-sweep scan
//! (EREW, work O(n), depth O(log n)), rounding out the workspace's
//! exclusive-access kernel set and giving the bench suite a second
//! non-arbitrated baseline workload.

use std::sync::atomic::{AtomicU64, Ordering};

use pram_exec::{Schedule, ThreadPool};

/// Exclusive prefix sum (wrapping): `out[i] = sum(values[..i]) mod 2⁶⁴`.
///
/// Work O(n), depth O(log n); all accesses are exclusive (each tree node
/// is touched by one processor per level), so no concurrent-write
/// arbitration is involved — by design, as the module docs explain.
///
/// ```
/// use pram_algos::scan::exclusive_scan;
/// use pram_exec::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// assert_eq!(exclusive_scan(&[3, 1, 7, 0, 4], &pool), vec![0, 3, 4, 11, 11]);
/// ```
pub fn exclusive_scan(values: &[u64], pool: &ThreadPool) -> Vec<u64> {
    let n = values.len();
    if n == 0 {
        return vec![];
    }
    // Work on the next power of two (padded with zeros).
    let size = n.next_power_of_two();
    let tree: Vec<AtomicU64> = (0..size)
        .map(|i| AtomicU64::new(values.get(i).copied().unwrap_or(0)))
        .collect();

    pool.run(|ctx| {
        // Up-sweep: tree[k] accumulates the sum of its block.
        let mut stride = 1;
        while stride < size {
            let pairs = size / (2 * stride);
            ctx.for_each(0..pairs, Schedule::default(), |p| {
                let right = (2 * p + 2) * stride - 1;
                let left = (2 * p + 1) * stride - 1;
                let sum = tree[left]
                    .load(Ordering::Relaxed)
                    .wrapping_add(tree[right].load(Ordering::Relaxed));
                tree[right].store(sum, Ordering::Relaxed);
            });
            stride *= 2;
        }
        // Clear the root, then down-sweep.
        ctx.master(|| tree[size - 1].store(0, Ordering::Relaxed));
        ctx.barrier();
        let mut stride = size / 2;
        while stride >= 1 {
            let pairs = size / (2 * stride);
            ctx.for_each(0..pairs, Schedule::default(), |p| {
                let right = (2 * p + 2) * stride - 1;
                let left = (2 * p + 1) * stride - 1;
                let l = tree[left].load(Ordering::Relaxed);
                let r = tree[right].load(Ordering::Relaxed);
                tree[left].store(r, Ordering::Relaxed);
                tree[right].store(r.wrapping_add(l), Ordering::Relaxed);
            });
            stride /= 2;
        }
    });

    tree.into_iter()
        .take(n)
        .map(AtomicU64::into_inner)
        .collect()
}

/// Inclusive prefix sum: `out[i] = sum(values[..=i]) mod 2⁶⁴`.
pub fn inclusive_scan(values: &[u64], pool: &ThreadPool) -> Vec<u64> {
    let mut out = exclusive_scan(values, pool);
    for (o, v) in out.iter_mut().zip(values) {
        *o = o.wrapping_add(*v);
    }
    out
}

/// Serial reference.
pub fn exclusive_scan_serial(values: &[u64]) -> Vec<u64> {
    let mut acc = 0u64;
    values
        .iter()
        .map(|&v| {
            let cur = acc;
            acc = acc.wrapping_add(v);
            cur
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_on_varied_sizes() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 3, 4, 7, 8, 9, 63, 64, 65, 1000] {
            let values: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 29).collect();
            assert_eq!(
                exclusive_scan(&values, &pool),
                exclusive_scan_serial(&values),
                "n = {n}"
            );
        }
    }

    #[test]
    fn inclusive_is_exclusive_plus_self() {
        let pool = ThreadPool::new(3);
        let values = vec![5u64, 0, 2, 9, 1];
        assert_eq!(inclusive_scan(&values, &pool), vec![5, 5, 7, 16, 17]);
    }

    #[test]
    fn wrapping_behaviour_is_defined() {
        let pool = ThreadPool::new(2);
        let values = vec![u64::MAX, 2, u64::MAX];
        assert_eq!(
            exclusive_scan(&values, &pool),
            exclusive_scan_serial(&values)
        );
    }

    #[test]
    fn single_thread_pool() {
        let pool = ThreadPool::new(1);
        let values: Vec<u64> = (0..100).collect();
        assert_eq!(
            exclusive_scan(&values, &pool),
            exclusive_scan_serial(&values)
        );
    }

    #[test]
    fn gatekeeper_election_as_a_scan() {
        // The XMT view: k competitors each contribute 1; the winner is the
        // one whose exclusive prefix is 0 — exactly `canConWriteAtomic`'s
        // "observed 0" condition, computed without any serialized RMW.
        let pool = ThreadPool::new(4);
        let contributions = vec![1u64; 9];
        let prefix = exclusive_scan(&contributions, &pool);
        let winners: Vec<usize> = prefix
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(winners, vec![0]);
    }
}
