//! The concurrent-write method axis every kernel is parameterized over.

use std::fmt;
use std::str::FromStr;

use pram_exec::{MethodKind, ThreadPool};

/// Which concurrent-write implementation a kernel uses — the independent
/// variable of every figure in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CwMethod {
    /// Issue every write, let the memory system serialize (Rodinia's
    /// practice). Sound only for single-word common writes; kernels that
    /// perform multi-word writes produce *internally inconsistent* results
    /// under this method (which the workspace's torn-write tests
    /// demonstrate on purpose).
    Naive,
    /// Per-target atomic fetch-and-increment gatekeeper (the prefix-sum
    /// method of Vishkin et al. 2008); requires a re-zeroing pass before
    /// every round.
    Gatekeeper,
    /// Gatekeeper with the "skip the atomic once nonzero" mitigation the
    /// paper mentions in §5; still requires the re-zeroing pass.
    GatekeeperSkip,
    /// The paper's contribution: CAS-if-Less-Than round claims, wait-free,
    /// reset-free.
    CasLt,
    /// CAS-LT with one cache line per claim word — the false-sharing
    /// ablation.
    CasLtPadded,
    /// Claims guarded by a per-target mutex — the critical-section
    /// baseline the paper calls "trivial but bad".
    Lock,
    /// Contention-adaptive delegation ([`pram_core::AdaptiveArbiter`]):
    /// starts on CAS-LT and re-chooses between the single-winner
    /// delegates at epoch boundaries from round telemetry. Adapts only on
    /// pools with [`pram_exec::PoolConfig::telemetry`] enabled (the
    /// policy needs counters for evidence); elsewhere it behaves like
    /// CAS-LT plus one predicted branch per claim.
    Adaptive,
}

impl CwMethod {
    /// All methods, in presentation order.
    pub const ALL: [CwMethod; 7] = [
        CwMethod::Naive,
        CwMethod::Gatekeeper,
        CwMethod::GatekeeperSkip,
        CwMethod::CasLt,
        CwMethod::CasLtPadded,
        CwMethod::Lock,
        CwMethod::Adaptive,
    ];

    /// The static methods (everything except [`CwMethod::Adaptive`],
    /// whose delegate can change between rounds).
    pub const STATIC: [CwMethod; 6] = [
        CwMethod::Naive,
        CwMethod::Gatekeeper,
        CwMethod::GatekeeperSkip,
        CwMethod::CasLt,
        CwMethod::CasLtPadded,
        CwMethod::Lock,
    ];

    /// The three methods the paper's figures compare (naive, prefix-sum,
    /// CAS-LT).
    pub const PAPER: [CwMethod; 3] = [CwMethod::Naive, CwMethod::Gatekeeper, CwMethod::CasLt];

    /// Whether this method *statically* needs the O(n) re-zeroing pass
    /// between rounds (the paper's Figure 3(b) lines 34–35). `false` for
    /// [`CwMethod::Adaptive`], whose need varies with the active delegate
    /// — kernels consult `SliceArbiter::rearms_on_new_round` per round,
    /// which answers dynamically.
    pub fn needs_reset_pass(self) -> bool {
        matches!(self, CwMethod::Gatekeeper | CwMethod::GatekeeperSkip)
    }

    /// Whether the method elects a unique winner (everything except
    /// [`CwMethod::Naive`]). Kernels whose writes span several words are
    /// only *consistent* under single-winner methods.
    /// [`CwMethod::Adaptive`] qualifies: its online policy only ever
    /// chooses between single-winner delegates (naive is reachable solely
    /// through an explicit [`pram_core::WriteProfile`] pin, which this
    /// method-level dispatch never sets).
    pub fn single_winner(self) -> bool {
        !matches!(self, CwMethod::Naive)
    }

    /// Short stable name (also accepted by [`CwMethod::from_str`]).
    pub fn name(self) -> &'static str {
        match self {
            CwMethod::Naive => "naive",
            CwMethod::Gatekeeper => "gatekeeper",
            CwMethod::GatekeeperSkip => "gatekeeper-skip",
            CwMethod::CasLt => "caslt",
            CwMethod::CasLtPadded => "caslt-padded",
            CwMethod::Lock => "lock",
            CwMethod::Adaptive => "adaptive",
        }
    }

    /// The method `pool` was configured to prefer
    /// ([`pram_exec::PoolConfig::method`]), so one pool-level setting
    /// selects arbitration for every kernel launched on it:
    ///
    /// ```
    /// use pram_algos::{bfs, CwMethod};
    /// use pram_exec::{MethodKind, PoolConfig, ThreadPool};
    /// use pram_graph::{CsrGraph, GraphGen};
    ///
    /// let pool = ThreadPool::with_config(
    ///     PoolConfig::new(2).telemetry(true).method(MethodKind::Adaptive),
    /// );
    /// let g = CsrGraph::from_edges(5, &GraphGen::path(5), true);
    /// let r = bfs(&g, 0, CwMethod::for_pool(&pool), &pool);
    /// assert_eq!(r.level, vec![0, 1, 2, 3, 4]);
    /// ```
    pub fn for_pool(pool: &ThreadPool) -> CwMethod {
        pool.method_kind().into()
    }
}

impl From<MethodKind> for CwMethod {
    fn from(kind: MethodKind) -> CwMethod {
        match kind {
            MethodKind::Naive => CwMethod::Naive,
            MethodKind::Gatekeeper => CwMethod::Gatekeeper,
            MethodKind::GatekeeperSkip => CwMethod::GatekeeperSkip,
            MethodKind::CasLt => CwMethod::CasLt,
            MethodKind::CasLtPadded => CwMethod::CasLtPadded,
            MethodKind::Lock => CwMethod::Lock,
            MethodKind::Adaptive => CwMethod::Adaptive,
        }
    }
}

impl From<CwMethod> for MethodKind {
    fn from(method: CwMethod) -> MethodKind {
        match method {
            CwMethod::Naive => MethodKind::Naive,
            CwMethod::Gatekeeper => MethodKind::Gatekeeper,
            CwMethod::GatekeeperSkip => MethodKind::GatekeeperSkip,
            CwMethod::CasLt => MethodKind::CasLt,
            CwMethod::CasLtPadded => MethodKind::CasLtPadded,
            CwMethod::Lock => MethodKind::Lock,
            CwMethod::Adaptive => MethodKind::Adaptive,
        }
    }
}

impl fmt::Display for CwMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown method names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMethod(pub String);

impl fmt::Display for UnknownMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown concurrent-write method '{}'; expected one of: naive, gatekeeper, gatekeeper-skip, caslt, caslt-padded, lock, adaptive",
            self.0
        )
    }
}

impl std::error::Error for UnknownMethod {}

impl FromStr for CwMethod {
    type Err = UnknownMethod;
    fn from_str(s: &str) -> Result<CwMethod, UnknownMethod> {
        CwMethod::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| UnknownMethod(s.to_string()))
    }
}

/// Instantiate the arbiter for `method` over `len` targets and run `body`
/// with it, monomorphized per arbiter type (no virtual dispatch on the
/// claim hot path).
macro_rules! dispatch_method {
    ($method:expr, $len:expr, |$arb:ident| $body:expr) => {{
        match $method {
            $crate::method::CwMethod::Naive => {
                let $arb = ::pram_core::NaiveArbiter::new($len);
                $body
            }
            $crate::method::CwMethod::Gatekeeper => {
                let $arb = ::pram_core::GatekeeperArray::new($len);
                $body
            }
            $crate::method::CwMethod::GatekeeperSkip => {
                let $arb = ::pram_core::GatekeeperSkipArray::new($len);
                $body
            }
            $crate::method::CwMethod::CasLt => {
                let $arb = ::pram_core::CasLtArray::new($len);
                $body
            }
            $crate::method::CwMethod::CasLtPadded => {
                let $arb = ::pram_core::PaddedCasLtArray::new($len);
                $body
            }
            $crate::method::CwMethod::Lock => {
                let $arb = ::pram_core::LockArray::new($len);
                $body
            }
            $crate::method::CwMethod::Adaptive => {
                let $arb = ::pram_core::AdaptiveArbiter::new($len);
                $body
            }
        }
    }};
}
pub(crate) use dispatch_method;

#[cfg(test)]
mod tests {
    use super::*;
    use pram_core::{Round, SliceArbiter};

    #[test]
    fn names_roundtrip() {
        for m in CwMethod::ALL {
            assert_eq!(m.name().parse::<CwMethod>().unwrap(), m);
            assert_eq!(m.to_string(), m.name());
        }
        assert!("bogus".parse::<CwMethod>().is_err());
        let err = "x".parse::<CwMethod>().unwrap_err();
        assert!(err.to_string().contains("unknown"));
    }

    #[test]
    fn reset_pass_only_for_gatekeepers() {
        assert!(CwMethod::Gatekeeper.needs_reset_pass());
        assert!(CwMethod::GatekeeperSkip.needs_reset_pass());
        assert!(!CwMethod::CasLt.needs_reset_pass());
        assert!(!CwMethod::Naive.needs_reset_pass());
        assert!(!CwMethod::Lock.needs_reset_pass());
    }

    #[test]
    fn single_winner_excludes_naive_only() {
        for m in CwMethod::ALL {
            assert_eq!(m.single_winner(), m != CwMethod::Naive);
        }
    }

    #[test]
    fn static_is_all_minus_adaptive() {
        assert_eq!(CwMethod::STATIC.len() + 1, CwMethod::ALL.len());
        for m in CwMethod::STATIC {
            assert_ne!(m, CwMethod::Adaptive);
            assert!(CwMethod::ALL.contains(&m));
        }
    }

    #[test]
    fn method_kind_roundtrips() {
        for m in CwMethod::ALL {
            let kind: MethodKind = m.into();
            assert_eq!(CwMethod::from(kind), m);
            assert_eq!(kind.name(), m.name());
        }
    }

    #[test]
    fn for_pool_reads_pool_config() {
        use pram_exec::PoolConfig;
        let pool = ThreadPool::with_config(PoolConfig::new(1).method(MethodKind::Gatekeeper));
        assert_eq!(CwMethod::for_pool(&pool), CwMethod::Gatekeeper);
        let default_pool = ThreadPool::new(1);
        assert_eq!(CwMethod::for_pool(&default_pool), CwMethod::CasLt);
    }

    #[test]
    fn dispatch_instantiates_each_method() {
        for m in CwMethod::ALL {
            let won = dispatch_method!(m, 3, |arb| {
                let w = arb.try_claim(1, Round::FIRST);
                assert_eq!(arb.len(), 3);
                w
            });
            assert!(won, "first claim must win under {m}");
        }
    }
}
