//! The constant-time maximum algorithm (paper Figure 4, evaluated in
//! Figures 5–6).
//!
//! All `n²` ordered pairs are compared in one PRAM step; the loser of each
//! comparison is marked not-max by a **common** concurrent write of
//! `false`. Exactly one flag survives (ties are broken toward the larger
//! index, per the paper's line 9 predicate), and a final scan extracts it.
//! Depth O(1), work O(n²) — deliberately inefficient, chosen by the paper
//! because it is an "extreme case of concurrency" where the entire runtime
//! is concurrent-write handling.
//!
//! The kernel is one `parallel for` over the flattened pair space with one
//! claim + one store in the body, so method-to-method runtime differences
//! are almost pure arbitration cost:
//!
//! * naive — one unconditional `Relaxed` store per losing comparison;
//! * gatekeeper — one atomic `fetch_add` per comparison **plus** the store;
//! * CAS-LT — one `Relaxed` load per comparison; the CAS and store execute
//!   at most once per distinct loser.

use std::sync::atomic::{AtomicU8, Ordering};

use pram_core::{Round, SliceArbiter};
use pram_exec::{Schedule, ThreadPool};

use crate::method::{dispatch_method, CwMethod};

/// Index of the maximum element (ties → larger index), computed by the
/// constant-time CRCW maximum under the given concurrent-write method.
///
/// # Panics
/// Panics if `values` is empty.
///
/// ```
/// use pram_algos::{max_index, CwMethod};
/// use pram_exec::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let values = vec![3, 1, 4, 1, 5, 9, 2, 6];
/// assert_eq!(max_index(&values, CwMethod::CasLt, &pool), 5);
/// ```
pub fn max_index(values: &[u64], method: CwMethod, pool: &ThreadPool) -> usize {
    dispatch_method!(method, values.len(), |arb| max_index_with_arbiter(
        values, &arb, pool
    ))
}

/// The kernel against an explicit arbiter — the hook benches use to
/// instrument arbitration (e.g. wrap in [`pram_core::CountingArbiter`]).
///
/// `arb` must span `values.len()` targets and be freshly armed.
pub fn max_index_with_arbiter<A: SliceArbiter>(
    values: &[u64],
    arb: &A,
    pool: &ThreadPool,
) -> usize {
    let n = values.len();
    assert!(n > 0, "maximum of an empty list is undefined");
    assert_eq!(arb.len(), n, "arbiter must span one cell per element");
    let is_max: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(1)).collect();
    // A single concurrent-write round: the whole algorithm is one step.
    let round = Round::FIRST;

    pool.run(|ctx| {
        // The paper's `#pragma omp for collapse(2)` pair loop. Static
        // blocked scheduling matches OpenMP's default for this regular
        // loop.
        ctx.for_each_2d(n, n, Schedule::default(), |i, j| {
            if i == j {
                return;
            }
            // Paper line 9: the smaller value loses; ties lose on the
            // smaller index.
            let loser = if values[i] < values[j] || (values[i] == values[j] && i < j) {
                i
            } else {
                j
            };
            // The common concurrent write `isMax[loser] = false`, guarded
            // by the method's claim.
            if arb.try_claim(loser, round) {
                is_max[loser].store(0, Ordering::Relaxed);
            }
        });
    });

    // Serial extraction (excluded from the paper's timings, and from the
    // benches'): exactly one flag survived.
    let winner = is_max
        .iter()
        .position(|f| f.load(Ordering::Relaxed) == 1)
        .expect("exactly one maximum flag must survive");
    debug_assert!(
        is_max[winner + 1..]
            .iter()
            .all(|f| f.load(Ordering::Relaxed) == 0),
        "multiple survivors: tie-break broken"
    );
    winner
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::serial::max_index_paper_tiebreak;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn all_methods_agree_with_serial_reference() {
        let pool = pool();
        let cases: Vec<Vec<u64>> = vec![
            vec![1],
            vec![2, 1],
            vec![1, 2],
            vec![5, 5, 5],
            vec![9, 1, 9],
            (0..200).map(|i| (i * 31) % 97).collect(),
            vec![u64::MAX, 0, u64::MAX],
        ];
        for values in &cases {
            let expect = max_index_paper_tiebreak(values);
            for m in CwMethod::ALL {
                assert_eq!(
                    max_index(values, m, &pool),
                    expect,
                    "method {m} on {values:?}"
                );
            }
        }
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let values: Vec<u64> = (0..50).map(|i| (i * 7) % 13).collect();
        for m in CwMethod::ALL {
            assert_eq!(
                max_index(&values, m, &pool),
                max_index_paper_tiebreak(&values)
            );
        }
    }

    #[test]
    fn oversubscribed_pool_works() {
        let pool = ThreadPool::new(8);
        let values: Vec<u64> = (0..128).rev().collect();
        assert_eq!(max_index(&values, CwMethod::CasLt, &pool), 0);
    }

    #[test]
    fn instrumented_arbiter_counts_claims() {
        let pool = pool();
        let n = 64usize;
        let values: Vec<u64> = (0..n as u64).collect();
        let arb = pram_core::CountingArbiter::new(pram_core::CasLtArray::new(n));
        let idx = max_index_with_arbiter(&values, &arb, &pool);
        assert_eq!(idx, n - 1);
        let snap = arb.stats().snapshot();
        // Every ordered pair (minus the diagonal) attempts one claim...
        assert_eq!(snap.attempts, (n * n - n) as u64);
        // ...but only the n-1 losers are ever won.
        assert_eq!(snap.wins, (n - 1) as u64);
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn empty_input_rejected() {
        let pool = ThreadPool::new(1);
        let _ = max_index(&[], CwMethod::CasLt, &pool);
    }
}
