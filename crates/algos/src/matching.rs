//! Maximal matching by arbitrary concurrent writes — an extension kernel
//! in the lineage of the paper's citation \[23\] (randomized parallel
//! maximal matching).
//!
//! Each round, every edge whose endpoints are both free tries to **claim
//! both endpoint cells** for the round (lower vertex first); the edge that
//! wins both commits the match — a two-cell, two-array arbitrary
//! concurrent write. A half-claimed vertex (its edge won one endpoint but
//! lost the other) is simply stuck *for this round*: advancing the round
//! re-arms it at zero cost, which is exactly the CAS-LT property the paper
//! contributes — a lock-based design would need rollback, and the
//! gatekeeper design pays a full reset pass per round.
//!
//! **Progress:** every round in which a free edge exists commits at least
//! one match. (Suppose not: then every edge that won its lower endpoint
//! lost its higher one to an edge that won it as *its* lower endpoint —
//! following those losses visits strictly increasing vertex ids, so the
//! chain ends at an edge whose higher claim cannot have been lost. ∎)
//! Hence at most ⌊n/2⌋ + 1 rounds.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use pram_core::SliceArbiter;
use pram_exec::{Schedule, ThreadPool};
use pram_graph::CsrGraph;

use crate::method::{dispatch_method, CwMethod};

/// Sentinel: vertex not matched.
pub const UNMATCHED: u32 = u32::MAX;

/// Output of [`maximal_matching`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingResult {
    /// `partner[v]` = matched neighbor, or [`UNMATCHED`].
    pub partner: Vec<u32>,
    /// Rounds executed.
    pub rounds: u32,
    /// Matched pairs.
    pub pairs: usize,
}

/// Compute a maximal matching under the given concurrent-write method.
///
/// Requires a single-winner method: the two-cell claim protocol is unsound
/// under [`CwMethod::Naive`] (two "winners" of one vertex commit
/// conflicting partners), so naive is rejected.
///
/// # Panics
/// Panics if `method == CwMethod::Naive`.
pub fn maximal_matching(g: &CsrGraph, method: CwMethod, pool: &ThreadPool) -> MatchingResult {
    assert!(
        method.single_winner(),
        "maximal matching performs multi-cell arbitrary writes; the naive method is unsound here"
    );
    dispatch_method!(method, g.num_vertices(), |arb| matching_with_arbiter(
        g, &arb, pool
    ))
}

/// The kernel against an explicit arbiter (one cell per vertex).
pub fn matching_with_arbiter<A: SliceArbiter>(
    g: &CsrGraph,
    arb: &A,
    pool: &ThreadPool,
) -> MatchingResult {
    let n = g.num_vertices();
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");
    // Each undirected edge once: keep the (u < v) direction.
    let edges: Vec<(u32, u32)> = g.directed_edges().filter(|&(u, v)| u < v).collect();
    let m = edges.len();

    let partner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let rounds = AtomicU32::new(0);
    let converged = AtomicU8::new(0);

    let max_rounds = (n as u32) / 2 + 2;
    pool.run(|ctx| {
        let c = ctx.converge_rounds(max_rounds.max(1), |round, flag| {
            ctx.for_each_nowait(0..m, Schedule::default(), |e| {
                let (u, v) = edges[e];
                if partner[u as usize].load(Ordering::Relaxed) != UNMATCHED
                    || partner[v as usize].load(Ordering::Relaxed) != UNMATCHED
                {
                    return;
                }
                // Two-cell claim, lower id first. Losing the second claim
                // wastes the first for this round only — the round advance
                // re-arms it for free.
                if pram_core::try_claim_all(arb, &[u as usize, v as usize], round) {
                    partner[u as usize].store(v, Ordering::Relaxed);
                    partner[v as usize].store(u, Ordering::Relaxed);
                    flag.set();
                }
            });
            ctx.barrier();
            if !arb.rearms_on_new_round() {
                ctx.for_each(0..n, Schedule::default(), |i| arb.reset_range(i..i + 1));
            }
        });
        rounds.store(c.rounds, Ordering::Relaxed);
        converged.store(u8::from(c.converged), Ordering::Relaxed);
    });
    debug_assert!(converged.into_inner() != 0, "progress bound violated");

    let partner: Vec<u32> = partner.into_iter().map(AtomicU32::into_inner).collect();
    let pairs = partner.iter().filter(|&&p| p != UNMATCHED).count() / 2;
    MatchingResult {
        partner,
        rounds: rounds.into_inner(),
        pairs,
    }
}

/// Verify validity (partners are symmetric, adjacent, exclusive) and
/// maximality (no edge has two free endpoints).
pub fn verify_matching(g: &CsrGraph, r: &MatchingResult) -> Result<(), String> {
    let n = g.num_vertices();
    if r.partner.len() != n {
        return Err("partner array length mismatch".into());
    }
    for v in 0..n {
        let p = r.partner[v];
        if p == UNMATCHED {
            continue;
        }
        if p as usize >= n {
            return Err(format!("partner[{v}] = {p} out of range"));
        }
        if r.partner[p as usize] != v as u32 {
            return Err(format!(
                "asymmetric match: partner[{v}] = {p} but partner[{p}] = {}",
                r.partner[p as usize]
            ));
        }
        if !g.neighbors(v as u32).contains(&p) {
            return Err(format!("matched pair ({v}, {p}) is not an edge"));
        }
    }
    for (u, v) in g.directed_edges() {
        if r.partner[u as usize] == UNMATCHED && r.partner[v as usize] == UNMATCHED {
            return Err(format!(
                "not maximal: edge ({u}, {v}) has two free endpoints"
            ));
        }
    }
    let matched = r.partner.iter().filter(|&&p| p != UNMATCHED).count();
    if matched / 2 != r.pairs {
        return Err(format!(
            "pair count {} disagrees with array ({matched} matched)",
            r.pairs
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::GraphGen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges(n, edges, true)
    }

    fn single_winner() -> impl Iterator<Item = CwMethod> {
        CwMethod::ALL.into_iter().filter(|m| m.single_winner())
    }

    #[test]
    fn structured_graphs_all_methods() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(2, &[(0, 1)]),
            graph(6, &GraphGen::path(6)),
            graph(7, &GraphGen::path(7)),
            graph(8, &GraphGen::star(8)),
            graph(6, &GraphGen::cycle(6)),
            graph(5, &GraphGen::complete(5)),
            graph(12, &GraphGen::grid(3, 4)),
            graph(4, &[]),
        ];
        for g in &cases {
            for m in single_winner() {
                let r = maximal_matching(g, m, &pool);
                verify_matching(g, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
    }

    #[test]
    fn star_matches_exactly_one_pair() {
        let pool = ThreadPool::new(4);
        let g = graph(10, &GraphGen::star(10));
        let r = maximal_matching(&g, CwMethod::CasLt, &pool);
        assert_eq!(r.pairs, 1, "a star's maximal matching is a single edge");
        verify_matching(&g, &r).unwrap();
    }

    #[test]
    fn even_path_matches_perfectly_or_maximally() {
        let pool = ThreadPool::new(2);
        let g = graph(8, &GraphGen::path(8));
        let r = maximal_matching(&g, CwMethod::CasLt, &pool);
        verify_matching(&g, &r).unwrap();
        // A maximal matching on P8 has 2..=4 pairs; never fewer than
        // ceil(maximum/2) = 2.
        assert!((2..=4).contains(&r.pairs), "pairs = {}", r.pairs);
    }

    #[test]
    fn random_graphs_and_pools() {
        for seed in 0..4u64 {
            let edges = GraphGen::new(seed).gnm(100, 250);
            let g = graph(100, &edges);
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                for m in [CwMethod::CasLt, CwMethod::Gatekeeper, CwMethod::Lock] {
                    let r = maximal_matching(&g, m, &pool);
                    verify_matching(&g, &r)
                        .unwrap_or_else(|e| panic!("seed {seed} {m} t{threads}: {e}"));
                }
            }
        }
    }

    #[test]
    fn rounds_respect_progress_bound() {
        let pool = ThreadPool::new(4);
        let g = graph(64, &GraphGen::complete(64));
        let r = maximal_matching(&g, CwMethod::CasLt, &pool);
        verify_matching(&g, &r).unwrap();
        assert!(r.rounds <= 64 / 2 + 2);
        assert_eq!(r.pairs, 32, "complete K64 matches perfectly");
    }

    #[test]
    #[should_panic(expected = "unsound")]
    fn naive_is_rejected() {
        let pool = ThreadPool::new(1);
        let g = graph(2, &[(0, 1)]);
        let _ = maximal_matching(&g, CwMethod::Naive, &pool);
    }
}
