//! Rodinia-style level-synchronous BFS (paper Figure 3, evaluated in
//! Figures 7–9).
//!
//! Each level-`L` iteration scans all vertices, expands the frontier
//! (`level[v] == L`), and tries to *claim* every unvisited neighbor `u`.
//! The claim guards a four-word write — `parent[u]`, `sel_edge[u]`,
//! `visited[u]`, `level[u]` — which is exactly why the method matters:
//!
//! * under **naive** writes (Rodinia's original), several expanders write
//!   `u` concurrently; `level`/`visited` are *common* writes (all agree) so
//!   distances stay correct, but `parent[u]` and `sel_edge[u]` are
//!   *different* values from different writers and can commit as a mixture
//!   that names an edge `parent[u]` does not own (the paper's §4 torn-write
//!   hazard, demonstrated in this workspace's `torn_writes` test);
//! * under any single-winner method the four words are written by one
//!   thread and are mutually consistent.
//!
//! The per-level round ID is the level itself — the paper's "round could be
//! substituted by the loop iteration" remark — supplied here by
//! [`pram_exec::WorkerCtx::converge_rounds`].

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

use pram_core::SliceArbiter;
use pram_exec::{Schedule, ThreadPool};
use pram_graph::CsrGraph;

use crate::method::{dispatch_method, CwMethod};

/// Sentinel level for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;
/// Sentinel parent for the source and unreachable vertices.
pub const NO_PARENT: u32 = u32::MAX;
/// Sentinel edge index for the source and unreachable vertices.
pub const NO_EDGE: usize = usize::MAX;

/// Output of [`bfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop count from the source ([`UNREACHED`] if unreachable).
    pub level: Vec<u32>,
    /// BFS-tree parent ([`NO_PARENT`] for source/unreachable).
    pub parent: Vec<u32>,
    /// Index into the CSR target array of the tree edge that discovered
    /// each vertex (the paper's `Sel_edge`; [`NO_EDGE`] for
    /// source/unreachable).
    pub sel_edge: Vec<usize>,
    /// Level iterations executed (eccentricity of the source + 1).
    pub rounds: u32,
}

/// Level-synchronous BFS from `source` under the given concurrent-write
/// method.
///
/// ```
/// use pram_algos::{bfs, CwMethod};
/// use pram_exec::ThreadPool;
/// use pram_graph::{CsrGraph, GraphGen};
///
/// let g = CsrGraph::from_edges(5, &GraphGen::path(5), true);
/// let pool = ThreadPool::new(2);
/// let r = bfs(&g, 0, CwMethod::CasLt, &pool);
/// assert_eq!(r.level, vec![0, 1, 2, 3, 4]);
/// assert_eq!(r.parent[4], 3);
/// ```
pub fn bfs(g: &CsrGraph, source: u32, method: CwMethod, pool: &ThreadPool) -> BfsResult {
    dispatch_method!(method, g.num_vertices(), |arb| bfs_with_arbiter(
        g, source, &arb, pool
    ))
}

/// BFS against an explicit arbiter (one cell per vertex, freshly armed).
pub fn bfs_with_arbiter<A: SliceArbiter>(
    g: &CsrGraph,
    source: u32,
    arb: &A,
    pool: &ThreadPool,
) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");

    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    let visited: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    let sel_edge: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(NO_EDGE)).collect();
    level[source as usize].store(0, Ordering::Relaxed);
    visited[source as usize].store(1, Ordering::Relaxed);

    let offsets = g.offsets();
    let targets = g.targets();
    // Eccentricity < n, plus the final no-change round.
    let max_rounds = n as u32 + 1;

    let rounds = AtomicU32::new(0);
    pool.run(|ctx| {
        let c = ctx.converge_rounds(max_rounds, |round, flag| {
            let l = round.get() - 1; // the level being expanded
            ctx.for_each_nowait(0..n, Schedule::default(), |v| {
                if level[v].load(Ordering::Relaxed) != l {
                    return;
                }
                #[allow(clippy::needless_range_loop)] // j is the edge id recorded in sel_edge
                for j in offsets[v]..offsets[v + 1] {
                    let u = targets[j] as usize;
                    if visited[u].load(Ordering::Relaxed) == 0 {
                        // The concurrent write: claim vertex u for this
                        // level, then perform the four-word update.
                        if arb.try_claim(u, round) {
                            parent[u].store(v as u32, Ordering::Relaxed);
                            sel_edge[u].store(j, Ordering::Relaxed);
                            visited[u].store(1, Ordering::Relaxed);
                            level[u].store(l + 1, Ordering::Relaxed);
                            flag.set(); // the paper's `done = false`
                        }
                    }
                }
            });
            if arb.rearms_on_new_round() {
                // CAS-LT / naive / lock: advancing the round re-arms every
                // cell; just meet at the barrier converge_rounds requires.
                ctx.barrier();
            } else {
                // Gatekeeper methods: the paper's Figure 3(b) lines 34–35 —
                // a full parallel re-zeroing pass before the next round.
                ctx.barrier();
                ctx.for_each(0..n, Schedule::default(), |i| {
                    arb.reset_range(i..i + 1);
                });
            }
        });
        // Every member observed the same convergence result.
        rounds.store(c.rounds, Ordering::Relaxed);
    });

    BfsResult {
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        sel_edge: sel_edge.into_iter().map(AtomicUsize::into_inner).collect(),
        rounds: rounds.into_inner(),
    }
}

/// Check a [`BfsResult`]'s distances against the serial reference.
///
/// Holds for **every** method, including naive (levels are common writes).
pub fn verify_bfs_levels(g: &CsrGraph, source: u32, r: &BfsResult) -> Result<(), String> {
    let expect = pram_graph::serial::bfs_levels(g, source);
    if r.level == expect {
        Ok(())
    } else {
        let v = (0..expect.len())
            .find(|&v| expect[v] != r.level[v])
            .unwrap();
        Err(format!(
            "level[{v}] = {} but serial BFS says {}",
            r.level[v], expect[v]
        ))
    }
}

/// Full structural verification: distances plus parent/sel_edge mutual
/// consistency.
///
/// Guaranteed only for single-winner methods
/// ([`CwMethod::single_winner`]); the naive method can fail the
/// parent/edge cross-check, which is the paper's argument against it.
pub fn verify_bfs_tree(g: &CsrGraph, source: u32, r: &BfsResult) -> Result<(), String> {
    verify_bfs_levels(g, source, r)?;
    let n = g.num_vertices();
    for v in 0..n {
        let (lv, p, e) = (r.level[v], r.parent[v], r.sel_edge[v]);
        if v as u32 == source {
            if p != NO_PARENT || e != NO_EDGE {
                return Err(format!("source has parent {p} / edge {e}"));
            }
            continue;
        }
        if lv == UNREACHED {
            if p != NO_PARENT || e != NO_EDGE {
                return Err(format!("unreachable {v} has parent {p} / edge {e}"));
            }
            continue;
        }
        if p == NO_PARENT || e == NO_EDGE {
            return Err(format!("reached {v} missing parent or edge"));
        }
        if r.level[p as usize] + 1 != lv {
            return Err(format!(
                "parent level mismatch at {v}: level[{p}] = {} vs level[{v}] = {lv}",
                r.level[p as usize]
            ));
        }
        // sel_edge must be an edge *owned by the parent* that targets v —
        // the cross-array consistency naive writes can tear.
        let (lo, hi) = (g.offsets()[p as usize], g.offsets()[p as usize + 1]);
        if !(lo..hi).contains(&e) {
            return Err(format!(
                "sel_edge[{v}] = {e} is not an edge of parent {p} (range {lo}..{hi})"
            ));
        }
        if g.targets()[e] as usize != v {
            return Err(format!(
                "sel_edge[{v}] = {e} targets {} instead of {v}",
                g.targets()[e]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::GraphGen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges(n, edges, true)
    }

    #[test]
    fn all_single_winner_methods_build_valid_trees() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(5, &GraphGen::path(5)),
            graph(7, &GraphGen::star(7)),
            graph(6, &GraphGen::cycle(6)),
            graph(12, &GraphGen::grid(3, 4)),
            graph(1, &[]),
            graph(4, &[(0, 1)]), // disconnected
        ];
        for g in &cases {
            for m in CwMethod::ALL.into_iter().filter(|m| m.single_winner()) {
                let r = bfs(g, 0, m, &pool);
                verify_bfs_tree(g, 0, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
    }

    #[test]
    fn naive_gets_levels_right() {
        let pool = ThreadPool::new(4);
        let mut gen = GraphGen::new(9);
        let edges = gen.gnm(200, 800);
        let g = graph(200, &edges);
        let r = bfs(&g, 0, CwMethod::Naive, &pool);
        verify_bfs_levels(&g, 0, &r).unwrap();
    }

    #[test]
    fn random_graphs_match_serial_levels_for_all_methods() {
        let pool = ThreadPool::new(4);
        for seed in 0..3 {
            let edges = GraphGen::new(seed).gnm(100, 300);
            let g = graph(100, &edges);
            for m in CwMethod::ALL {
                let r = bfs(&g, 5, m, &pool);
                verify_bfs_levels(&g, 5, &r).unwrap_or_else(|e| panic!("seed {seed} {m}: {e}"));
            }
        }
    }

    #[test]
    fn rounds_equal_eccentricity_plus_one() {
        let pool = ThreadPool::new(2);
        let g = graph(6, &GraphGen::path(6));
        let r = bfs(&g, 0, CwMethod::CasLt, &pool);
        // Levels 0..=4 expand something; the 6th round finds no change.
        assert_eq!(r.rounds, 6);
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let pool = ThreadPool::new(2);
        let g = graph(3, &[(1, 2)]);
        let r = bfs(&g, 0, CwMethod::CasLt, &pool);
        assert_eq!(r.level, vec![0, UNREACHED, UNREACHED]);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn sel_edge_points_to_discovering_edge() {
        let pool = ThreadPool::new(2);
        // Multigraph: duplicate edges mean several candidate sel_edges; any
        // one of them is valid, and verify checks the chosen one is real.
        let g = graph(3, &[(0, 1), (0, 1), (1, 2)]);
        let r = bfs(&g, 0, CwMethod::CasLt, &pool);
        verify_bfs_tree(&g, 0, &r).unwrap();
    }

    #[test]
    fn self_loops_are_harmless() {
        let pool = ThreadPool::new(2);
        let g = graph(3, &[(0, 0), (0, 1), (1, 2)]);
        let r = bfs(&g, 0, CwMethod::Gatekeeper, &pool);
        verify_bfs_tree(&g, 0, &r).unwrap();
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected() {
        let pool = ThreadPool::new(1);
        let g = graph(2, &[(0, 1)]);
        let _ = bfs(&g, 9, CwMethod::CasLt, &pool);
    }
}
