//! Breadth-first search under pluggable concurrent-write methods and
//! pluggable *frontier strategies*.
//!
//! The paper's BFS (Figure 3, evaluated in Figures 7–9) is the
//! Rodinia-style **dense scan**: each level-`L` iteration scans all `n`
//! vertices, expands the frontier (`level[v] == L`), and tries to *claim*
//! every unvisited neighbor `u`. The claim guards a four-word write —
//! `parent[u]`, `sel_edge[u]`, `visited[u]`, `level[u]` — which is exactly
//! why the method matters:
//!
//! * under **naive** writes (Rodinia's original), several expanders write
//!   `u` concurrently; `level`/`visited` are *common* writes (all agree) so
//!   distances stay correct, but `parent[u]` and `sel_edge[u]` are
//!   *different* values from different writers and can commit as a mixture
//!   that names an edge `parent[u]` does not own (the paper's §4 torn-write
//!   hazard, demonstrated in this workspace's `torn_writes` test);
//! * under any single-winner method the four words are written by one
//!   thread and are mutually consistent.
//!
//! This module adds two frontier-centric strategies on the same claim
//! substrate, selected by [`BfsStrategy`]:
//!
//! * [`BfsStrategy::TopDown`] — the frontier is an explicit sparse queue
//!   ([`pram_exec::FrontierBuffer`]); workers append discoveries to
//!   per-worker [`pram_exec::LocalBuffer`]s and the per-level work is
//!   `O(frontier edges)`, not `O(n + frontier edges)`.
//! * [`BfsStrategy::DirectionOptimizing`] — Beamer's push/pull switch: run
//!   top-down while the frontier is small; when its out-edge count exceeds
//!   `m / α` switch to a **bottom-up pull** over a dense
//!   [`pram_core::AtomicBitmap`] frontier (each unvisited vertex scans its
//!   in-edges and stops at the first frontier neighbor), and drop back to
//!   top-down when the frontier shrinks below `n / β`.
//!
//! In every strategy the winner-claim `arb.try_claim(target, round)`
//! remains the **single point of frontier insertion**, so all
//! concurrent-write methods dispatch unchanged and the four-word write
//! keeps its single-winner consistency guarantee. The bottom-up sweep
//! records `sel_edge` through [`pram_graph::ReverseCsr`]'s edge
//! provenance, so the discovered edge is still an index owned by the
//! parent — the same invariant [`verify_bfs_tree`] checks for every
//! strategy.
//!
//! The per-level round ID is the level itself — the paper's "round could be
//! substituted by the loop iteration" remark — supplied here by
//! [`pram_exec::WorkerCtx::converge_rounds`].

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

use pram_core::{AtomicBitmap, SliceArbiter};
use pram_exec::{
    FrontierBuffer, LocalBuffer, Schedule, ThreadPool, WorkerCtx, FRONTIER_GRAIN_EDGES,
};
use pram_graph::{CsrGraph, ReverseCsr};

use crate::method::{dispatch_method, CwMethod};

/// Sentinel level for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;
/// Sentinel parent for the source and unreachable vertices.
pub const NO_PARENT: u32 = u32::MAX;
/// Sentinel edge index for the source and unreachable vertices.
pub const NO_EDGE: usize = usize::MAX;

/// Direction-optimizing switch numerator (Beamer's α): switch push → pull
/// when the frontier's out-edge count exceeds `m / α`.
pub const DIRECTION_ALPHA: usize = 14;
/// Direction-optimizing switch denominator (Beamer's β): switch pull →
/// push when the frontier size drops below `n / β`.
pub const DIRECTION_BETA: usize = 24;

/// How BFS represents and expands its frontier. Orthogonal to the
/// concurrent-write method: every strategy funnels discovery through the
/// same `try_claim` arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BfsStrategy {
    /// The paper's Figure 3 kernel: scan all `n` vertices every level.
    DenseScan,
    /// Sparse frontier queue with per-worker buffers; work per level is
    /// proportional to the frontier's out-edges.
    TopDown,
    /// Beamer-style push/pull: top-down while the frontier is sparse,
    /// bottom-up over a dense bitmap when it is not
    /// ([`DIRECTION_ALPHA`] / [`DIRECTION_BETA`] thresholds).
    ///
    /// The bottom-up sweep scans *in*-edges, so on a directed graph the
    /// strategy is only equivalent to the others if the graph stores both
    /// directions (as every undirected [`CsrGraph`] here does).
    #[default]
    DirectionOptimizing,
}

impl BfsStrategy {
    /// All strategies, for tests and benches.
    pub const ALL: [BfsStrategy; 3] = [
        BfsStrategy::DenseScan,
        BfsStrategy::TopDown,
        BfsStrategy::DirectionOptimizing,
    ];
}

impl fmt::Display for BfsStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BfsStrategy::DenseScan => "dense-scan",
            BfsStrategy::TopDown => "top-down",
            BfsStrategy::DirectionOptimizing => "direction-optimizing",
        })
    }
}

/// Output of [`bfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop count from the source ([`UNREACHED`] if unreachable).
    pub level: Vec<u32>,
    /// BFS-tree parent ([`NO_PARENT`] for source/unreachable).
    pub parent: Vec<u32>,
    /// Index into the CSR target array of the tree edge that discovered
    /// each vertex (the paper's `Sel_edge`; [`NO_EDGE`] for
    /// source/unreachable).
    pub sel_edge: Vec<usize>,
    /// Level iterations executed (eccentricity of the source + 1).
    pub rounds: u32,
}

/// Level-synchronous BFS from `source` under the given concurrent-write
/// method, using the paper-faithful [`BfsStrategy::DenseScan`].
///
/// ```
/// use pram_algos::{bfs, CwMethod};
/// use pram_exec::ThreadPool;
/// use pram_graph::{CsrGraph, GraphGen};
///
/// let g = CsrGraph::from_edges(5, &GraphGen::path(5), true);
/// let pool = ThreadPool::new(2);
/// let r = bfs(&g, 0, CwMethod::CasLt, &pool);
/// assert_eq!(r.level, vec![0, 1, 2, 3, 4]);
/// assert_eq!(r.parent[4], 3);
/// ```
pub fn bfs(g: &CsrGraph, source: u32, method: CwMethod, pool: &ThreadPool) -> BfsResult {
    bfs_with_strategy(g, source, method, BfsStrategy::DenseScan, pool)
}

/// BFS from `source` under the given concurrent-write method and frontier
/// strategy.
///
/// ```
/// use pram_algos::{bfs_with_strategy, BfsStrategy, CwMethod};
/// use pram_exec::ThreadPool;
/// use pram_graph::{CsrGraph, GraphGen};
///
/// let g = CsrGraph::from_edges(7, &GraphGen::star(7), true);
/// let pool = ThreadPool::new(2);
/// let r = bfs_with_strategy(&g, 0, CwMethod::CasLt, BfsStrategy::DirectionOptimizing, &pool);
/// assert!(r.level[1..].iter().all(|&l| l == 1));
/// ```
pub fn bfs_with_strategy(
    g: &CsrGraph,
    source: u32,
    method: CwMethod,
    strategy: BfsStrategy,
    pool: &ThreadPool,
) -> BfsResult {
    dispatch_method!(method, g.num_vertices(), |arb| bfs_strategy_with_arbiter(
        g, source, &arb, strategy, pool
    ))
}

/// [`bfs_with_strategy`] with a caller-supplied in-edge view, so repeated
/// traversals (benchmarks, multi-source sweeps) don't rebuild the
/// `O(n + m)` [`ReverseCsr`] per call. `rev` must be `g.reverse()` (checked
/// by size only).
pub fn bfs_with_strategy_rev(
    g: &CsrGraph,
    rev: &ReverseCsr,
    source: u32,
    method: CwMethod,
    strategy: BfsStrategy,
    pool: &ThreadPool,
) -> BfsResult {
    dispatch_method!(method, g.num_vertices(), |arb| bfs_core(
        g,
        Some(rev),
        source,
        &arb,
        strategy,
        pool
    ))
}

/// Dense-scan BFS against an explicit arbiter (one cell per vertex,
/// freshly armed).
pub fn bfs_with_arbiter<A: SliceArbiter>(
    g: &CsrGraph,
    source: u32,
    arb: &A,
    pool: &ThreadPool,
) -> BfsResult {
    bfs_strategy_with_arbiter(g, source, arb, BfsStrategy::DenseScan, pool)
}

/// BFS against an explicit arbiter and frontier strategy.
pub fn bfs_strategy_with_arbiter<A: SliceArbiter>(
    g: &CsrGraph,
    source: u32,
    arb: &A,
    strategy: BfsStrategy,
    pool: &ThreadPool,
) -> BfsResult {
    bfs_core(g, None, source, arb, strategy, pool)
}

fn bfs_core<A: SliceArbiter>(
    g: &CsrGraph,
    rev: Option<&ReverseCsr>,
    source: u32,
    arb: &A,
    strategy: BfsStrategy,
    pool: &ThreadPool,
) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert_eq!(arb.len(), n, "arbiter must span one cell per vertex");
    if let Some(rev) = rev {
        assert_eq!(rev.num_vertices(), n, "reverse view is for another graph");
    }
    match strategy {
        BfsStrategy::DenseScan => bfs_dense(g, source, arb, pool),
        BfsStrategy::TopDown => bfs_frontier(g, rev, source, arb, pool, false),
        BfsStrategy::DirectionOptimizing => bfs_frontier(g, rev, source, arb, pool, true),
    }
}

/// The four per-vertex output arrays, shared across strategies.
struct BfsState {
    level: Vec<AtomicU32>,
    visited: Vec<AtomicU8>,
    parent: Vec<AtomicU32>,
    sel_edge: Vec<AtomicUsize>,
}

impl BfsState {
    fn new(n: usize, source: u32) -> BfsState {
        let s = BfsState {
            level: (0..n).map(|_| AtomicU32::new(UNREACHED)).collect(),
            visited: (0..n).map(|_| AtomicU8::new(0)).collect(),
            parent: (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect(),
            sel_edge: (0..n).map(|_| AtomicUsize::new(NO_EDGE)).collect(),
        };
        s.level[source as usize].store(0, Ordering::Relaxed);
        s.visited[source as usize].store(1, Ordering::Relaxed);
        s
    }

    fn into_result(self, rounds: u32) -> BfsResult {
        BfsResult {
            level: self.level.into_iter().map(AtomicU32::into_inner).collect(),
            parent: self.parent.into_iter().map(AtomicU32::into_inner).collect(),
            sel_edge: self
                .sel_edge
                .into_iter()
                .map(AtomicUsize::into_inner)
                .collect(),
            rounds,
        }
    }

    /// The guarded four-word write. Call only as the claim winner.
    #[inline]
    fn commit(&self, u: usize, parent: u32, edge: usize, level: u32) {
        self.parent[u].store(parent, Ordering::Relaxed);
        self.sel_edge[u].store(edge, Ordering::Relaxed);
        self.visited[u].store(1, Ordering::Relaxed);
        self.level[u].store(level, Ordering::Relaxed);
    }
}

/// This member's contiguous share of `0..len` (the static-block split,
/// for loops that fold into worker-local accumulators).
fn member_slice(len: usize, threads: usize, id: usize) -> Range<usize> {
    (len * id / threads)..(len * (id + 1) / threads)
}

/// Gatekeeper methods need their cells re-zeroed before the next round;
/// round-rearming methods just need the barrier `converge_rounds` requires.
/// Either way the round ends with the adaptive tuning point, a no-op for
/// static arbiters and pools without telemetry.
fn rearm<A: SliceArbiter>(ctx: &WorkerCtx<'_>, arb: &A, n: usize) {
    ctx.barrier();
    if !arb.rearms_on_new_round() {
        ctx.for_each(0..n, Schedule::default(), |i| {
            arb.reset_range(i..i + 1);
        });
    }
    ctx.tune(arb);
}

fn bfs_dense<A: SliceArbiter>(g: &CsrGraph, source: u32, arb: &A, pool: &ThreadPool) -> BfsResult {
    let n = g.num_vertices();
    let st = BfsState::new(n, source);
    let offsets = g.offsets();
    let targets = g.targets();
    // Eccentricity < n, plus the final no-change round.
    let max_rounds = n as u32 + 1;

    let rounds = AtomicU32::new(0);
    pool.run(|ctx| {
        let c = ctx.converge_rounds(max_rounds, |round, flag| {
            ctx.annotate_round("expand");
            let l = round.get() - 1; // the level being expanded
            ctx.for_each_nowait(0..n, Schedule::default(), |v| {
                if st.level[v].load(Ordering::Relaxed) != l {
                    return;
                }
                #[allow(clippy::needless_range_loop)] // j is the edge id recorded in sel_edge
                for j in offsets[v]..offsets[v + 1] {
                    let u = targets[j] as usize;
                    if st.visited[u].load(Ordering::Relaxed) == 0 {
                        // The concurrent write: claim vertex u for this
                        // level, then perform the four-word update.
                        if arb.try_claim(u, round) {
                            st.commit(u, v as u32, j, l + 1);
                            flag.set(); // the paper's `done = false`
                        }
                    }
                }
            });
            rearm(ctx, arb, n);
        });
        // Every member observed the same convergence result.
        rounds.store(c.rounds, Ordering::Relaxed);
    });

    st.into_result(rounds.into_inner())
}

/// Frontier-centric BFS: top-down sparse queue, optionally switching to a
/// bottom-up bitmap pull (`allow_pull` = direction-optimizing).
fn bfs_frontier<A: SliceArbiter>(
    g: &CsrGraph,
    rev: Option<&ReverseCsr>,
    source: u32,
    arb: &A,
    pool: &ThreadPool,
    allow_pull: bool,
) -> BfsResult {
    let n = g.num_vertices();
    let m = g.num_directed_edges();
    let st = BfsState::new(n, source);
    let offsets = g.offsets();
    let targets = g.targets();
    // The in-edge view (with edge provenance for sel_edge) is only needed
    // if a pull round can happen; build it unless the caller already did.
    let rev_owned;
    let rev = if allow_pull && rev.is_none() {
        rev_owned = g.reverse();
        Some(&rev_owned)
    } else {
        rev
    };

    // Double-buffered frontier in both representations; which pair member
    // is "current" is tracked per worker and advances in lockstep because
    // every direction decision is derived from team-wide reductions.
    let queues = [
        FrontierBuffer::with_capacity(n),
        FrontierBuffer::with_capacity(n),
    ];
    let bitmaps = [AtomicBitmap::new(n.max(1)), AtomicBitmap::new(n.max(1))];
    queues[0].publish(&[source as u64]);

    let max_rounds = n as u32 + 1;
    let rounds = AtomicU32::new(0);

    pool.run(|ctx| {
        let threads = ctx.num_threads();
        let id = ctx.thread_id();
        let mut qi = 0usize; // queues[qi] holds the current frontier...
        let mut bi = 0usize; // ...or bitmaps[bi] does, when cur_is_bits
        let mut cur_is_bits = false;

        let c = ctx.converge_rounds(max_rounds, |round, flag| {
            let l = round.get() - 1;

            // Frontier stats (size, out-edges) — O(1) per vertex thanks to
            // the CSR degree prefix sum; team-combined by one reduction.
            let (fsize, fedges) = if cur_is_bits {
                let bits = &bitmaps[bi];
                let (mut s, mut e) = (0usize, 0usize);
                for w in member_slice(bits.num_words(), threads, id) {
                    bits.for_each_set_in_word(w, |v| {
                        s += 1;
                        e += offsets[v + 1] - offsets[v];
                    });
                }
                ctx.reduce((s, e), |a, b| (a.0 + b.0, a.1 + b.1))
            } else {
                let q = &queues[qi];
                let e = ctx.frontier_edge_count(q, |v| {
                    let v = v as usize;
                    offsets[v + 1] - offsets[v]
                });
                (q.len(), e)
            };

            // Direction heuristic (Beamer): identical on every member.
            let pull = allow_pull
                && if cur_is_bits {
                    fsize >= n / DIRECTION_BETA
                } else {
                    fedges > m / DIRECTION_ALPHA
                };

            // Representation conversion when the direction flips.
            if pull && !cur_is_bits {
                let bits = &bitmaps[bi];
                let q = &queues[qi];
                ctx.for_each(0..bits.num_words(), Schedule::default(), |w| {
                    bits.clear_word(w);
                });
                ctx.for_each(0..q.len(), Schedule::default(), |i| {
                    bits.insert(q.get(i) as usize);
                });
                cur_is_bits = true;
            } else if !pull && cur_is_bits {
                let bits = &bitmaps[bi];
                let q = &queues[qi];
                ctx.barrier_with(|| q.clear());
                let mut local = LocalBuffer::new();
                ctx.for_each_nowait(0..bits.num_words(), Schedule::default(), |w| {
                    bits.for_each_set_in_word(w, |v| local.push(v as u64, q));
                });
                local.flush(q);
                ctx.barrier();
                cur_is_bits = false;
            }

            if pull {
                // Bottom-up: every unvisited vertex scans its in-edges and
                // stops at the first frontier neighbor. The claim still
                // arbitrates the four-word write (and is the sole frontier
                // insertion point), though in pull form each target has a
                // single prospective writer.
                ctx.annotate_round("pull");
                let rev = rev.expect("pull implies reverse view");
                let cur = &bitmaps[bi];
                let next = &bitmaps[1 - bi];
                ctx.for_each(0..next.num_words(), Schedule::default(), |w| {
                    next.clear_word(w);
                });
                ctx.for_each_nowait(0..n, Schedule::Dynamic { chunk: 64 }, |v| {
                    if st.visited[v].load(Ordering::Relaxed) != 0 {
                        return;
                    }
                    for (w, e) in rev.in_edges(v as u32) {
                        if cur.contains(w as usize) {
                            if arb.try_claim(v, round) {
                                st.commit(v, w, e, l + 1);
                                next.insert(v);
                                flag.set();
                            }
                            break;
                        }
                    }
                });
                rearm(ctx, arb, n);
                bi = 1 - bi;
                cur_is_bits = true;
            } else {
                // Top-down: expand the queue with degree-weighted chunks,
                // staging discoveries in per-worker buffers.
                ctx.annotate_round("push");
                let cur = &queues[qi];
                let next = &queues[1 - qi];
                ctx.barrier_with(|| next.clear());
                let mut local = LocalBuffer::new();
                ctx.for_each_frontier(cur, fedges, FRONTIER_GRAIN_EDGES, |vu| {
                    let v = vu as usize;
                    #[allow(clippy::needless_range_loop)] // j is the edge id in sel_edge
                    for j in offsets[v]..offsets[v + 1] {
                        let u = targets[j] as usize;
                        if st.visited[u].load(Ordering::Relaxed) == 0 && arb.try_claim(u, round) {
                            st.commit(u, v as u32, j, l + 1);
                            local.push(u as u64, next);
                            flag.set();
                        }
                    }
                });
                // Publication is still ordered before the next round's
                // reads by the rearm/convergence barriers.
                local.flush(next);
                rearm(ctx, arb, n);
                qi = 1 - qi;
                cur_is_bits = false;
            }
        });
        ctx.master(|| rounds.store(c.rounds, Ordering::Relaxed));
    });

    st.into_result(rounds.into_inner())
}

/// Check a [`BfsResult`]'s distances against the serial reference.
///
/// Holds for **every** method, including naive (levels are common writes).
pub fn verify_bfs_levels(g: &CsrGraph, source: u32, r: &BfsResult) -> Result<(), String> {
    let expect = pram_graph::serial::bfs_levels(g, source);
    if r.level == expect {
        Ok(())
    } else {
        let v = (0..expect.len())
            .find(|&v| expect[v] != r.level[v])
            .unwrap();
        Err(format!(
            "level[{v}] = {} but serial BFS says {}",
            r.level[v], expect[v]
        ))
    }
}

/// Full structural verification: distances plus parent/sel_edge mutual
/// consistency.
///
/// Guaranteed only for single-winner methods
/// ([`CwMethod::single_winner`]); the naive method can fail the
/// parent/edge cross-check, which is the paper's argument against it.
pub fn verify_bfs_tree(g: &CsrGraph, source: u32, r: &BfsResult) -> Result<(), String> {
    verify_bfs_levels(g, source, r)?;
    let n = g.num_vertices();
    for v in 0..n {
        let (lv, p, e) = (r.level[v], r.parent[v], r.sel_edge[v]);
        if v as u32 == source {
            if p != NO_PARENT || e != NO_EDGE {
                return Err(format!("source has parent {p} / edge {e}"));
            }
            continue;
        }
        if lv == UNREACHED {
            if p != NO_PARENT || e != NO_EDGE {
                return Err(format!("unreachable {v} has parent {p} / edge {e}"));
            }
            continue;
        }
        if p == NO_PARENT || e == NO_EDGE {
            return Err(format!("reached {v} missing parent or edge"));
        }
        if r.level[p as usize] + 1 != lv {
            return Err(format!(
                "parent level mismatch at {v}: level[{p}] = {} vs level[{v}] = {lv}",
                r.level[p as usize]
            ));
        }
        // sel_edge must be an edge *owned by the parent* that targets v —
        // the cross-array consistency naive writes can tear.
        let (lo, hi) = (g.offsets()[p as usize], g.offsets()[p as usize + 1]);
        if !(lo..hi).contains(&e) {
            return Err(format!(
                "sel_edge[{v}] = {e} is not an edge of parent {p} (range {lo}..{hi})"
            ));
        }
        if g.targets()[e] as usize != v {
            return Err(format!(
                "sel_edge[{v}] = {e} targets {} instead of {v}",
                g.targets()[e]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::GraphGen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges(n, edges, true)
    }

    #[test]
    fn all_single_winner_methods_build_valid_trees() {
        let pool = ThreadPool::new(4);
        let cases = vec![
            graph(5, &GraphGen::path(5)),
            graph(7, &GraphGen::star(7)),
            graph(6, &GraphGen::cycle(6)),
            graph(12, &GraphGen::grid(3, 4)),
            graph(1, &[]),
            graph(4, &[(0, 1)]), // disconnected
        ];
        for g in &cases {
            for m in CwMethod::ALL.into_iter().filter(|m| m.single_winner()) {
                for s in BfsStrategy::ALL {
                    let r = bfs_with_strategy(g, 0, m, s, &pool);
                    verify_bfs_tree(g, 0, &r).unwrap_or_else(|e| panic!("{m}/{s}: {e}"));
                }
            }
        }
    }

    #[test]
    fn naive_gets_levels_right() {
        let pool = ThreadPool::new(4);
        let mut gen = GraphGen::new(9);
        let edges = gen.gnm(200, 800);
        let g = graph(200, &edges);
        let r = bfs(&g, 0, CwMethod::Naive, &pool);
        verify_bfs_levels(&g, 0, &r).unwrap();
    }

    #[test]
    fn random_graphs_match_serial_levels_for_all_methods() {
        let pool = ThreadPool::new(4);
        for seed in 0..3 {
            let edges = GraphGen::new(seed).gnm(100, 300);
            let g = graph(100, &edges);
            for m in CwMethod::ALL {
                let r = bfs(&g, 5, m, &pool);
                verify_bfs_levels(&g, 5, &r).unwrap_or_else(|e| panic!("seed {seed} {m}: {e}"));
            }
        }
    }

    #[test]
    fn strategies_agree_on_levels_and_round_counts() {
        let pool = ThreadPool::new(4);
        for seed in 0..3 {
            let edges = GraphGen::new(seed).gnm(150, 400);
            let g = graph(150, &edges);
            let dense = bfs_with_strategy(&g, 3, CwMethod::CasLt, BfsStrategy::DenseScan, &pool);
            for s in [BfsStrategy::TopDown, BfsStrategy::DirectionOptimizing] {
                let r = bfs_with_strategy(&g, 3, CwMethod::CasLt, s, &pool);
                assert_eq!(r.level, dense.level, "seed {seed} {s}");
                assert_eq!(r.rounds, dense.rounds, "seed {seed} {s}");
                verify_bfs_tree(&g, 3, &r).unwrap_or_else(|e| panic!("seed {seed} {s}: {e}"));
            }
        }
    }

    #[test]
    fn direction_optimizing_pulls_on_dense_frontiers() {
        // A star forces an immediate huge frontier: round 2 must pull.
        let pool = ThreadPool::new(4);
        let g = graph(2000, &GraphGen::star(2000));
        for m in [CwMethod::CasLt, CwMethod::Gatekeeper] {
            let r = bfs_with_strategy(&g, 0, m, BfsStrategy::DirectionOptimizing, &pool);
            verify_bfs_tree(&g, 0, &r).unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(r.level[1..].iter().all(|&l| l == 1));
        }
    }

    #[test]
    fn top_down_on_long_paths() {
        let pool = ThreadPool::new(4);
        let g = graph(512, &GraphGen::path(512));
        let r = bfs_with_strategy(&g, 0, CwMethod::CasLt, BfsStrategy::TopDown, &pool);
        verify_bfs_tree(&g, 0, &r).unwrap();
        assert_eq!(r.rounds, 512);
    }

    #[test]
    fn rounds_equal_eccentricity_plus_one() {
        let pool = ThreadPool::new(2);
        let g = graph(6, &GraphGen::path(6));
        for s in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::CasLt, s, &pool);
            // Levels 0..=4 expand something; the 6th round finds no change.
            assert_eq!(r.rounds, 6, "{s}");
        }
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let pool = ThreadPool::new(2);
        let g = graph(3, &[(1, 2)]);
        for s in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::CasLt, s, &pool);
            assert_eq!(r.level, vec![0, UNREACHED, UNREACHED], "{s}");
            assert_eq!(r.rounds, 1, "{s}");
        }
    }

    #[test]
    fn sel_edge_points_to_discovering_edge() {
        let pool = ThreadPool::new(2);
        // Multigraph: duplicate edges mean several candidate sel_edges; any
        // one of them is valid, and verify checks the chosen one is real.
        let g = graph(3, &[(0, 1), (0, 1), (1, 2)]);
        for s in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::CasLt, s, &pool);
            verify_bfs_tree(&g, 0, &r).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn self_loops_are_harmless() {
        let pool = ThreadPool::new(2);
        let g = graph(3, &[(0, 0), (0, 1), (1, 2)]);
        for s in BfsStrategy::ALL {
            let r = bfs_with_strategy(&g, 0, CwMethod::Gatekeeper, s, &pool);
            verify_bfs_tree(&g, 0, &r).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected() {
        let pool = ThreadPool::new(1);
        let g = graph(2, &[(0, 1)]);
        let _ = bfs(&g, 9, CwMethod::CasLt, &pool);
    }
}
