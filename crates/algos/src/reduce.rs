//! Tournament (tree) reduction — the EREW counterpart of the constant-time
//! maximum.
//!
//! The paper's future work proposes comparing "EREW or CREW PRAM
//! algorithms-based implementations currently in use, against relevant
//! implementations of CRCW PRAM algorithms with better Work-Depth
//! asymptotic complexities". This kernel is the classical exclusive-access
//! maximum: pairwise knockout over ⌈log₂ n⌉ barrier-separated levels,
//! depth O(log n), work O(n) — no concurrent writes at all (each slot is
//! read by one pair and written by one winner, EREW-clean).
//!
//! Against [`crate::max::max_index`] (depth O(1), work O(n²), all
//! concurrent writes) this realizes the paper's §6 trade-off concretely:
//! the CRCW algorithm buys constant depth with quadratic work, so on a
//! machine with `P_phys ≪ n` processors Brent's theorem favors the EREW
//! tournament for large `n` — while the CRCW version wins when work fits
//! the machine (small `n`, many processors). The `ext_crew_vs_crcw` bench
//! locates the crossover.

use std::sync::atomic::{AtomicU32, Ordering};

use pram_exec::{Schedule, ThreadPool};

/// Index of the maximum element (ties → larger index, matching the
/// paper's Figure 4 tie-break) by EREW tournament reduction.
///
/// # Panics
/// Panics if `values` is empty or has more than `u32::MAX` elements.
///
/// ```
/// use pram_algos::reduce::max_index_tournament;
/// use pram_exec::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// assert_eq!(max_index_tournament(&[3, 9, 9, 1], &pool), 2);
/// ```
pub fn max_index_tournament(values: &[u64], pool: &ThreadPool) -> usize {
    let n = values.len();
    assert!(n > 0, "maximum of an empty list is undefined");
    assert!(n <= u32::MAX as usize, "indices are u32");

    // Ping-pong candidate buffers (double-buffered so every level is
    // exclusive-read / exclusive-write).
    let bufs: [Vec<AtomicU32>; 2] = [
        (0..n).map(|i| AtomicU32::new(i as u32)).collect(),
        (0..n).map(|_| AtomicU32::new(0)).collect(),
    ];

    pool.run(|ctx| {
        let mut m = n; // live candidates in bufs[cur]
        let mut cur = 0;
        while m > 1 {
            let (src, dst) = (&bufs[cur], &bufs[1 - cur]);
            let half = m.div_ceil(2);
            ctx.for_each(0..half, Schedule::default(), |i| {
                let a = src[2 * i].load(Ordering::Relaxed) as usize;
                let w = if 2 * i + 1 < m {
                    let b = src[2 * i + 1].load(Ordering::Relaxed) as usize;
                    // Paper tie-break: equal values lose on smaller index.
                    if values[a] > values[b] || (values[a] == values[b] && a > b) {
                        a
                    } else {
                        b
                    }
                } else {
                    a // odd one out gets a bye
                };
                dst[i].store(w as u32, Ordering::Relaxed);
            });
            m = half;
            cur = 1 - cur;
        }
        // All members finish the loop together (for_each barriers), with
        // the champion in bufs[cur][0].
        let _ = cur;
    });

    // The loop above runs identically on every member; recompute the final
    // buffer parity to read the champion.
    let mut m = n;
    let mut cur = 0;
    while m > 1 {
        m = m.div_ceil(2);
        cur = 1 - cur;
    }
    bufs[cur][0].load(Ordering::Relaxed) as usize
}

/// Sum of `values` by the same tournament shape — used by tests to check
/// the reduction skeleton with an operator where every lane contributes.
pub fn sum_tournament(values: &[u64], pool: &ThreadPool) -> u64 {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    let bufs: [Vec<std::sync::atomic::AtomicU64>; 2] = [
        values
            .iter()
            .map(|&v| std::sync::atomic::AtomicU64::new(v))
            .collect(),
        (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect(),
    ];
    pool.run(|ctx| {
        let mut m = n;
        let mut cur = 0;
        while m > 1 {
            let (src, dst) = (&bufs[cur], &bufs[1 - cur]);
            let half = m.div_ceil(2);
            ctx.for_each(0..half, Schedule::default(), |i| {
                let mut acc = src[2 * i].load(Ordering::Relaxed);
                if 2 * i + 1 < m {
                    acc = acc.wrapping_add(src[2 * i + 1].load(Ordering::Relaxed));
                }
                dst[i].store(acc, Ordering::Relaxed);
            });
            m = half;
            cur = 1 - cur;
        }
    });
    let mut m = n;
    let mut cur = 0;
    while m > 1 {
        m = m.div_ceil(2);
        cur = 1 - cur;
    }
    bufs[cur][0].load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_graph::serial::max_index_paper_tiebreak;

    #[test]
    fn matches_serial_reference_including_ties() {
        let pool = ThreadPool::new(4);
        let cases: Vec<Vec<u64>> = vec![
            vec![5],
            vec![1, 2],
            vec![2, 1],
            vec![7, 7],
            vec![7, 7, 7, 7, 7],
            (0..97).map(|i| (i * 31) % 13).collect(),
            vec![0, u64::MAX, 3, u64::MAX],
        ];
        for values in &cases {
            assert_eq!(
                max_index_tournament(values, &pool),
                max_index_paper_tiebreak(values),
                "{values:?}"
            );
        }
    }

    #[test]
    fn agrees_with_crcw_max_for_every_method() {
        let pool = ThreadPool::new(3);
        let values: Vec<u64> = (0..200).map(|i: u64| i.wrapping_mul(977) % 541).collect();
        let tournament = max_index_tournament(&values, &pool);
        for m in crate::CwMethod::ALL {
            assert_eq!(crate::max_index(&values, m, &pool), tournament, "{m}");
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        let pool = ThreadPool::new(2);
        for n in [1usize, 2, 3, 5, 17, 33, 100] {
            let values: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 11).collect();
            assert_eq!(
                max_index_tournament(&values, &pool),
                max_index_paper_tiebreak(&values),
                "n = {n}"
            );
        }
    }

    #[test]
    fn sum_tournament_matches_iterator_sum() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 9, 64, 101] {
            let values: Vec<u64> = (0..n as u64).collect();
            assert_eq!(
                sum_tournament(&values, &pool),
                values.iter().sum::<u64>(),
                "n = {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn empty_rejected() {
        let pool = ThreadPool::new(1);
        let _ = max_index_tournament(&[], &pool);
    }
}
