//! Extension experiments beyond the paper's figures — the future-work
//! directions §8 proposes, made measurable.

use pram_algos::matching::maximal_matching;
use pram_algos::max::max_index_with_arbiter;
use pram_algos::reduce::max_index_tournament;
use pram_algos::{list_rank, max_index, CwMethod};
use pram_core::BitGatekeeperArray;

use crate::{ms, pool, time_median, BenchConfig, FigureResult, ScaleProfile, Series};

fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

/// `ext_crew_vs_crcw` — the paper's §8 proposal: an exclusive-write
/// algorithm in current use (EREW tournament maximum: depth O(log n),
/// work O(n)) against the CRCW algorithm with better depth (constant-time
/// maximum: depth O(1), work O(n²), CAS-LT writes).
///
/// Brent's theorem predicts a crossover: with `P_phys` processors the
/// CRCW kernel costs ~n²/P while the tournament costs ~n/P + log n, so the
/// tournament must win beyond some n. The sweep locates it empirically.
pub fn ext_crew_vs_crcw(cfg: &BenchConfig) -> FigureResult {
    let sizes: Vec<usize> = match cfg.scale {
        ScaleProfile::Quick => vec![64, 256, 1_024],
        ScaleProfile::Default => vec![64, 256, 1_024, 4_096, 16_384],
        ScaleProfile::Paper => vec![256, 1_024, 4_096, 16_384, 65_536],
    };
    let p = pool(cfg.threads);
    let mut crcw = Series {
        name: "crcw-max-caslt".into(),
        points: vec![],
    };
    let mut erew = Series {
        name: "erew-tournament".into(),
        points: vec![],
    };
    for &n in &sizes {
        let values = max_values(n);
        let t = time_median(cfg.reps, || {
            max_index(&values, CwMethod::CasLt, &p);
        });
        crcw.points.push((n as f64, ms(t)));
        let t = time_median(cfg.reps, || {
            max_index_tournament(&values, &p);
        });
        erew.points.push((n as f64, ms(t)));
    }
    FigureResult {
        id: "ext_crew_vs_crcw".into(),
        title: format!(
            "maximum: O(1)-depth CRCW vs O(log n)-depth EREW ({} threads)",
            cfg.threads
        ),
        x_label: "list size".into(),
        series: vec![crcw, erew],
    }
}

/// `ext_list_rank` — CREW pointer jumping across list sizes: the second
/// exclusive-access comparator, exercising the lock-step substrate with no
/// write arbitration at all (its cost is pure barrier + memory traffic).
pub fn ext_list_rank(cfg: &BenchConfig) -> FigureResult {
    let sizes: Vec<usize> = match cfg.scale {
        ScaleProfile::Quick => vec![1_000, 4_000],
        ScaleProfile::Default => vec![10_000, 40_000, 160_000],
        ScaleProfile::Paper => vec![100_000, 400_000, 1_600_000],
    };
    let p = pool(cfg.threads);
    let mut series = Series {
        name: "pointer-jumping".into(),
        points: vec![],
    };
    for &n in &sizes {
        let (next, _head) = pram_algos::list_rank::random_list(n, cfg.seed);
        let t = time_median(cfg.reps, || {
            list_rank(&next, &p);
        });
        series.points.push((n as f64, ms(t)));
    }
    FigureResult {
        id: "ext_list_rank".into(),
        title: format!("CREW list ranking ({} threads)", cfg.threads),
        x_label: "list size".into(),
        series: vec![series],
    }
}

/// `ext_matching` — maximal matching (two-cell arbitrary CW) across
/// methods: how much the reset-free re-arming matters when *every round*
/// needs fresh claims on all n vertices.
pub fn ext_matching(cfg: &BenchConfig) -> FigureResult {
    let (v, e) = match cfg.scale {
        ScaleProfile::Quick => (1_000, 4_000),
        ScaleProfile::Default => (10_000, 50_000),
        ScaleProfile::Paper => (100_000, 3_000_000),
    };
    let g = crate::make_graph(v, e, cfg.seed);
    let p = pool(cfg.threads);
    let series = [CwMethod::Gatekeeper, CwMethod::Lock, CwMethod::CasLt]
        .iter()
        .map(|&m| Series {
            name: m.to_string(),
            points: vec![(
                1.0,
                ms(time_median(cfg.reps, || {
                    maximal_matching(&g, m, &p);
                })),
            )],
        })
        .collect();
    FigureResult {
        id: "ext_matching".into(),
        title: format!("maximal matching ({v} vertices, {e} edges)"),
        x_label: "point".into(),
        series,
    }
}

/// `ablate_bitmap` — gatekeeper at 1 bit/target (`fetch_or` into shared
/// words) vs 32 bits/target vs CAS-LT on the Max kernel: auxiliary-memory
/// compactness against same-word RMW contention.
pub fn ablate_bitmap(cfg: &BenchConfig) -> FigureResult {
    let n = match cfg.scale {
        ScaleProfile::Quick => 800,
        ScaleProfile::Default => 4_000,
        ScaleProfile::Paper => 30_000,
    };
    let values = max_values(n);
    let p1 = pool(cfg.threads);
    let p2 = pool(cfg.threads);
    let p3 = pool(cfg.threads);
    let series = vec![
        Series {
            name: "gatekeeper-u32".into(),
            points: vec![(
                1.0,
                ms(time_median(cfg.reps, || {
                    let arb = pram_core::GatekeeperArray::new(n);
                    max_index_with_arbiter(&values, &arb, &p1);
                })),
            )],
        },
        Series {
            name: "gatekeeper-bitmap".into(),
            points: vec![(
                1.0,
                ms(time_median(cfg.reps, || {
                    let arb = BitGatekeeperArray::new(n);
                    max_index_with_arbiter(&values, &arb, &p2);
                })),
            )],
        },
        Series {
            name: "caslt".into(),
            points: vec![(
                1.0,
                ms(time_median(cfg.reps, || {
                    let arb = pram_core::CasLtArray::new(n);
                    max_index_with_arbiter(&values, &arb, &p3);
                })),
            )],
        },
    ];
    FigureResult {
        id: "ablate_bitmap".into(),
        title: format!("max (n = {n}): bitmap vs word gatekeeper vs CAS-LT"),
        x_label: "point".into(),
        series,
    }
}

/// All extension experiments.
pub fn all(cfg: &BenchConfig) -> Vec<FigureResult> {
    vec![
        ext_crew_vs_crcw(cfg),
        ext_list_rank(cfg),
        ext_matching(cfg),
        ablate_bitmap(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_regenerate_at_quick_scale() {
        let cfg = BenchConfig {
            scale: ScaleProfile::Quick,
            threads: 2,
            reps: 1,
            ..BenchConfig::default()
        };
        for fig in all(&cfg) {
            assert!(!fig.series.is_empty(), "{}", fig.id);
            for s in &fig.series {
                assert!(!s.points.is_empty());
                assert!(s.points.iter().all(|&(_, t)| t > 0.0));
            }
        }
    }
}
