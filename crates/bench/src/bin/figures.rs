//! Regenerate the paper's evaluation figures (and this workspace's
//! ablations) as tables + CSV files.
//!
//! ```text
//! Usage: figures [OPTIONS] <TARGET>...
//!
//! Targets:
//!   fig5 .. fig12   one figure (paper §7, Figures 5–12)
//!   figures         all eight figures
//!   ablations       the design-choice ablation suite
//!   extensions      future-work extension experiments (§8)
//!   stats           claim-level statistics report (profiling, untimed)
//!   all             everything above
//!
//! Options:
//!   --paper-scale   the paper's published workload sizes (hours on a laptop)
//!   --quick         smoke-test sizes
//!   --threads <T>   team size for fixed-thread figures   [default: 4]
//!   --reps <R>      repetitions per point (median kept)  [default: 3]
//!   --seed <S>      workload seed                        [default: 42]
//!   --out <DIR>     CSV output directory                 [default: results]
//! ```

use std::process::ExitCode;

use pram_bench::{ablations, ext, figures, BenchConfig, ScaleProfile};

fn usage() -> ExitCode {
    eprintln!(
        "Usage: figures [--paper-scale|--quick] [--threads T] [--reps R] \
         [--seed S] [--out DIR] <fig5..fig12|figures|ablations|extensions|stats|all>..."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = BenchConfig::default();
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper-scale" => cfg.scale = ScaleProfile::Paper,
            "--quick" => cfg.scale = ScaleProfile::Quick,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) if t >= 1 => cfg.threads = t,
                _ => return usage(),
            },
            "--reps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 1 => cfg.reps = r,
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(d) => cfg.out_dir = d.into(),
                None => return usage(),
            },
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            _ => return usage(),
        }
    }
    if targets.is_empty() {
        return usage();
    }

    println!(
        "# scale = {:?}, threads = {}, reps = {}, seed = {}, out = {}",
        cfg.scale,
        cfg.threads,
        cfg.reps,
        cfg.seed,
        cfg.out_dir.display()
    );
    println!(
        "# host parallelism: {} (paper: 32 threads on 2x16-core x86)\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    let mut results = Vec::new();
    for t in &targets {
        match t.as_str() {
            "figures" => results.extend(figures::all(&cfg)),
            "ablations" => results.extend(ablations::all(&cfg)),
            "extensions" => results.extend(ext::all(&cfg)),
            "stats" => println!("{}", ablations::claim_statistics(&cfg)),
            "all" => {
                results.extend(figures::all(&cfg));
                results.extend(ablations::all(&cfg));
                results.extend(ext::all(&cfg));
                println!("{}", ablations::claim_statistics(&cfg));
            }
            id => match figures::by_id(id, &cfg) {
                Some(fig) => results.push(fig),
                None => {
                    eprintln!("unknown target '{id}'");
                    return usage();
                }
            },
        }
    }

    for fig in &results {
        println!("{}", fig.table());
        if fig.series.len() >= 2 {
            let base = &fig.series[0].name;
            let ours = &fig.series.last().unwrap().name;
            if let Some(g) = fig.geomean_speedup(base, ours) {
                println!("geomean speedup {ours} vs {base}: {g:.2}x\n");
            }
        }
        match fig.write_csv(&cfg.out_dir) {
            Ok(p) => println!("wrote {}\n", p.display()),
            Err(e) => eprintln!("csv write failed for {}: {e}", fig.id),
        }
    }
    ExitCode::SUCCESS
}
