//! One regeneration function per figure in the paper's evaluation (§7).
//!
//! Figure-by-figure workload parameters follow the paper's captions; the
//! default scale divides them to laptop size (EXPERIMENTS.md maps each
//! default back to the published parameters).

use pram_algos::{bfs, connected_components, max_index, CwMethod};

use crate::{
    make_graph, ms, pool, sweep, thread_sweep, time_median, BenchConfig, FigureResult,
    ScaleProfile, Series,
};

/// Pseudo-random list values for the Max kernel (fixed multiplier hash of
/// the index — reproducible without touching the seed).
fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

fn list_sizes(scale: ScaleProfile) -> Vec<usize> {
    match scale {
        ScaleProfile::Quick => vec![500, 1_000],
        ScaleProfile::Default => vec![1_000, 2_000, 4_000, 6_000, 8_000],
        // Paper: "list size of 10K–60K elements".
        ScaleProfile::Paper => vec![10_000, 20_000, 30_000, 40_000, 50_000, 60_000],
    }
}

/// Figure 5 — Max: execution time vs list size at a fixed thread count
/// (paper: 32 threads, naive / prefix-sum / CAS-LT).
pub fn fig5(cfg: &BenchConfig) -> FigureResult {
    let p = pool(cfg.threads);
    let series = sweep(
        cfg,
        &CwMethod::PAPER,
        &list_sizes(cfg.scale),
        max_values,
        |values, m| {
            max_index(values, m, &p);
        },
    );
    FigureResult {
        id: "fig5".into(),
        title: format!(
            "constant-time maximum: time vs list size ({} threads)",
            cfg.threads
        ),
        x_label: "list size".into(),
        series,
    }
}

/// Figure 6 — Max: execution time vs thread count at a fixed list size
/// (paper: 60 K elements).
pub fn fig6(cfg: &BenchConfig) -> FigureResult {
    let n = match cfg.scale {
        ScaleProfile::Quick => 1_000,
        ScaleProfile::Default => 4_000,
        ScaleProfile::Paper => 60_000,
    };
    let values = max_values(n);
    let mut series: Vec<Series> = CwMethod::PAPER
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: vec![],
        })
        .collect();
    for &t in &thread_sweep(cfg.scale) {
        let p = pool(t);
        for (mi, &m) in CwMethod::PAPER.iter().enumerate() {
            let d = time_median(cfg.reps, || {
                max_index(&values, m, &p);
            });
            series[mi].points.push((t as f64, ms(d)));
        }
    }
    FigureResult {
        id: "fig6".into(),
        title: format!("constant-time maximum: time vs threads (n = {n})"),
        x_label: "threads".into(),
        series,
    }
}

fn bfs_edge_sweep(scale: ScaleProfile) -> (usize, Vec<usize>) {
    match scale {
        ScaleProfile::Quick => (2_000, vec![4_000, 8_000]),
        ScaleProfile::Default => (20_000, vec![50_000, 100_000, 200_000, 300_000]),
        // Paper: 100 K vertices, 5 M–30 M edges.
        ScaleProfile::Paper => (
            100_000,
            vec![
                5_000_000, 10_000_000, 15_000_000, 20_000_000, 25_000_000, 30_000_000,
            ],
        ),
    }
}

/// Figure 7 — BFS: execution time vs edge count (paper: 100 K-vertex
/// random graphs, 32 threads).
pub fn fig7(cfg: &BenchConfig) -> FigureResult {
    let (v, es) = bfs_edge_sweep(cfg.scale);
    let p = pool(cfg.threads);
    let series = sweep(
        cfg,
        &CwMethod::PAPER,
        &es,
        |e| make_graph(v, e, cfg.seed),
        |g, m| {
            bfs(g, 0, m, &p);
        },
    );
    FigureResult {
        id: "fig7".into(),
        title: format!("BFS: time vs edges ({v} vertices, {} threads)", cfg.threads),
        x_label: "edges".into(),
        series,
    }
}

fn bfs_vertex_sweep(scale: ScaleProfile) -> (Vec<usize>, usize) {
    match scale {
        ScaleProfile::Quick => (vec![1_000, 2_000], 8_000),
        ScaleProfile::Default => (vec![5_000, 10_000, 20_000, 40_000], 200_000),
        // Paper: 30 M edges, vertex count swept.
        ScaleProfile::Paper => (vec![50_000, 100_000, 200_000, 400_000], 30_000_000),
    }
}

/// Figure 8 — BFS: execution time vs vertex count at fixed edges
/// (paper: 30 M edges, 32 threads).
pub fn fig8(cfg: &BenchConfig) -> FigureResult {
    let (vs, e) = bfs_vertex_sweep(cfg.scale);
    let p = pool(cfg.threads);
    let series = sweep(
        cfg,
        &CwMethod::PAPER,
        &vs,
        |v| make_graph(v, e, cfg.seed),
        |g, m| {
            bfs(g, 0, m, &p);
        },
    );
    FigureResult {
        id: "fig8".into(),
        title: format!("BFS: time vs vertices ({e} edges, {} threads)", cfg.threads),
        x_label: "vertices".into(),
        series,
    }
}

/// Figure 9 — BFS: execution time vs thread count (paper: 100 K vertices,
/// 30 M edges).
pub fn fig9(cfg: &BenchConfig) -> FigureResult {
    let (v, e) = match cfg.scale {
        ScaleProfile::Quick => (2_000, 8_000),
        ScaleProfile::Default => (20_000, 200_000),
        ScaleProfile::Paper => (100_000, 30_000_000),
    };
    let g = make_graph(v, e, cfg.seed);
    let mut series: Vec<Series> = CwMethod::PAPER
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: vec![],
        })
        .collect();
    for &t in &thread_sweep(cfg.scale) {
        let p = pool(t);
        for (mi, &m) in CwMethod::PAPER.iter().enumerate() {
            let d = time_median(cfg.reps, || {
                bfs(&g, 0, m, &p);
            });
            series[mi].points.push((t as f64, ms(d)));
        }
    }
    FigureResult {
        id: "fig9".into(),
        title: format!("BFS: time vs threads ({v} vertices, {e} edges)"),
        x_label: "threads".into(),
        series,
    }
}

/// The CC figures compare gatekeeper vs CAS-LT (the paper implements no
/// naive CC — §7.3).
const CC_METHODS: [CwMethod; 2] = [CwMethod::Gatekeeper, CwMethod::CasLt];

/// Figure 10 — CC: execution time vs edge count (paper: 100 K vertices,
/// 32 threads, prefix-sum vs CAS-LT).
pub fn fig10(cfg: &BenchConfig) -> FigureResult {
    let (v, es) = match cfg.scale {
        ScaleProfile::Quick => (1_000, vec![2_000, 4_000]),
        ScaleProfile::Default => (10_000, vec![20_000, 50_000, 100_000, 200_000]),
        ScaleProfile::Paper => (
            100_000,
            vec![
                5_000_000, 10_000_000, 15_000_000, 20_000_000, 25_000_000, 30_000_000,
            ],
        ),
    };
    let p = pool(cfg.threads);
    let series = sweep(
        cfg,
        &CC_METHODS,
        &es,
        |e| make_graph(v, e, cfg.seed),
        |g, m| {
            connected_components(g, m, &p);
        },
    );
    FigureResult {
        id: "fig10".into(),
        title: format!("CC: time vs edges ({v} vertices, {} threads)", cfg.threads),
        x_label: "edges".into(),
        series,
    }
}

/// Figure 11 — CC: execution time vs vertex count at fixed edges
/// (paper: 30 M edges, 32 threads).
pub fn fig11(cfg: &BenchConfig) -> FigureResult {
    let (vs, e) = match cfg.scale {
        ScaleProfile::Quick => (vec![500, 1_000], 4_000),
        ScaleProfile::Default => (vec![2_000, 5_000, 10_000, 20_000], 100_000),
        ScaleProfile::Paper => (vec![50_000, 100_000, 200_000, 400_000], 30_000_000),
    };
    let p = pool(cfg.threads);
    let series = sweep(
        cfg,
        &CC_METHODS,
        &vs,
        |v| make_graph(v, e, cfg.seed),
        |g, m| {
            connected_components(g, m, &p);
        },
    );
    FigureResult {
        id: "fig11".into(),
        title: format!("CC: time vs vertices ({e} edges, {} threads)", cfg.threads),
        x_label: "vertices".into(),
        series,
    }
}

/// Figure 12 — CC: execution time vs thread count (paper: 100 K vertices,
/// 30 M edges).
pub fn fig12(cfg: &BenchConfig) -> FigureResult {
    let (v, e) = match cfg.scale {
        ScaleProfile::Quick => (1_000, 4_000),
        ScaleProfile::Default => (10_000, 100_000),
        ScaleProfile::Paper => (100_000, 30_000_000),
    };
    let g = make_graph(v, e, cfg.seed);
    let mut series: Vec<Series> = CC_METHODS
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: vec![],
        })
        .collect();
    for &t in &thread_sweep(cfg.scale) {
        let p = pool(t);
        for (mi, &m) in CC_METHODS.iter().enumerate() {
            let d = time_median(cfg.reps, || {
                connected_components(&g, m, &p);
            });
            series[mi].points.push((t as f64, ms(d)));
        }
    }
    FigureResult {
        id: "fig12".into(),
        title: format!("CC: time vs threads ({v} vertices, {e} edges)"),
        x_label: "threads".into(),
        series,
    }
}

/// All eight figures in order.
pub fn all(cfg: &BenchConfig) -> Vec<FigureResult> {
    vec![
        fig5(cfg),
        fig6(cfg),
        fig7(cfg),
        fig8(cfg),
        fig9(cfg),
        fig10(cfg),
        fig11(cfg),
        fig12(cfg),
    ]
}

/// Resolve a figure by id.
pub fn by_id(id: &str, cfg: &BenchConfig) -> Option<FigureResult> {
    Some(match id {
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7" => fig7(cfg),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "fig12" => fig12(cfg),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BenchConfig {
        BenchConfig {
            scale: ScaleProfile::Quick,
            threads: 2,
            reps: 1,
            ..BenchConfig::default()
        }
    }

    #[test]
    fn every_figure_regenerates_at_quick_scale() {
        let cfg = quick_cfg();
        for fig in all(&cfg) {
            assert!(!fig.series.is_empty(), "{} has no series", fig.id);
            let n = fig.series[0].points.len();
            assert!(n >= 2, "{} has a degenerate sweep", fig.id);
            for s in &fig.series {
                assert_eq!(s.points.len(), n, "{} ragged series", fig.id);
                assert!(s.points.iter().all(|&(_, t)| t > 0.0));
            }
            assert!(!fig.table().is_empty());
        }
    }

    #[test]
    fn by_id_resolves_all_and_rejects_unknown() {
        let cfg = quick_cfg();
        for id in [
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        ] {
            assert!(by_id(id, &cfg).is_some(), "{id}");
        }
        assert!(by_id("fig99", &cfg).is_none());
    }
}
