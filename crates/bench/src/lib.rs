//! # pram-bench — regeneration harness for every figure in the paper's
//! evaluation
//!
//! The paper's §7 reports eight figures (5–12): execution time of the
//! Max / BFS / CC kernels under the naive, gatekeeper (prefix-sum) and
//! CAS-LT concurrent-write methods, swept over problem size and thread
//! count. [`figures`] contains one function per figure that reruns the
//! same sweep and returns a [`FigureResult`] (printable table + CSV);
//! [`ablations`] adds the design-choice experiments DESIGN.md calls out.
//! The `figures` binary drives both; `benches/` holds the Criterion
//! counterparts.
//!
//! Scales: the paper ran 32 threads on a 2×16-core Andes node with up to
//! 60 K-element lists and 100 K-vertex / 30 M-edge graphs. Default scales
//! here are reduced to suit small machines; `ScaleProfile::Paper`
//! (`--paper-scale`) restores the published parameters. EXPERIMENTS.md
//! records the paper-vs-measured comparison and the hardware caveats.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod ext;
pub mod figures;

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pram_algos::CwMethod;
use pram_exec::ThreadPool;
use pram_graph::{CsrGraph, GraphGen};

/// Which parameter scale a sweep runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProfile {
    /// Small, minutes-on-a-laptop parameters (default).
    Default,
    /// Very small parameters for smoke tests (`--quick`).
    Quick,
    /// The paper's published parameters (`--paper-scale`).
    Paper,
}

/// Harness configuration shared by all figures.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Scale profile for sweeps.
    pub scale: ScaleProfile,
    /// Team size for fixed-thread figures (the paper uses 32).
    pub threads: usize,
    /// Repetitions per point; the median is reported.
    pub reps: usize,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
    /// Workload seed (recorded so runs are reproducible).
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            scale: ScaleProfile::Default,
            threads: 4,
            reps: 3,
            out_dir: PathBuf::from("results"),
            seed: 42,
        }
    }
}

/// One method's measurements across a sweep.
#[derive(Debug, Clone)]
pub struct Series {
    /// Method (column) name.
    pub name: String,
    /// `(x, milliseconds)` points.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure: metadata plus one series per method.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure id, e.g. `"fig5"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// One series per method, in presentation order.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Render as an aligned text table with per-row speedup of the last
    /// series (CAS-LT by convention) over the first (the baseline).
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", format!("{} (ms)", s.name));
        }
        if self.series.len() >= 2 {
            let _ = write!(
                out,
                " {:>14}",
                format!(
                    "{}/{}",
                    self.series[0].name,
                    self.series.last().unwrap().name
                )
            );
        }
        let _ = writeln!(out);
        let rows = self.series[0].points.len();
        for r in 0..rows {
            let _ = write!(out, "{:>14}", format_x(self.series[0].points[r].0));
            for s in &self.series {
                let _ = write!(out, " {:>16.3}", s.points[r].1);
            }
            if self.series.len() >= 2 {
                let base = self.series[0].points[r].1;
                let ours = self.series.last().unwrap().points[r].1;
                let _ = write!(out, " {:>13.2}x", base / ours);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Geometric-mean speedup of series `b` over series `a` (how the paper
    /// summarizes each figure).
    pub fn geomean_speedup(&self, a: &str, b: &str) -> Option<f64> {
        let sa = self.series.iter().find(|s| s.name == a)?;
        let sb = self.series.iter().find(|s| s.name == b)?;
        let logs: Vec<f64> = sa
            .points
            .iter()
            .zip(&sb.points)
            .map(|(&(_, ta), &(_, tb))| (ta / tb).ln())
            .collect();
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }

    /// Write `x,method,ms` CSV under `dir` as `<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{},method,ms", self.x_label.replace(' ', "_"))?;
        for s in &self.series {
            for &(x, ms) in &s.points {
                writeln!(f, "{x},{},{ms}", s.name)?;
            }
        }
        f.flush()?;
        Ok(path)
    }
}

fn format_x(x: f64) -> String {
    if x >= 1_000_000.0 && x % 1_000_000.0 == 0.0 {
        format!("{}M", x as u64 / 1_000_000)
    } else if x >= 1_000.0 && x % 1_000.0 == 0.0 {
        format!("{}K", x as u64 / 1_000)
    } else {
        format!("{x}")
    }
}

/// Median wall time of `reps` runs of `f` (one warm-up run first).
pub fn time_median(reps: usize, mut f: impl FnMut()) -> Duration {
    let reps = reps.max(1);
    f(); // warm-up: pages faulted in, pool woken
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Duration → fractional milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A reproducible uniform random undirected graph (the paper's workload).
pub fn make_graph(vertices: usize, edges: usize, seed: u64) -> CsrGraph {
    let e = GraphGen::new(seed).gnm(vertices, edges);
    CsrGraph::from_edges(vertices, &e, true)
}

/// Run one method sweep: for each x in `xs`, build the workload once and
/// time `run(workload, method)` for every method.
pub fn sweep<W>(
    cfg: &BenchConfig,
    methods: &[CwMethod],
    xs: &[usize],
    mut workload: impl FnMut(usize) -> W,
    mut run: impl FnMut(&W, CwMethod),
) -> Vec<Series> {
    let mut series: Vec<Series> = methods
        .iter()
        .map(|m| Series {
            name: m.to_string(),
            points: Vec::with_capacity(xs.len()),
        })
        .collect();
    for &x in xs {
        let w = workload(x);
        for (mi, &m) in methods.iter().enumerate() {
            let t = time_median(cfg.reps, || run(&w, m));
            series[mi].points.push((x as f64, ms(t)));
        }
    }
    series
}

/// Thread counts for a thread-sweep figure under the given scale.
pub fn thread_sweep(scale: ScaleProfile) -> Vec<usize> {
    match scale {
        ScaleProfile::Quick => vec![1, 2],
        ScaleProfile::Default => vec![1, 2, 4, 8],
        ScaleProfile::Paper => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Build a pool of `threads` with the default (passive) wait policy —
/// active waiting livelocks thread sweeps on machines with fewer cores
/// than the paper's node; EXPERIMENTS.md discusses the divergence.
pub fn pool(threads: usize) -> ThreadPool {
    ThreadPool::new(threads)
}

/// Drain `pool`'s telemetry round report and render the three derived-rate
/// columns every bench row shares (`fast_path_hit_rate`, `cas_retry_rate`,
/// `steal_ratio`) as a JSON fragment. The pool must have been built with
/// [`pram_exec::PoolConfig::telemetry`]; call right after the *untimed*
/// profiling run. The rates are computed over the drained per-round
/// deltas (not the pool-lifetime totals), so one telemetry pool can be
/// reused across many profiled runs without the windows blending.
pub fn telemetry_columns(pool: &ThreadPool) -> String {
    use pram_exec::{CwCounters, ExecCounters};
    let report = pool.take_round_report();
    let mut cw = CwCounters::default();
    let mut exec = ExecCounters::default();
    for r in &report.rounds {
        cw.add(&r.cw);
        exec.add(&r.exec);
    }
    format!(
        "\"fast_path_hit_rate\": {:.4}, \"cas_retry_rate\": {:.4}, \"steal_ratio\": {:.4}",
        cw.fast_path_hit_rate(),
        cw.cas_retry_rate(),
        exec.steal_ratio()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_stable_and_warm() {
        let mut calls = 0;
        let d = time_median(3, || calls += 1);
        assert_eq!(calls, 4); // 1 warm-up + 3 timed
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn figure_table_and_csv_roundtrip() {
        let fig = FigureResult {
            id: "figX".into(),
            title: "test".into(),
            x_label: "n".into(),
            series: vec![
                Series {
                    name: "naive".into(),
                    points: vec![(1000.0, 2.0), (2000.0, 4.0)],
                },
                Series {
                    name: "caslt".into(),
                    points: vec![(1000.0, 1.0), (2000.0, 2.0)],
                },
            ],
        };
        let t = fig.table();
        assert!(t.contains("figX"));
        assert!(t.contains("1K"));
        assert!(t.contains("2.00x"));
        let g = fig.geomean_speedup("naive", "caslt").unwrap();
        assert!((g - 2.0).abs() < 1e-9);

        let dir = std::env::temp_dir().join("pram-bench-test");
        let path = fig.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.starts_with("n,method,ms"));
        assert_eq!(body.lines().count(), 5);
    }

    #[test]
    fn sweep_shapes_match() {
        let cfg = BenchConfig {
            reps: 1,
            ..BenchConfig::default()
        };
        let s = sweep(
            &cfg,
            &[CwMethod::Naive, CwMethod::CasLt],
            &[10, 20],
            |x| x,
            |_, _| {},
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].points.len(), 2);
        assert_eq!(s[1].points[1].0, 20.0);
    }
}
