//! Ablation experiments for the design choices DESIGN.md calls out —
//! beyond the paper's figures, these isolate *why* CAS-LT wins.

use pram_algos::bfs::bfs_with_arbiter;
use pram_algos::cc::cc_with_arbiter;
use pram_algos::max::max_index_with_arbiter;
use pram_algos::{bfs, CwMethod};
use pram_core::{
    AlwaysRmwCasLtArray, CasLtArray, CasLtArray64, CountingArbiter, GatekeeperArray, LockArray,
    PaddedCasLtArray,
};

use crate::{make_graph, ms, pool, time_median, BenchConfig, FigureResult, ScaleProfile, Series};

fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

fn scale_n(cfg: &BenchConfig) -> usize {
    match cfg.scale {
        ScaleProfile::Quick => 800,
        ScaleProfile::Default => 4_000,
        ScaleProfile::Paper => 30_000,
    }
}

/// A named timed variant within a single-point ablation.
type Variant<'a> = (&'a str, Box<dyn FnMut() + 'a>);

/// Time one closure per variant at a single operating point.
fn single_point(
    id: &str,
    title: &str,
    cfg: &BenchConfig,
    variants: Vec<Variant<'_>>,
) -> FigureResult {
    let series = variants
        .into_iter()
        .map(|(name, mut f)| Series {
            name: name.into(),
            points: vec![(1.0, ms(time_median(cfg.reps, &mut f)))],
        })
        .collect();
    FigureResult {
        id: id.into(),
        title: title.into(),
        x_label: "point".into(),
        series,
    }
}

/// `ablate_fastpath` — is the pre-CAS load check the win? Max kernel with
/// the full CAS-LT claim vs a variant whose every claim issues an RMW
/// (`fetch_max`) vs the gatekeeper. If the paper's §5 mechanism is right,
/// full CAS-LT ≪ always-RMW ≈ gatekeeper.
pub fn ablate_fastpath(cfg: &BenchConfig) -> FigureResult {
    let n = scale_n(cfg);
    let values = max_values(n);
    let p = pool(cfg.threads);
    let v1 = values.clone();
    let v2 = values.clone();
    let v3 = values;
    let p1 = pool(cfg.threads);
    let p2 = pool(cfg.threads);
    single_point(
        "ablate_fastpath",
        &format!("max (n = {n}): CAS-LT fast path on/off vs gatekeeper"),
        cfg,
        vec![
            (
                "gatekeeper",
                Box::new(move || {
                    let arb = GatekeeperArray::new(v1.len());
                    max_index_with_arbiter(&v1, &arb, &p);
                }),
            ),
            (
                "caslt-always-rmw",
                Box::new(move || {
                    let arb = AlwaysRmwCasLtArray::new(v2.len());
                    max_index_with_arbiter(&v2, &arb, &p1);
                }),
            ),
            (
                "caslt",
                Box::new(move || {
                    let arb = CasLtArray::new(v3.len());
                    max_index_with_arbiter(&v3, &arb, &p2);
                }),
            ),
        ],
    )
}

/// `ablate_padding` — packed vs cache-line-padded claim words on the Max
/// kernel (dense targets: padding hurts reach) — the layout choice
/// [`pram_core::PaddedCasLtArray`] documents.
pub fn ablate_padding(cfg: &BenchConfig) -> FigureResult {
    let n = scale_n(cfg);
    let values = max_values(n);
    let v1 = values.clone();
    let v2 = values;
    let p1 = pool(cfg.threads);
    let p2 = pool(cfg.threads);
    single_point(
        "ablate_padding",
        &format!("max (n = {n}): packed vs cache-line-padded claim words"),
        cfg,
        vec![
            (
                "caslt-packed",
                Box::new(move || {
                    let arb = CasLtArray::new(v1.len());
                    max_index_with_arbiter(&v1, &arb, &p1);
                }),
            ),
            (
                "caslt-padded",
                Box::new(move || {
                    let arb = PaddedCasLtArray::new(v2.len());
                    max_index_with_arbiter(&v2, &arb, &p2);
                }),
            ),
        ],
    )
}

/// `ablate_gatekeeper_skip` — the paper's §5 mitigation: does a load-first
/// gatekeeper close the gap to CAS-LT on BFS? (It removes the serialized
/// RMWs but keeps the per-round reset pass.)
pub fn ablate_gatekeeper_skip(cfg: &BenchConfig) -> FigureResult {
    let (v, e) = match cfg.scale {
        ScaleProfile::Quick => (2_000, 8_000),
        ScaleProfile::Default => (20_000, 150_000),
        ScaleProfile::Paper => (100_000, 10_000_000),
    };
    let g = make_graph(v, e, cfg.seed);
    let p = pool(cfg.threads);
    let series = [
        CwMethod::Gatekeeper,
        CwMethod::GatekeeperSkip,
        CwMethod::CasLt,
    ]
    .iter()
    .map(|&m| Series {
        name: m.to_string(),
        points: vec![(
            1.0,
            ms(time_median(cfg.reps, || {
                bfs(&g, 0, m, &p);
            })),
        )],
    })
    .collect();
    FigureResult {
        id: "ablate_gatekeeper_skip".into(),
        title: format!("BFS ({v} vertices, {e} edges): gatekeeper skip mitigation"),
        x_label: "point".into(),
        series,
    }
}

/// `ablate_lock` — the critical-section strawman (§4's "trivial but bad
/// solution") against CAS-LT on the Max kernel.
pub fn ablate_lock(cfg: &BenchConfig) -> FigureResult {
    let n = scale_n(cfg);
    let values = max_values(n);
    let v1 = values.clone();
    let v2 = values;
    let p1 = pool(cfg.threads);
    let p2 = pool(cfg.threads);
    single_point(
        "ablate_lock",
        &format!("max (n = {n}): per-cell mutex vs CAS-LT"),
        cfg,
        vec![
            (
                "lock",
                Box::new(move || {
                    let arb = LockArray::new(v1.len());
                    max_index_with_arbiter(&v1, &arb, &p1);
                }),
            ),
            (
                "caslt",
                Box::new(move || {
                    let arb = CasLtArray::new(v2.len());
                    max_index_with_arbiter(&v2, &arb, &p2);
                }),
            ),
        ],
    )
}

/// `ablate_width` — 32-bit vs 64-bit claim words (half the cache reach vs
/// an inexhaustible round space).
pub fn ablate_width(cfg: &BenchConfig) -> FigureResult {
    let n = scale_n(cfg);
    let values = max_values(n);
    let v1 = values.clone();
    let v2 = values;
    let p1 = pool(cfg.threads);
    let p2 = pool(cfg.threads);
    single_point(
        "ablate_width",
        &format!("max (n = {n}): u32 vs u64 claim words"),
        cfg,
        vec![
            (
                "caslt-u32",
                Box::new(move || {
                    let arb = CasLtArray::new(v1.len());
                    max_index_with_arbiter(&v1, &arb, &p1);
                }),
            ),
            (
                "caslt-u64",
                Box::new(move || {
                    let arb = CasLtArray64::new(v2.len());
                    max_index_with_arbiter(&v2, &arb, &p2);
                }),
            ),
        ],
    )
}

/// A profiling report (not a timing): claim-level statistics of each
/// kernel under CAS-LT, making the §6 mechanism measurable — attempts vs
/// winning writes, i.e. how much work arbitration filters out.
pub fn claim_statistics(cfg: &BenchConfig) -> String {
    use std::fmt::Write;
    let p = pool(cfg.threads);
    let mut out = String::from("== claim statistics under CAS-LT (CountingArbiter) ==\n");

    let n = scale_n(cfg);
    let values = max_values(n);
    let arb = CountingArbiter::new(CasLtArray::new(n));
    max_index_with_arbiter(&values, &arb, &p);
    let s = arb.stats().snapshot();
    let _ = writeln!(
        out,
        "max (n = {n}): attempts = {}, wins = {} ({:.4}% of claims commit)",
        s.attempts,
        s.wins,
        100.0 * s.wins as f64 / s.attempts.max(1) as f64
    );

    let (v, e) = match cfg.scale {
        ScaleProfile::Quick => (2_000, 8_000),
        _ => (10_000, 80_000),
    };
    let g = make_graph(v, e, cfg.seed);
    let arb = CountingArbiter::new(CasLtArray::new(v));
    bfs_with_arbiter(&g, 0, &arb, &p);
    let s = arb.stats().snapshot();
    let _ = writeln!(
        out,
        "bfs ({v} v, {e} e): attempts = {}, wins = {} (claim multiplicity {:.2})",
        s.attempts,
        s.wins,
        s.attempts as f64 / s.wins.max(1) as f64
    );

    let arb = CountingArbiter::new(CasLtArray::new(v));
    cc_with_arbiter(&g, &arb, &p);
    let s = arb.stats().snapshot();
    let _ = writeln!(
        out,
        "cc  ({v} v, {e} e): attempts = {}, wins = {} (claim multiplicity {:.2})",
        s.attempts,
        s.wins,
        s.attempts as f64 / s.wins.max(1) as f64
    );
    out
}

/// All ablations in order.
pub fn all(cfg: &BenchConfig) -> Vec<FigureResult> {
    vec![
        ablate_fastpath(cfg),
        ablate_padding(cfg),
        ablate_gatekeeper_skip(cfg),
        ablate_lock(cfg),
        ablate_width(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BenchConfig {
        BenchConfig {
            scale: ScaleProfile::Quick,
            threads: 2,
            reps: 1,
            ..BenchConfig::default()
        }
    }

    #[test]
    fn ablations_regenerate_at_quick_scale() {
        let cfg = quick_cfg();
        for fig in all(&cfg) {
            assert!(fig.series.len() >= 2, "{}", fig.id);
            for s in &fig.series {
                assert_eq!(s.points.len(), 1);
                assert!(s.points[0].1 > 0.0);
            }
        }
    }

    #[test]
    fn claim_statistics_report_is_complete() {
        let cfg = quick_cfg();
        let report = claim_statistics(&cfg);
        assert!(report.contains("max (n = 800)"));
        assert!(report.contains("bfs"));
        assert!(report.contains("cc "));
    }
}
