//! Criterion counterparts of the extension experiments (`pram_bench::ext`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pram_algos::matching::maximal_matching;
use pram_algos::reduce::max_index_tournament;
use pram_algos::{list_rank, max_index, CwMethod};
use pram_bench::make_graph;
use pram_exec::ThreadPool;

const THREADS: usize = 4;

fn tuned<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

/// O(1)-depth CRCW max vs O(log n)-depth EREW tournament (the §8
/// future-work comparison); the crossover should be visible across sizes.
fn ext_crew_vs_crcw(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "ext_crew_vs_crcw");
    for n in [64usize, 512, 2_048] {
        let values = max_values(n);
        g.bench_with_input(BenchmarkId::new("crcw-caslt", n), &n, |b, _| {
            b.iter(|| max_index(&values, CwMethod::CasLt, &pool));
        });
        g.bench_with_input(BenchmarkId::new("erew-tournament", n), &n, |b, _| {
            b.iter(|| max_index_tournament(&values, &pool));
        });
    }
    g.finish();
}

/// CREW pointer-jumping list ranking.
fn ext_list_rank(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "ext_list_rank");
    for n in [4_000usize, 16_000] {
        let (next, _) = pram_algos::list_rank::random_list(n, 42);
        g.bench_with_input(BenchmarkId::new("pointer-jumping", n), &n, |b, _| {
            b.iter(|| list_rank(&next, &pool));
        });
    }
    g.finish();
}

/// Maximal matching (two-cell arbitrary CW) across methods.
fn ext_matching(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let graph = make_graph(4_000, 20_000, 42);
    let mut g = tuned(c, "ext_matching");
    for m in [CwMethod::Gatekeeper, CwMethod::Lock, CwMethod::CasLt] {
        g.bench_function(m.to_string(), |b| {
            b.iter(|| maximal_matching(&graph, m, &pool));
        });
    }
    g.finish();
}

/// Bitmap vs word gatekeeper vs CAS-LT on the Max kernel.
fn ablate_bitmap(c: &mut Criterion) {
    use pram_algos::max::max_index_with_arbiter;
    let pool = ThreadPool::new(THREADS);
    let n = 1_500;
    let values = max_values(n);
    let mut g = tuned(c, "ablate_bitmap");
    g.bench_function("gatekeeper-u32", |b| {
        b.iter(|| max_index_with_arbiter(&values, &pram_core::GatekeeperArray::new(n), &pool))
    });
    g.bench_function("gatekeeper-bitmap", |b| {
        b.iter(|| max_index_with_arbiter(&values, &pram_core::BitGatekeeperArray::new(n), &pool))
    });
    g.bench_function("caslt", |b| {
        b.iter(|| max_index_with_arbiter(&values, &pram_core::CasLtArray::new(n), &pool))
    });
    g.finish();
}

criterion_group!(
    extensions,
    ext_crew_vs_crcw,
    ext_list_rank,
    ext_matching,
    ablate_bitmap
);
criterion_main!(extensions);
