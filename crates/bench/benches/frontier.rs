//! Frontier-strategy bench group: dense scan vs sparse top-down vs
//! direction-optimizing BFS, across the single-winner concurrent-write
//! methods, on three frontier shapes:
//!
//! * `rmat18` — skewed R-MAT (2^18 vertices): frontiers explode after one
//!   hop, so the direction-optimizing switch pulls for the few dense levels
//!   and avoids both the per-level O(n) scan and most edge traversals.
//! * `path14` — a path (2^14 vertices): maximal depth, one-vertex
//!   frontiers. The dense scan pays O(n) *per level* (O(n²) total); the
//!   sparse strategies pay O(1) per level plus barrier overhead.
//! * `star18` — a star (2^18 vertices): a single, maximally dense level.
//!
//! Also times dense vs worklist connected components on `rmat18`.
//!
//! Run with `cargo bench -p pram-bench --bench frontier`; set
//! `PRAM_BENCH_THREADS` (a single count or a comma-separated sweep list,
//! e.g. `1,2,4`) / `PRAM_BENCH_REPS` to override the defaults. Every
//! result row records the thread count it ran under. Writes
//! `BENCH_frontier.json` into the repository root (override the
//! directory with `PRAM_BENCH_OUT`).

use std::io::Write as _;
use std::path::PathBuf;

use pram_algos::bfs::{bfs_with_strategy_rev, BfsStrategy, DIRECTION_ALPHA, DIRECTION_BETA};
use pram_algos::{connected_components, connected_components_worklist, CwMethod};
use pram_bench::{ms, telemetry_columns, time_median};
use pram_exec::{PoolConfig, ThreadPool};
use pram_graph::{CsrGraph, GraphGen};

/// The four single-winner methods the figure sweeps (CAS-LT-padded is an
/// ablation, covered in `ablations.rs`).
const METHODS: [CwMethod; 4] = [
    CwMethod::Gatekeeper,
    CwMethod::GatekeeperSkip,
    CwMethod::CasLt,
    CwMethod::Lock,
];

struct Workload {
    name: &'static str,
    graph: CsrGraph,
    source: u32,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `PRAM_BENCH_THREADS` as a single count or a comma-separated sweep
/// list; defaults to the machine's available parallelism.
fn env_threads_list() -> Vec<usize> {
    let ncpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut list = std::env::var("PRAM_BENCH_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![ncpus]);
    list.sort_unstable();
    list.dedup();
    list
}

/// Highest-degree vertex — a deterministic, always-connected source.
fn hub(g: &CsrGraph) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&v| g.offsets()[v + 1] - g.offsets()[v])
        .unwrap_or(0) as u32
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads_list = env_threads_list();
    let reps = env_usize("PRAM_BENCH_REPS", if quick { 1 } else { 3 });
    let rmat_scale: u32 = if quick { 12 } else { 18 };
    let path_n: usize = if quick { 1 << 10 } else { 1 << 14 };
    let star_n: usize = if quick { 1 << 12 } else { 1 << 18 };

    eprintln!("frontier bench: threads={threads_list:?} reps={reps} (median reported)");

    let rmat_n = 1usize << rmat_scale;
    let workloads = [
        Workload {
            name: "rmat18",
            graph: CsrGraph::from_edges(
                rmat_n,
                &GraphGen::new(42).rmat_standard(rmat_scale, rmat_n * 16),
                true,
            ),
            source: 0, // patched to the hub below
        },
        Workload {
            name: "path14",
            graph: CsrGraph::from_edges(path_n, &GraphGen::path(path_n), true),
            source: 0,
        },
        Workload {
            name: "star18",
            graph: CsrGraph::from_edges(star_n, &GraphGen::star(star_n), true),
            source: 0,
        },
    ];

    // The in-edge views are graph preparation (like the CSR builds
    // themselves), shared by every pull-capable traversal — not timed,
    // and computed once across the whole thread sweep.
    let revs: Vec<_> = workloads.iter().map(|w| w.graph.reverse()).collect();

    let mut rows: Vec<String> = Vec::new();
    // (threads/graph/strategy) -> median ms under CAS-LT, for the summary.
    let mut caslt_ms: Vec<(String, f64)> = Vec::new();

    for &threads in &threads_list {
        let pool = ThreadPool::new(threads);
        // Telemetry rides on a separate pool so the timed runs stay on the
        // plain configuration; each row gets one untimed profiling run.
        let profile_pool = ThreadPool::with_config(PoolConfig::new(threads).telemetry(true));
        for (w, rev) in workloads.iter().zip(&revs) {
            let g = &w.graph;
            let source = if w.name == "rmat18" { hub(g) } else { w.source };
            eprintln!(
                "-- {} @ T={threads}: n={} m={} source={}",
                w.name,
                g.num_vertices(),
                g.num_directed_edges(),
                source
            );
            for method in METHODS {
                for strategy in BfsStrategy::ALL {
                    let t = time_median(reps, || {
                        std::hint::black_box(bfs_with_strategy_rev(
                            g, rev, source, method, strategy, &pool,
                        ));
                    });
                    let t = ms(t);
                    eprintln!(
                        "   bfs/{}/{method}/{strategy}/T={threads}: {t:.3} ms",
                        w.name
                    );
                    std::hint::black_box(bfs_with_strategy_rev(
                        g,
                        rev,
                        source,
                        method,
                        strategy,
                        &profile_pool,
                    ));
                    rows.push(format!(
                        "{{\"kernel\": \"bfs\", \"graph\": \"{}\", \"method\": \"{method}\", \
                         \"strategy\": \"{strategy}\", \"threads\": {threads}, \"ms\": {t:.4}, {}}}",
                        w.name,
                        telemetry_columns(&profile_pool)
                    ));
                    if method == CwMethod::CasLt {
                        caslt_ms.push((format!("{}/{strategy}/T={threads}", w.name), t));
                    }
                }
            }
        }

        // CC: dense edge list vs active-edge worklist on the skewed graph.
        let g = &workloads[0].graph;
        for method in METHODS {
            for (variant, run) in [
                ("dense", connected_components as fn(_, _, _) -> _),
                (
                    "worklist",
                    connected_components_worklist as fn(_, _, _) -> _,
                ),
            ] {
                let t = time_median(reps, || {
                    std::hint::black_box(run(g, method, &pool));
                });
                let t = ms(t);
                eprintln!("   cc/rmat18/{method}/{variant}/T={threads}: {t:.3} ms");
                std::hint::black_box(run(g, method, &profile_pool));
                rows.push(format!(
                    "{{\"kernel\": \"cc\", \"graph\": \"rmat18\", \"method\": \"{method}\", \
                     \"strategy\": \"{variant}\", \"threads\": {threads}, \"ms\": {t:.4}, {}}}",
                    telemetry_columns(&profile_pool)
                ));
            }
        }
    }

    for (k, t) in &caslt_ms {
        eprintln!("summary cas-lt {k}: {t:.3} ms");
    }

    let out_dir = std::env::var("PRAM_BENCH_OUT").map_or_else(
        |_| {
            // benches run with CWD = crate root (crates/bench); the JSON
            // belongs two levels up, next to EXPERIMENTS.md.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        },
        PathBuf::from,
    );
    let path = out_dir.join("BENCH_frontier.json");
    let graphs: Vec<String> = workloads
        .iter()
        .map(|w| {
            format!(
                "{{\"name\": \"{}\", \"vertices\": {}, \"directed_edges\": {}}}",
                w.name,
                w.graph.num_vertices(),
                w.graph.num_directed_edges()
            )
        })
        .collect();
    let threads_json: Vec<String> = threads_list.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"frontier\",\n  \"command\": \"cargo bench -p pram-bench --bench frontier\",\n  \
         \"threads_swept\": [{threads_swept}],\n  \"reps\": {reps},\n  \"quick\": {quick},\n  \
         \"direction_alpha\": {DIRECTION_ALPHA},\n  \"direction_beta\": {DIRECTION_BETA},\n  \
         \"graphs\": [\n    {}\n  ],\n  \"results\": [\n    {}\n  ]\n}}\n",
        graphs.join(",\n    "),
        rows.join(",\n    "),
        threads_swept = threads_json.join(", ")
    );
    let mut f = std::fs::File::create(&path).expect("create BENCH_frontier.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_frontier.json");
    eprintln!("wrote {}", path.display());
}
