//! Criterion counterparts of the ablation suite (see
//! `pram_bench::ablations` for the rationale of each).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pram_algos::max::max_index_with_arbiter;
use pram_algos::{bfs, CwMethod};
use pram_bench::make_graph;
use pram_core::{
    AlwaysRmwCasLtArray, CasLtArray, CasLtArray64, GatekeeperArray, LockArray, PaddedCasLtArray,
};
use pram_exec::ThreadPool;

const THREADS: usize = 4;
const N: usize = 1_500;

fn tuned<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

/// Is the pre-CAS load check the win? (paper §5 mechanism)
fn ablate_fastpath(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let values = max_values(N);
    let mut g = tuned(c, "ablate_fastpath");
    g.bench_function("caslt", |b| {
        b.iter(|| max_index_with_arbiter(&values, &CasLtArray::new(N), &pool))
    });
    g.bench_function("caslt-always-rmw", |b| {
        b.iter(|| max_index_with_arbiter(&values, &AlwaysRmwCasLtArray::new(N), &pool))
    });
    g.bench_function("gatekeeper", |b| {
        b.iter(|| max_index_with_arbiter(&values, &GatekeeperArray::new(N), &pool))
    });
    g.finish();
}

/// Packed vs cache-line-padded claim words.
fn ablate_padding(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let values = max_values(N);
    let mut g = tuned(c, "ablate_padding");
    g.bench_function("packed", |b| {
        b.iter(|| max_index_with_arbiter(&values, &CasLtArray::new(N), &pool))
    });
    g.bench_function("padded", |b| {
        b.iter(|| max_index_with_arbiter(&values, &PaddedCasLtArray::new(N), &pool))
    });
    g.finish();
}

/// The paper's gatekeeper-skip mitigation on BFS.
fn ablate_gatekeeper_skip(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let graph = make_graph(4_000, 20_000, 42);
    let mut g = tuned(c, "ablate_gatekeeper_skip");
    for m in [
        CwMethod::Gatekeeper,
        CwMethod::GatekeeperSkip,
        CwMethod::CasLt,
    ] {
        g.bench_function(m.to_string(), |b| b.iter(|| bfs(&graph, 0, m, &pool)));
    }
    g.finish();
}

/// The critical-section strawman vs CAS-LT.
fn ablate_lock(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let values = max_values(N);
    let mut g = tuned(c, "ablate_lock");
    g.bench_function("lock", |b| {
        b.iter(|| max_index_with_arbiter(&values, &LockArray::new(N), &pool))
    });
    g.bench_function("caslt", |b| {
        b.iter(|| max_index_with_arbiter(&values, &CasLtArray::new(N), &pool))
    });
    g.finish();
}

/// 32-bit vs 64-bit claim words.
fn ablate_width(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let values = max_values(N);
    let mut g = tuned(c, "ablate_width");
    g.bench_function("u32", |b| {
        b.iter(|| max_index_with_arbiter(&values, &CasLtArray::new(N), &pool))
    });
    g.bench_function("u64", |b| {
        b.iter(|| max_index_with_arbiter(&values, &CasLtArray64::new(N), &pool))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablate_fastpath,
    ablate_padding,
    ablate_gatekeeper_skip,
    ablate_lock,
    ablate_width
);
criterion_main!(ablations);
