//! Criterion counterparts of the paper's Figures 5–12 — one group per
//! figure, at reduced sizes (Criterion repeats each point many times; the
//! `figures` binary regenerates the full sweeps).
//!
//! Group names map to figures: `fig05_max_size` ↔ Figure 5, …,
//! `fig12_cc_threads` ↔ Figure 12.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pram_algos::{bfs, connected_components, max_index, CwMethod};
use pram_bench::make_graph;
use pram_exec::ThreadPool;

const THREADS: usize = 4;

fn tuned<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

fn max_values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

/// Figure 5: Max, time vs list size (fixed threads).
fn fig05_max_size(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "fig05_max_size");
    for n in [500usize, 1_000, 2_000] {
        let values = max_values(n);
        for m in CwMethod::PAPER {
            g.bench_with_input(BenchmarkId::new(m.to_string(), n), &n, |b, _| {
                b.iter(|| max_index(&values, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 6: Max, time vs threads (fixed size).
fn fig06_max_threads(c: &mut Criterion) {
    let values = max_values(1_500);
    let mut g = tuned(c, "fig06_max_threads");
    for t in [1usize, 2, 4] {
        let pool = ThreadPool::new(t);
        for m in CwMethod::PAPER {
            g.bench_with_input(BenchmarkId::new(m.to_string(), t), &t, |b, _| {
                b.iter(|| max_index(&values, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 7: BFS, time vs edges (fixed vertices).
fn fig07_bfs_edges(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "fig07_bfs_edges");
    for e in [10_000usize, 20_000, 40_000] {
        let graph = make_graph(4_000, e, 42);
        for m in CwMethod::PAPER {
            g.bench_with_input(BenchmarkId::new(m.to_string(), e), &e, |b, _| {
                b.iter(|| bfs(&graph, 0, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 8: BFS, time vs vertices (fixed edges).
fn fig08_bfs_verts(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "fig08_bfs_verts");
    for v in [2_000usize, 4_000, 8_000] {
        let graph = make_graph(v, 20_000, 42);
        for m in CwMethod::PAPER {
            g.bench_with_input(BenchmarkId::new(m.to_string(), v), &v, |b, _| {
                b.iter(|| bfs(&graph, 0, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 9: BFS, time vs threads (fixed graph).
fn fig09_bfs_threads(c: &mut Criterion) {
    let graph = make_graph(4_000, 20_000, 42);
    let mut g = tuned(c, "fig09_bfs_threads");
    for t in [1usize, 2, 4] {
        let pool = ThreadPool::new(t);
        for m in CwMethod::PAPER {
            g.bench_with_input(BenchmarkId::new(m.to_string(), t), &t, |b, _| {
                b.iter(|| bfs(&graph, 0, m, &pool));
            });
        }
    }
    g.finish();
}

const CC_METHODS: [CwMethod; 2] = [CwMethod::Gatekeeper, CwMethod::CasLt];

/// Figure 10: CC, time vs edges (fixed vertices).
fn fig10_cc_edges(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "fig10_cc_edges");
    for e in [4_000usize, 8_000, 16_000] {
        let graph = make_graph(2_000, e, 42);
        for m in CC_METHODS {
            g.bench_with_input(BenchmarkId::new(m.to_string(), e), &e, |b, _| {
                b.iter(|| connected_components(&graph, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 11: CC, time vs vertices (fixed edges).
fn fig11_cc_verts(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "fig11_cc_verts");
    for v in [1_000usize, 2_000, 4_000] {
        let graph = make_graph(v, 8_000, 42);
        for m in CC_METHODS {
            g.bench_with_input(BenchmarkId::new(m.to_string(), v), &v, |b, _| {
                b.iter(|| connected_components(&graph, m, &pool));
            });
        }
    }
    g.finish();
}

/// Figure 12: CC, time vs threads (fixed graph).
fn fig12_cc_threads(c: &mut Criterion) {
    let graph = make_graph(2_000, 8_000, 42);
    let mut g = tuned(c, "fig12_cc_threads");
    for t in [1usize, 2, 4] {
        let pool = ThreadPool::new(t);
        for m in CC_METHODS {
            g.bench_with_input(BenchmarkId::new(m.to_string(), t), &t, |b, _| {
                b.iter(|| connected_components(&graph, m, &pool));
            });
        }
    }
    g.finish();
}

criterion_group!(
    figures,
    fig05_max_size,
    fig06_max_threads,
    fig07_bfs_edges,
    fig08_bfs_verts,
    fig09_bfs_threads,
    fig10_cc_edges,
    fig11_cc_verts,
    fig12_cc_threads
);
criterion_main!(figures);
