//! Microbenchmarks of the arbitration primitives themselves — the per-claim
//! costs that §6's asymptotic argument is built from.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pram_core::{
    CasLtCell, GatekeeperCell, GatekeeperSkipCell, LockCell, PriorityCell, Round, RoundCounter,
};

fn tuned<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

/// The losing claim — the operation each method executes millions of times
/// in the Max kernel after a winner exists. CAS-LT's is one relaxed load;
/// the gatekeeper's is a full RMW.
fn losing_claim(c: &mut Criterion) {
    let mut g = tuned(c, "losing_claim");
    let round = Round::FIRST;

    let cell = CasLtCell::new();
    cell.try_claim(round);
    g.bench_function("caslt_fast_path", |b| {
        b.iter(|| std::hint::black_box(cell.try_claim(round)))
    });

    let cell = GatekeeperCell::new();
    cell.try_claim_once();
    g.bench_function("gatekeeper_rmw", |b| {
        b.iter(|| std::hint::black_box(cell.try_claim_once()))
    });

    let cell = GatekeeperSkipCell::new();
    cell.try_claim_once();
    g.bench_function("gatekeeper_skip_load", |b| {
        b.iter(|| std::hint::black_box(cell.try_claim_once()))
    });

    let cell = LockCell::new();
    cell.try_claim(round);
    g.bench_function("lock", |b| {
        b.iter(|| std::hint::black_box(cell.try_claim(round)))
    });
    g.finish();
}

/// The winning claim: fresh round every iteration, so the CAS executes.
fn winning_claim(c: &mut Criterion) {
    let mut g = tuned(c, "winning_claim");

    let cell = CasLtCell::new();
    let mut rounds = RoundCounter::new();
    g.bench_function("caslt_cas", |b| {
        b.iter(|| {
            let r = rounds.next_round_or_reset(|| {});
            std::hint::black_box(cell.try_claim(r))
        })
    });

    let cell = LockCell::new();
    let mut rounds = RoundCounter::new();
    g.bench_function("lock", |b| {
        b.iter(|| {
            let r = rounds.next_round_or_reset(|| {});
            std::hint::black_box(cell.try_claim(r))
        })
    });

    let cell = PriorityCell::new();
    let mut rounds = RoundCounter::new();
    g.bench_function("priority_offer", |b| {
        b.iter(|| {
            let r = rounds.next_round_or_reset(|| {});
            std::hint::black_box(cell.offer(r, 1))
        })
    });
    g.finish();
}

/// What the gatekeeper pays that CAS-LT does not: re-arming 64K cells
/// (the per-round reset pass) vs bumping a round counter.
fn rearm_cost(c: &mut Criterion) {
    use pram_core::{GatekeeperArray, SliceArbiter};
    let mut g = tuned(c, "rearm_64k_cells");
    let gate = GatekeeperArray::new(65_536);
    g.bench_function("gatekeeper_reset_pass", |b| b.iter(|| gate.reset_all()));
    let mut rounds = RoundCounter::new();
    g.bench_function("caslt_round_bump", |b| {
        b.iter(|| std::hint::black_box(rounds.next_round_or_reset(|| {})))
    });
    g.finish();
}

criterion_group!(primitives, losing_claim, winning_claim, rearm_cost);
criterion_main!(primitives);
