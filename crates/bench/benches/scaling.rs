//! Thread-scaling bench tier: team size × barrier topology × irregular
//! loop schedule, over the frontier BFS kernels whose round structure
//! stresses each axis differently:
//!
//! * `rmat18` + direction-optimizing BFS — few rounds, huge skewed
//!   frontiers: schedule quality (dynamic cursor vs work stealing)
//!   dominates, barriers are rare.
//! * `path14` + top-down BFS — ~2^14 rounds of one-vertex frontiers:
//!   pure barrier latency, executed tens of thousands of times; the
//!   barrier topology (central vs dissemination) is the whole signal.
//!
//! Both run under CAS-LT (the paper's method; the method axis is
//! `frontier.rs`'s job). Every `(barrier, schedule)` cell is swept over
//! the thread list and reported with its **self-relative** speedup
//! (time at the smallest team ÷ time at T), so topologies are compared
//! by how they *scale*, not by their 1-thread constant.
//!
//! Run with `cargo bench -p pram-bench --bench scaling`; env overrides:
//! `PRAM_BENCH_THREADS` (comma-separated sweep list, e.g. `1,2,4,8`),
//! `PRAM_BENCH_REPS`, `PRAM_BENCH_OUT`. `--quick` shrinks graphs and the
//! sweep for CI smoke runs. Writes `BENCH_scaling.json` into the
//! repository root.

use std::io::Write as _;
use std::path::PathBuf;

use pram_algos::bfs::{bfs_with_strategy_rev, BfsStrategy};
use pram_algos::CwMethod;
use pram_bench::{ms, telemetry_columns, time_median};
use pram_core::{CasLtArray, GatekeeperArray, SliceArbiter};
use pram_exec::{BarrierKind, CwCounters, PoolConfig, RoundReport, ScheduleKind, ThreadPool};
use pram_graph::{CsrGraph, GraphGen};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `PRAM_BENCH_THREADS` as a comma-separated sweep list; always includes
/// the self-relative baseline team of 1.
fn threads_sweep(default: Vec<usize>) -> Vec<usize> {
    let mut list = std::env::var("PRAM_BENCH_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or(default);
    if !list.contains(&1) {
        list.push(1);
    }
    list.sort_unstable();
    list.dedup();
    list
}

/// Highest-degree vertex — a deterministic, always-connected source.
fn hub(g: &CsrGraph) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&v| g.offsets()[v + 1] - g.offsets()[v])
        .unwrap_or(0) as u32
}

fn barrier_name(kind: BarrierKind) -> &'static str {
    match kind {
        BarrierKind::Central => "central",
        BarrierKind::Dissemination => "dissemination",
    }
}

fn schedule_name(kind: ScheduleKind) -> &'static str {
    match kind {
        ScheduleKind::Dynamic => "dynamic",
        ScheduleKind::Stealing => "stealing",
    }
}

struct Workload {
    name: &'static str,
    graph: CsrGraph,
    strategy: BfsStrategy,
}

/// Sum the claim-counter deltas over a drained report's rounds.
fn sum_cw(report: &RoundReport) -> CwCounters {
    let mut cw = CwCounters::default();
    for r in &report.rounds {
        cw.add(&r.cw);
    }
    cw
}

/// Fully contended microbench behind the "telemetry_mechanism" section:
/// for each team size, every member claims every cell of a small array
/// for a fixed number of rounds, under CAS-LT (re-arms free on the round
/// advance) and under the gatekeeper (explicit reset pass per round).
/// Returns one JSON row per (method, team size).
fn mechanism_rows(threads_list: &[usize]) -> Vec<String> {
    const CELLS: usize = 64;
    const ROUNDS: u32 = 30;
    let cell_rounds = (CELLS as u64) * u64::from(ROUNDS);
    let mut out = Vec::new();
    for &t in threads_list {
        let pool = ThreadPool::with_config(PoolConfig::new(t).telemetry(true));

        let caslt = CasLtArray::new(CELLS);
        pool.run(|ctx| {
            ctx.converge_rounds(ROUNDS, |round, flag| {
                ctx.annotate_round("mech-caslt");
                for i in 0..CELLS {
                    caslt.try_claim(i, round);
                }
                if round.get() < ROUNDS {
                    flag.set();
                }
            });
        });
        let cw = sum_cw(&pool.take_round_report());
        assert_eq!(cw.wins, cell_rounds, "one CAS-LT winner per (cell, round)");
        assert_eq!(
            cw.resolutions(),
            cell_rounds * t as u64,
            "every claim resolved"
        );
        eprintln!(
            "   mech/caslt/T={t}: fast-path hit rate {:.3}, cas retry rate {:.3}",
            cw.fast_path_hit_rate(),
            cw.cas_retry_rate()
        );
        out.push(format!(
            "{{\"method\": \"caslt\", \"threads\": {t}, \"cells\": {CELLS}, \
             \"rounds\": {ROUNDS}, \"fast_path_hit_rate\": {:.4}, \
             \"cas_retry_rate\": {:.4}, \"atomics_per_cell_round\": {:.4}}}",
            cw.fast_path_hit_rate(),
            cw.cas_retry_rate(),
            cw.cas_attempts as f64 / cell_rounds as f64
        ));

        let gate = GatekeeperArray::new(CELLS);
        pool.run(|ctx| {
            ctx.converge_rounds(ROUNDS, |round, flag| {
                ctx.annotate_round("mech-gatekeeper");
                for i in 0..CELLS {
                    gate.try_claim(i, round);
                }
                // Parallel re-arm pass: disjoint shares after a barrier.
                ctx.barrier();
                let (id, n) = (ctx.thread_id(), ctx.num_threads());
                gate.reset_range(id * CELLS / n..(id + 1) * CELLS / n);
                if round.get() < ROUNDS {
                    flag.set();
                }
            });
        });
        let cw = sum_cw(&pool.take_round_report());
        assert_eq!(
            cw.gatekeeper_rmws,
            cell_rounds * t as u64,
            "the gatekeeper fetch-adds exactly T times per (cell, round)"
        );
        assert_eq!(cw.wins, cell_rounds);
        eprintln!(
            "   mech/gatekeeper/T={t}: {} rmws ({} per cell-round), fast-path hit rate {:.3}",
            cw.gatekeeper_rmws,
            t,
            cw.fast_path_hit_rate()
        );
        out.push(format!(
            "{{\"method\": \"gatekeeper\", \"threads\": {t}, \"cells\": {CELLS}, \
             \"rounds\": {ROUNDS}, \"fast_path_hit_rate\": {:.4}, \
             \"cas_retry_rate\": {:.4}, \"atomics_per_cell_round\": {:.4}}}",
            cw.fast_path_hit_rate(),
            cw.cas_retry_rate(),
            cw.gatekeeper_rmws as f64 / cell_rounds as f64
        ));
    }
    out
}

struct Row {
    graph: &'static str,
    strategy: BfsStrategy,
    barrier: BarrierKind,
    schedule: ScheduleKind,
    threads: usize,
    ms: f64,
    /// Pre-rendered telemetry rate columns from the untimed profiling run.
    telem: String,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ncpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Powers of two up to at least 4: on small boxes the sweep is
    // deliberately oversubscribed — that regime is exactly what the
    // passive backoff and the O(log T) barrier are for.
    let default_sweep: Vec<usize> = if quick {
        vec![1, 2]
    } else {
        let top = ncpus.max(4);
        (0..)
            .map(|k| 1usize << k)
            .take_while(|&t| t <= top)
            .collect()
    };
    let threads_list = threads_sweep(default_sweep);
    let reps = env_usize("PRAM_BENCH_REPS", if quick { 1 } else { 3 });
    let rmat_scale: u32 = if quick { 11 } else { 18 };
    let path_n: usize = if quick { 1 << 9 } else { 1 << 14 };
    let method = CwMethod::CasLt;

    eprintln!(
        "scaling bench: threads={threads_list:?} reps={reps} machine_parallelism={ncpus} \
         (median reported)"
    );

    let rmat_n = 1usize << rmat_scale;
    let workloads = [
        Workload {
            name: "rmat18",
            graph: CsrGraph::from_edges(
                rmat_n,
                &GraphGen::new(42).rmat_standard(rmat_scale, rmat_n * 16),
                true,
            ),
            strategy: BfsStrategy::DirectionOptimizing,
        },
        Workload {
            name: "path14",
            graph: CsrGraph::from_edges(path_n, &GraphGen::path(path_n), true),
            strategy: BfsStrategy::TopDown,
        },
    ];

    const BARRIERS: [BarrierKind; 2] = [BarrierKind::Central, BarrierKind::Dissemination];
    const SCHEDULES: [ScheduleKind; 2] = [ScheduleKind::Dynamic, ScheduleKind::Stealing];

    let mut rows: Vec<Row> = Vec::new();
    for w in &workloads {
        let g = &w.graph;
        let rev = g.reverse();
        let source = if w.name == "rmat18" { hub(g) } else { 0 };
        eprintln!(
            "-- {}: n={} m={} strategy={} source={source}",
            w.name,
            g.num_vertices(),
            g.num_directed_edges(),
            w.strategy
        );
        for barrier in BARRIERS {
            for schedule in SCHEDULES {
                for &t in &threads_list {
                    let pool = ThreadPool::with_config(
                        PoolConfig::new(t).barrier(barrier).irregular(schedule),
                    );
                    let elapsed = time_median(reps, || {
                        std::hint::black_box(bfs_with_strategy_rev(
                            g, &rev, source, method, w.strategy, &pool,
                        ));
                    });
                    let t_ms = ms(elapsed);
                    eprintln!(
                        "   bfs/{}/{}/{}/T={t}: {t_ms:.3} ms",
                        w.name,
                        barrier_name(barrier),
                        schedule_name(schedule)
                    );
                    // One untimed profiling run on a telemetry twin of the
                    // same configuration supplies the rate columns.
                    let profile_pool = ThreadPool::with_config(
                        PoolConfig::new(t)
                            .barrier(barrier)
                            .irregular(schedule)
                            .telemetry(true),
                    );
                    std::hint::black_box(bfs_with_strategy_rev(
                        g,
                        &rev,
                        source,
                        method,
                        w.strategy,
                        &profile_pool,
                    ));
                    rows.push(Row {
                        graph: w.name,
                        strategy: w.strategy,
                        barrier,
                        schedule,
                        threads: t,
                        ms: t_ms,
                        telem: telemetry_columns(&profile_pool),
                    });
                }
            }
        }
    }

    // Self-relative speedups: each (graph, barrier, schedule) cell is
    // normalized to its own smallest-team time.
    let base_threads = threads_list[0];
    let baseline = |r: &Row| {
        rows.iter()
            .find(|b| {
                b.graph == r.graph
                    && b.barrier == r.barrier
                    && b.schedule == r.schedule
                    && b.threads == base_threads
            })
            .map(|b| b.ms)
            .expect("baseline row exists for every cell")
    };
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let speedup = baseline(r) / r.ms;
            assert!(
                speedup.is_finite() && speedup > 0.0,
                "degenerate speedup for {}/{}/{}/T={}",
                r.graph,
                barrier_name(r.barrier),
                schedule_name(r.schedule),
                r.threads
            );
            format!(
                "{{\"kernel\": \"bfs\", \"graph\": \"{}\", \"method\": \"{method}\", \
                 \"strategy\": \"{}\", \"barrier\": \"{}\", \"schedule\": \"{}\", \
                 \"threads\": {}, \"ms\": {:.4}, \"speedup_self_rel\": {:.4}, {}}}",
                r.graph,
                r.strategy,
                barrier_name(r.barrier),
                schedule_name(r.schedule),
                r.threads,
                r.ms,
                speedup,
                r.telem
            )
        })
        .collect();

    // Headline comparisons at the largest team: the scalable pair
    // (dissemination + stealing) against the centralized pair
    // (central + dynamic), per kernel.
    let max_t = *threads_list.last().unwrap();
    let cell = |graph: &str, barrier: BarrierKind, schedule: ScheduleKind| {
        rows.iter()
            .find(|r| {
                r.graph == graph
                    && r.barrier == barrier
                    && r.schedule == schedule
                    && r.threads == max_t
            })
            .map(|r| r.ms)
            .expect("swept cell exists")
    };
    let mut comparisons: Vec<String> = Vec::new();
    for w in &workloads {
        let central = cell(w.name, BarrierKind::Central, ScheduleKind::Dynamic);
        let scalable = cell(w.name, BarrierKind::Dissemination, ScheduleKind::Stealing);
        let ratio = central / scalable;
        assert!(ratio.is_finite() && ratio > 0.0);
        eprintln!(
            "summary {}/T={max_t}: central+dynamic {central:.3} ms, \
             dissemination+stealing {scalable:.3} ms ({ratio:.2}x)",
            w.name
        );
        comparisons.push(format!(
            "{{\"graph\": \"{}\", \"threads\": {max_t}, \"central_dynamic_ms\": {central:.4}, \
             \"dissemination_stealing_ms\": {scalable:.4}, \
             \"dissemination_stealing_speedup\": {ratio:.4}}}",
            w.name
        ));
    }

    // ---------------------------------------------------- mechanism sweep
    // The paper's mechanism claim, measured rather than asserted: on a
    // fully contended array (every member claims every cell, every round)
    // CAS-LT's read-only fast path absorbs a growing share of claims as
    // the team grows, while the gatekeeper issues exactly T fetch-adds per
    // (cell, round) at every team size.
    let mechanism = mechanism_rows(&threads_list);

    // ---------------------------------------------------- overhead guard
    // Smoke guard: enabled telemetry must stay within 5% of the plain
    // configuration on the rmat18 direction-optimizing BFS at the largest
    // team (with a small absolute floor so quick-scale noise cannot trip
    // it). Interleaved samples, medians compared.
    let overhead_json = {
        let g = &workloads[0].graph;
        let rev = g.reverse();
        let source = hub(g);
        let off_pool = ThreadPool::new(max_t);
        let on_pool = ThreadPool::with_config(PoolConfig::new(max_t).telemetry(true));
        let run_bfs = |pool: &ThreadPool| {
            std::hint::black_box(bfs_with_strategy_rev(
                g,
                &rev,
                source,
                method,
                BfsStrategy::DirectionOptimizing,
                pool,
            ));
        };
        run_bfs(&off_pool); // warm-up both pools
        run_bfs(&on_pool);
        let guard_reps = reps.max(5);
        let mut off_s = Vec::with_capacity(guard_reps);
        let mut on_s = Vec::with_capacity(guard_reps);
        for _ in 0..guard_reps {
            let t0 = std::time::Instant::now();
            run_bfs(&off_pool);
            off_s.push(t0.elapsed());
            let t0 = std::time::Instant::now();
            run_bfs(&on_pool);
            on_s.push(t0.elapsed());
        }
        let _ = on_pool.take_round_report(); // drop the profiled rounds
        off_s.sort_unstable();
        on_s.sort_unstable();
        let off_ms = ms(off_s[off_s.len() / 2]);
        let on_ms = ms(on_s[on_s.len() / 2]);
        // Adaptive noise floor: a median gap smaller than the measured
        // run-to-run spread of either configuration is indistinguishable
        // from scheduler noise, so it must not trip the guard. Single-core
        // and oversubscribed runners show multi-millisecond spreads where
        // a fixed floor flakes; quiet machines keep the floor near the
        // 2 ms base and the 5% relative limit does the real work.
        let spread = |s: &[std::time::Duration]| ms(s[s.len() - 1]) - ms(s[0]);
        let noise_floor_ms = 2.0_f64.max(spread(&off_s)).max(spread(&on_s));
        let overhead = (on_ms - off_ms) / off_ms;
        eprintln!(
            "telemetry overhead @ rmat18/direction-optimizing/T={max_t}: \
             off {off_ms:.3} ms, on {on_ms:.3} ms ({:+.1}%, noise floor \
             {noise_floor_ms:.3} ms)",
            overhead * 100.0
        );
        if std::env::var_os("PRAM_BENCH_SKIP_OVERHEAD_GUARD").is_none() {
            assert!(
                on_ms <= off_ms * 1.05 || on_ms - off_ms <= noise_floor_ms,
                "telemetry overhead guard tripped: enabled {on_ms:.3} ms vs disabled \
                 {off_ms:.3} ms ({:+.1}%, limit 5%, noise floor {noise_floor_ms:.3} ms); \
                 set PRAM_BENCH_SKIP_OVERHEAD_GUARD=1 to bypass on a known-noisy machine",
                overhead * 100.0
            );
        }
        format!(
            "{{\"graph\": \"rmat18\", \"strategy\": \"direction-optimizing\", \
             \"threads\": {max_t}, \"reps\": {guard_reps}, \"disabled_ms\": {off_ms:.4}, \
             \"enabled_ms\": {on_ms:.4}, \"overhead_frac\": {overhead:.4}, \
             \"guard_limit_frac\": 0.05, \"noise_floor_ms\": {noise_floor_ms:.4}}}"
        )
    };

    let out_dir = std::env::var("PRAM_BENCH_OUT").map_or_else(
        |_| {
            // benches run with CWD = crate root (crates/bench); the JSON
            // belongs two levels up, next to EXPERIMENTS.md.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        },
        PathBuf::from,
    );
    let path = out_dir.join("BENCH_scaling.json");
    let graphs: Vec<String> = workloads
        .iter()
        .map(|w| {
            format!(
                "{{\"name\": \"{}\", \"vertices\": {}, \"directed_edges\": {}, \
                 \"strategy\": \"{}\"}}",
                w.name,
                w.graph.num_vertices(),
                w.graph.num_directed_edges(),
                w.strategy
            )
        })
        .collect();
    let threads_json: Vec<String> = threads_list.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \
         \"command\": \"cargo bench -p pram-bench --bench scaling\",\n  \
         \"threads_swept\": [{}],\n  \"machine_parallelism\": {ncpus},\n  \
         \"reps\": {reps},\n  \"quick\": {quick},\n  \"method\": \"{method}\",\n  \
         \"graphs\": [\n    {}\n  ],\n  \"results\": [\n    {}\n  ],\n  \
         \"comparisons\": [\n    {}\n  ],\n  \
         \"telemetry_mechanism\": [\n    {}\n  ],\n  \
         \"telemetry_overhead\": {}\n}}\n",
        threads_json.join(", "),
        graphs.join(",\n    "),
        json_rows.join(",\n    "),
        comparisons.join(",\n    "),
        mechanism.join(",\n    "),
        overhead_json
    );
    let mut f = std::fs::File::create(&path).expect("create BENCH_scaling.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_scaling.json");
    eprintln!("wrote {}", path.display());
}
