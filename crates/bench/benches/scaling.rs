//! Thread-scaling bench tier: team size × barrier topology × irregular
//! loop schedule, over the frontier BFS kernels whose round structure
//! stresses each axis differently:
//!
//! * `rmat18` + direction-optimizing BFS — few rounds, huge skewed
//!   frontiers: schedule quality (dynamic cursor vs work stealing)
//!   dominates, barriers are rare.
//! * `path14` + top-down BFS — ~2^14 rounds of one-vertex frontiers:
//!   pure barrier latency, executed tens of thousands of times; the
//!   barrier topology (central vs dissemination) is the whole signal.
//!
//! Both run under CAS-LT (the paper's method; the method axis is
//! `frontier.rs`'s job). Every `(barrier, schedule)` cell is swept over
//! the thread list and reported with its **self-relative** speedup
//! (time at the smallest team ÷ time at T), so topologies are compared
//! by how they *scale*, not by their 1-thread constant.
//!
//! Run with `cargo bench -p pram-bench --bench scaling`; env overrides:
//! `PRAM_BENCH_THREADS` (comma-separated sweep list, e.g. `1,2,4,8`),
//! `PRAM_BENCH_REPS`, `PRAM_BENCH_OUT`. `--quick` shrinks graphs and the
//! sweep for CI smoke runs. Writes `BENCH_scaling.json` into the
//! repository root.

use std::io::Write as _;
use std::path::PathBuf;

use pram_algos::bfs::{bfs_with_strategy_rev, BfsStrategy};
use pram_algos::CwMethod;
use pram_bench::{ms, time_median};
use pram_exec::{BarrierKind, PoolConfig, ScheduleKind, ThreadPool};
use pram_graph::{CsrGraph, GraphGen};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `PRAM_BENCH_THREADS` as a comma-separated sweep list; always includes
/// the self-relative baseline team of 1.
fn threads_sweep(default: Vec<usize>) -> Vec<usize> {
    let mut list = std::env::var("PRAM_BENCH_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or(default);
    if !list.contains(&1) {
        list.push(1);
    }
    list.sort_unstable();
    list.dedup();
    list
}

/// Highest-degree vertex — a deterministic, always-connected source.
fn hub(g: &CsrGraph) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&v| g.offsets()[v + 1] - g.offsets()[v])
        .unwrap_or(0) as u32
}

fn barrier_name(kind: BarrierKind) -> &'static str {
    match kind {
        BarrierKind::Central => "central",
        BarrierKind::Dissemination => "dissemination",
    }
}

fn schedule_name(kind: ScheduleKind) -> &'static str {
    match kind {
        ScheduleKind::Dynamic => "dynamic",
        ScheduleKind::Stealing => "stealing",
    }
}

struct Workload {
    name: &'static str,
    graph: CsrGraph,
    strategy: BfsStrategy,
}

struct Row {
    graph: &'static str,
    strategy: BfsStrategy,
    barrier: BarrierKind,
    schedule: ScheduleKind,
    threads: usize,
    ms: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ncpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Powers of two up to at least 4: on small boxes the sweep is
    // deliberately oversubscribed — that regime is exactly what the
    // passive backoff and the O(log T) barrier are for.
    let default_sweep: Vec<usize> = if quick {
        vec![1, 2]
    } else {
        let top = ncpus.max(4);
        (0..)
            .map(|k| 1usize << k)
            .take_while(|&t| t <= top)
            .collect()
    };
    let threads_list = threads_sweep(default_sweep);
    let reps = env_usize("PRAM_BENCH_REPS", if quick { 1 } else { 3 });
    let rmat_scale: u32 = if quick { 11 } else { 18 };
    let path_n: usize = if quick { 1 << 9 } else { 1 << 14 };
    let method = CwMethod::CasLt;

    eprintln!(
        "scaling bench: threads={threads_list:?} reps={reps} machine_parallelism={ncpus} \
         (median reported)"
    );

    let rmat_n = 1usize << rmat_scale;
    let workloads = [
        Workload {
            name: "rmat18",
            graph: CsrGraph::from_edges(
                rmat_n,
                &GraphGen::new(42).rmat_standard(rmat_scale, rmat_n * 16),
                true,
            ),
            strategy: BfsStrategy::DirectionOptimizing,
        },
        Workload {
            name: "path14",
            graph: CsrGraph::from_edges(path_n, &GraphGen::path(path_n), true),
            strategy: BfsStrategy::TopDown,
        },
    ];

    const BARRIERS: [BarrierKind; 2] = [BarrierKind::Central, BarrierKind::Dissemination];
    const SCHEDULES: [ScheduleKind; 2] = [ScheduleKind::Dynamic, ScheduleKind::Stealing];

    let mut rows: Vec<Row> = Vec::new();
    for w in &workloads {
        let g = &w.graph;
        let rev = g.reverse();
        let source = if w.name == "rmat18" { hub(g) } else { 0 };
        eprintln!(
            "-- {}: n={} m={} strategy={} source={source}",
            w.name,
            g.num_vertices(),
            g.num_directed_edges(),
            w.strategy
        );
        for barrier in BARRIERS {
            for schedule in SCHEDULES {
                for &t in &threads_list {
                    let pool = ThreadPool::with_config(
                        PoolConfig::new(t).barrier(barrier).irregular(schedule),
                    );
                    let elapsed = time_median(reps, || {
                        std::hint::black_box(bfs_with_strategy_rev(
                            g, &rev, source, method, w.strategy, &pool,
                        ));
                    });
                    let t_ms = ms(elapsed);
                    eprintln!(
                        "   bfs/{}/{}/{}/T={t}: {t_ms:.3} ms",
                        w.name,
                        barrier_name(barrier),
                        schedule_name(schedule)
                    );
                    rows.push(Row {
                        graph: w.name,
                        strategy: w.strategy,
                        barrier,
                        schedule,
                        threads: t,
                        ms: t_ms,
                    });
                }
            }
        }
    }

    // Self-relative speedups: each (graph, barrier, schedule) cell is
    // normalized to its own smallest-team time.
    let base_threads = threads_list[0];
    let baseline = |r: &Row| {
        rows.iter()
            .find(|b| {
                b.graph == r.graph
                    && b.barrier == r.barrier
                    && b.schedule == r.schedule
                    && b.threads == base_threads
            })
            .map(|b| b.ms)
            .expect("baseline row exists for every cell")
    };
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let speedup = baseline(r) / r.ms;
            assert!(
                speedup.is_finite() && speedup > 0.0,
                "degenerate speedup for {}/{}/{}/T={}",
                r.graph,
                barrier_name(r.barrier),
                schedule_name(r.schedule),
                r.threads
            );
            format!(
                "{{\"kernel\": \"bfs\", \"graph\": \"{}\", \"method\": \"{method}\", \
                 \"strategy\": \"{}\", \"barrier\": \"{}\", \"schedule\": \"{}\", \
                 \"threads\": {}, \"ms\": {:.4}, \"speedup_self_rel\": {:.4}}}",
                r.graph,
                r.strategy,
                barrier_name(r.barrier),
                schedule_name(r.schedule),
                r.threads,
                r.ms,
                speedup
            )
        })
        .collect();

    // Headline comparisons at the largest team: the scalable pair
    // (dissemination + stealing) against the centralized pair
    // (central + dynamic), per kernel.
    let max_t = *threads_list.last().unwrap();
    let cell = |graph: &str, barrier: BarrierKind, schedule: ScheduleKind| {
        rows.iter()
            .find(|r| {
                r.graph == graph
                    && r.barrier == barrier
                    && r.schedule == schedule
                    && r.threads == max_t
            })
            .map(|r| r.ms)
            .expect("swept cell exists")
    };
    let mut comparisons: Vec<String> = Vec::new();
    for w in &workloads {
        let central = cell(w.name, BarrierKind::Central, ScheduleKind::Dynamic);
        let scalable = cell(w.name, BarrierKind::Dissemination, ScheduleKind::Stealing);
        let ratio = central / scalable;
        assert!(ratio.is_finite() && ratio > 0.0);
        eprintln!(
            "summary {}/T={max_t}: central+dynamic {central:.3} ms, \
             dissemination+stealing {scalable:.3} ms ({ratio:.2}x)",
            w.name
        );
        comparisons.push(format!(
            "{{\"graph\": \"{}\", \"threads\": {max_t}, \"central_dynamic_ms\": {central:.4}, \
             \"dissemination_stealing_ms\": {scalable:.4}, \
             \"dissemination_stealing_speedup\": {ratio:.4}}}",
            w.name
        ));
    }

    let out_dir = std::env::var("PRAM_BENCH_OUT").map_or_else(
        |_| {
            // benches run with CWD = crate root (crates/bench); the JSON
            // belongs two levels up, next to EXPERIMENTS.md.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        },
        PathBuf::from,
    );
    let path = out_dir.join("BENCH_scaling.json");
    let graphs: Vec<String> = workloads
        .iter()
        .map(|w| {
            format!(
                "{{\"name\": \"{}\", \"vertices\": {}, \"directed_edges\": {}, \
                 \"strategy\": \"{}\"}}",
                w.name,
                w.graph.num_vertices(),
                w.graph.num_directed_edges(),
                w.strategy
            )
        })
        .collect();
    let threads_json: Vec<String> = threads_list.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \
         \"command\": \"cargo bench -p pram-bench --bench scaling\",\n  \
         \"threads_swept\": [{}],\n  \"machine_parallelism\": {ncpus},\n  \
         \"reps\": {reps},\n  \"quick\": {quick},\n  \"method\": \"{method}\",\n  \
         \"graphs\": [\n    {}\n  ],\n  \"results\": [\n    {}\n  ],\n  \
         \"comparisons\": [\n    {}\n  ]\n}}\n",
        threads_json.join(", "),
        graphs.join(",\n    "),
        json_rows.join(",\n    "),
        comparisons.join(",\n    ")
    );
    let mut f = std::fs::File::create(&path).expect("create BENCH_scaling.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_scaling.json");
    eprintln!("wrote {}", path.display());
}
