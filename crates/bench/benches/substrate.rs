//! Microbenchmarks of the execution substrate itself — the costs the
//! OpenMP-substitute adds around every kernel measurement (region entry,
//! barrier crossings, loop scheduling overhead, reductions), so kernel
//! deltas can be attributed to arbitration rather than runtime plumbing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pram_exec::{Schedule, ThreadPool};

const THREADS: usize = 4;

fn tuned<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g
}

/// Entering and leaving an empty parallel region.
fn region_entry(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "substrate_region_entry");
    g.bench_function("empty_region", |b| b.iter(|| pool.run(|_| {})));
    g.finish();
}

/// Amortized cost of one barrier crossing (100 per region).
fn barrier_crossing(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "substrate_barrier");
    g.bench_function("100_barriers", |b| {
        b.iter(|| {
            pool.run(|ctx| {
                for _ in 0..100 {
                    ctx.barrier();
                }
            })
        })
    });
    g.finish();
}

/// Per-schedule overhead of distributing 100K trivial iterations.
fn loop_scheduling(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "substrate_for_each_100k");
    let schedules = [
        ("static", Schedule::Static { chunk: None }),
        ("static_chunk64", Schedule::Static { chunk: Some(64) }),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided { min_chunk: 64 }),
    ];
    for (name, sched) in schedules {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sched, |b, &sched| {
            b.iter(|| {
                pool.run(|ctx| {
                    ctx.for_each(0..100_000, sched, |i| {
                        std::hint::black_box(i);
                    });
                })
            })
        });
    }
    g.finish();
}

/// Team-wide reduction cost.
fn reduction(c: &mut Criterion) {
    let pool = ThreadPool::new(THREADS);
    let mut g = tuned(c, "substrate_reduce");
    g.bench_function("sum_u64", |b| {
        b.iter(|| {
            pool.run(|ctx| {
                let total = ctx.reduce(ctx.thread_id() as u64, |a, b| a + b);
                std::hint::black_box(total);
            })
        })
    });
    g.finish();
}

criterion_group!(
    substrate,
    region_entry,
    barrier_crossing,
    loop_scheduling,
    reduction
);
criterion_main!(substrate);
