//! Adaptive-arbitration bench group: `CwMethod::Adaptive` against every
//! static single-winner method on the workloads whose best static choice
//! *differs*, so the adaptive policy has something real to win:
//!
//! * `rmat18` direction-optimizing BFS — few, dense rounds; the CAS-LT
//!   fast path absorbs most claims.
//! * `path14` top-down BFS — ~2^14 one-vertex rounds; pure per-round
//!   overhead, the shape where a mischosen method (or an expensive
//!   switch check) hurts most.
//! * `rmat18` dense CC — two contended CW rounds per iteration.
//!
//! Timed runs use a plain pool (no telemetry), where the adaptive arbiter
//! costs its starting delegate plus one predicted branch per claim — the
//! honest like-for-like against the statics. A second, untimed run per
//! row profiles on a telemetry twin pool; for `Adaptive` that run is also
//! *timed separately* (the `adaptive+telemetry` rows) because live
//! counters are what let the policy actually switch — those rows carry
//! the observed switch decisions (`switch_trace`, mined from the round
//! labels the elected member annotates at the tuning rendezvous).
//!
//! The JSON ends with a per-workload comparison: adaptive's plain-pool
//! median against the best static method (`adaptive_over_best`, the
//! ratio the experiment table quotes).
//!
//! Run with `cargo bench -p pram-bench --bench adaptive`; set
//! `PRAM_BENCH_THREADS` / `PRAM_BENCH_REPS` to override defaults. Writes
//! `BENCH_adaptive.json` into the repository root (override the
//! directory with `PRAM_BENCH_OUT`).

use std::io::Write as _;
use std::path::PathBuf;

use pram_algos::bfs::{bfs_with_strategy_rev, BfsStrategy};
use pram_algos::{connected_components, CwMethod};
use pram_bench::{ms, telemetry_columns, time_median};
use pram_exec::{MethodKind, PoolConfig, ThreadPool};
use pram_graph::{CsrGraph, GraphGen};

/// The single-winner static methods plus the adaptive delegator. Naive is
/// excluded: it tears BFS's multi-word commit, so it has no row to win.
const METHODS: [CwMethod; 6] = [
    CwMethod::Gatekeeper,
    CwMethod::GatekeeperSkip,
    CwMethod::CasLt,
    CwMethod::CasLtPadded,
    CwMethod::Lock,
    CwMethod::Adaptive,
];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_threads_list() -> Vec<usize> {
    let ncpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut list = std::env::var("PRAM_BENCH_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![ncpus]);
    list.sort_unstable();
    list.dedup();
    list
}

/// Highest-degree vertex — a deterministic, always-connected source.
fn hub(g: &CsrGraph) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&v| g.offsets()[v + 1] - g.offsets()[v])
        .unwrap_or(0) as u32
}

/// The committed switch decisions of one profiled run, as the elected
/// member annotated them into the round labels ("adaptive a->b (reason)
/// @epoch n"). Empty for static methods and for runs whose policy never
/// fired — both informative.
fn switch_trace(pool: &ThreadPool) -> Vec<String> {
    pool.take_round_report()
        .rounds
        .iter()
        .filter(|r| r.label.contains("adaptive "))
        .map(|r| {
            let note = r
                .label
                .split_once(" | ")
                .map_or(r.label.as_str(), |(_, note)| note);
            format!("\"round {}: {}\"", r.round, note.replace('"', ""))
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads_list = env_threads_list();
    let reps = env_usize("PRAM_BENCH_REPS", if quick { 1 } else { 3 });
    let rmat_scale: u32 = if quick { 12 } else { 18 };
    let path_n: usize = if quick { 1 << 10 } else { 1 << 14 };

    eprintln!("adaptive bench: threads={threads_list:?} reps={reps} (median reported)");

    let rmat_n = 1usize << rmat_scale;
    let rmat = CsrGraph::from_edges(
        rmat_n,
        &GraphGen::new(42).rmat_standard(rmat_scale, rmat_n * 16),
        true,
    );
    let rmat_rev = rmat.reverse();
    let rmat_src = hub(&rmat);
    let path = CsrGraph::from_edges(path_n, &GraphGen::path(path_n), true);
    let path_rev = path.reverse();

    let mut rows: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut comparisons: Vec<String> = Vec::new();

    for &threads in &threads_list {
        let pool = ThreadPool::new(threads);
        // The telemetry twin: profiling for every method, and the live
        // configuration under which Adaptive actually re-chooses.
        let telem_pool = ThreadPool::with_config(
            PoolConfig::new(threads)
                .telemetry(true)
                .method(MethodKind::Adaptive),
        );

        // (workload key, runner) pairs; each runner executes one timed rep
        // on the given pool with the given method.
        type Run<'a> = Box<dyn Fn(CwMethod, &ThreadPool) + 'a>;
        let workloads: Vec<(&str, Run<'_>)> = vec![
            (
                "bfs/rmat18/direction-optimizing",
                Box::new(|m, p: &ThreadPool| {
                    std::hint::black_box(bfs_with_strategy_rev(
                        &rmat,
                        &rmat_rev,
                        rmat_src,
                        m,
                        BfsStrategy::DirectionOptimizing,
                        p,
                    ));
                }),
            ),
            (
                "bfs/path14/top-down",
                Box::new(|m, p: &ThreadPool| {
                    std::hint::black_box(bfs_with_strategy_rev(
                        &path,
                        &path_rev,
                        0,
                        m,
                        BfsStrategy::TopDown,
                        p,
                    ));
                }),
            ),
            (
                "cc/rmat18/dense",
                Box::new(|m, p: &ThreadPool| {
                    std::hint::black_box(connected_components(&rmat, m, p));
                }),
            ),
        ];

        for (key, run) in &workloads {
            let mut best_static: Option<(CwMethod, f64)> = None;
            let mut adaptive_ms = f64::NAN;
            for method in METHODS {
                run(method, &pool); // warm-up
                let t = ms(time_median(reps, || run(method, &pool)));
                eprintln!("   {key}/{method}/T={threads}: {t:.3} ms");
                // Untimed profiling twin run (counters for the row).
                run(method, &telem_pool);
                rows.push(format!(
                    "{{\"workload\": \"{key}\", \"method\": \"{method}\", \
                     \"threads\": {threads}, \"pool\": \"plain\", \"ms\": {t:.4}, {}}}",
                    telemetry_columns(&telem_pool)
                ));
                let _ = telem_pool.take_round_report();
                if method == CwMethod::Adaptive {
                    adaptive_ms = t;
                    // Live configuration: timed with counters on, where
                    // the policy can actually switch — trace captured.
                    let tt = ms(time_median(reps, || run(method, &telem_pool)));
                    let trace = switch_trace(&telem_pool);
                    eprintln!(
                        "   {key}/adaptive+telemetry/T={threads}: {tt:.3} ms \
                         ({} switches)",
                        trace.len()
                    );
                    rows.push(format!(
                        "{{\"workload\": \"{key}\", \"method\": \"adaptive\", \
                         \"threads\": {threads}, \"pool\": \"telemetry\", \"ms\": {tt:.4}, \
                         \"switches\": {}}}",
                        trace.len()
                    ));
                    traces.push(format!(
                        "{{\"workload\": \"{key}\", \"threads\": {threads}, \
                         \"trace\": [{}]}}",
                        trace.join(", ")
                    ));
                } else if best_static.is_none_or(|(_, b)| t < b) {
                    best_static = Some((method, t));
                }
            }
            let (best_m, best_t) = best_static.expect("static methods ran");
            let ratio = adaptive_ms / best_t;
            eprintln!(
                "summary {key}/T={threads}: best static {best_m} {best_t:.3} ms, \
                 adaptive {adaptive_ms:.3} ms ({ratio:.3}x of best)"
            );
            comparisons.push(format!(
                "{{\"workload\": \"{key}\", \"threads\": {threads}, \
                 \"best_static_method\": \"{best_m}\", \"best_static_ms\": {best_t:.4}, \
                 \"adaptive_ms\": {adaptive_ms:.4}, \"adaptive_over_best\": {ratio:.4}}}"
            ));
        }
    }

    let out_dir = std::env::var("PRAM_BENCH_OUT").map_or_else(
        |_| {
            // benches run with CWD = crate root (crates/bench); the JSON
            // belongs two levels up, next to EXPERIMENTS.md.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        },
        PathBuf::from,
    );
    let path_out = out_dir.join("BENCH_adaptive.json");
    let threads_json: Vec<String> = threads_list.iter().map(|t| t.to_string()).collect();
    let json = format!(
        "{{\n  \"bench\": \"adaptive\",\n  \"command\": \"cargo bench -p pram-bench --bench adaptive\",\n  \
         \"threads_swept\": [{threads_swept}],\n  \"reps\": {reps},\n  \"quick\": {quick},\n  \
         \"results\": [\n    {}\n  ],\n  \"switch_traces\": [\n    {}\n  ],\n  \
         \"comparisons\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    "),
        traces.join(",\n    "),
        comparisons.join(",\n    "),
        threads_swept = threads_json.join(", ")
    );
    let mut f = std::fs::File::create(&path_out).expect("create BENCH_adaptive.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_adaptive.json");
    eprintln!("wrote {}", path_out.display());
}
