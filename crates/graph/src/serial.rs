//! Sequential reference algorithms — the ground truth for the parallel
//! kernels.

use std::collections::VecDeque;

use crate::csr::CsrGraph;

/// BFS distances from `source`: `levels[v]` is the hop count, or
/// `u32::MAX` for unreachable vertices.
pub fn bfs_levels(g: &CsrGraph, source: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut levels = vec![u32::MAX; n];
    levels[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = levels[u as usize] + 1;
        for &v in g.neighbors(u) {
            if levels[v as usize] == u32::MAX {
                levels[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    levels
}

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> DisjointSet {
        assert!(n <= u32::MAX as usize);
        DisjointSet {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand; // path halving
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Connected-component labels via union–find: `labels[v]` is the smallest
/// vertex id in `v`'s component — a canonical form any CC algorithm's
/// output can be normalized to for comparison.
pub fn cc_labels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut ds = DisjointSet::new(n);
    for &(u, v) in edges {
        ds.union(u, v);
    }
    canonical_labels_from(|v| ds.find(v), n)
}

/// Normalize an arbitrary root assignment to smallest-member labels.
pub fn canonical_labels_from(mut root_of: impl FnMut(u32) -> u32, n: usize) -> Vec<u32> {
    let mut smallest = vec![u32::MAX; n];
    let roots: Vec<u32> = (0..n as u32).map(&mut root_of).collect();
    for (v, &r) in roots.iter().enumerate() {
        let s = &mut smallest[r as usize];
        *s = (*s).min(v as u32);
    }
    roots.iter().map(|&r| smallest[r as usize]).collect()
}

/// Number of connected components among `n` vertices under `edges`.
pub fn num_components(n: usize, edges: &[(u32, u32)]) -> usize {
    let mut ds = DisjointSet::new(n);
    for &(u, v) in edges {
        ds.union(u, v);
    }
    ds.num_components()
}

/// The index the paper's Figure 4 maximum returns: the *largest index*
/// achieving the maximum value (its tie-break marks the smaller index as
/// non-max on equal values).
pub fn max_index_paper_tiebreak(values: &[u64]) -> usize {
    assert!(!values.is_empty(), "maximum of an empty list is undefined");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v >= values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGen;

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = CsrGraph::from_edges(5, &GraphGen::path(5), true);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1)], true);
        let l = bfs_levels(&g, 0);
        assert_eq!(l[..2], [0, 1]);
        assert_eq!(l[2], u32::MAX);
        assert_eq!(l[3], u32::MAX);
    }

    #[test]
    fn disjoint_set_basics() {
        let mut ds = DisjointSet::new(5);
        assert_eq!(ds.num_components(), 5);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        assert!(ds.union(2, 3));
        assert!(ds.connected(0, 1));
        assert!(!ds.connected(0, 2));
        assert_eq!(ds.num_components(), 3);
        assert!(ds.union(1, 3));
        assert!(ds.connected(0, 2));
        assert_eq!(ds.num_components(), 2);
    }

    #[test]
    fn cc_labels_are_canonical() {
        // 0-1-2 component, 3-4 component, 5 isolated.
        let labels = cc_labels(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn cc_labels_on_cliques() {
        let edges = GraphGen::disjoint_cliques(3, 4);
        let labels = cc_labels(12, &edges);
        for v in 0..12u32 {
            assert_eq!(labels[v as usize], (v / 4) * 4);
        }
        assert_eq!(num_components(12, &edges), 3);
    }

    #[test]
    fn num_components_counts_isolated() {
        assert_eq!(num_components(10, &[]), 10);
        assert_eq!(num_components(3, &[(0, 1), (1, 2)]), 1);
    }

    #[test]
    fn max_paper_tiebreak_prefers_larger_index() {
        assert_eq!(max_index_paper_tiebreak(&[3, 7, 7, 1]), 2);
        assert_eq!(max_index_paper_tiebreak(&[9]), 0);
        assert_eq!(max_index_paper_tiebreak(&[2, 2, 2]), 2);
    }

    #[test]
    fn canonical_labels_match_between_root_choices() {
        // Two different root conventions for the same partition normalize
        // to the same labels.
        let a = canonical_labels_from(|v| if v < 3 { 2 } else { 4 }, 5);
        let b = canonical_labels_from(|v| if v < 3 { 0 } else { 3 }, 5);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 0, 0, 3, 3]);
    }
}
