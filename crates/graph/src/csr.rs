//! Compressed sparse row adjacency — the Rodinia BFS memory layout.
//!
//! The paper's Figure 3 declares `unsigned V[N]` (index of each vertex's
//! first edge) and `unsigned E[M]` (destination vertex ids); [`CsrGraph`]
//! is exactly that pair, with the conventional `N + 1` offsets so
//! `neighbors(v)` is a single slice.

/// A graph in CSR form. Vertex ids are `u32`; an undirected graph stores
/// both directions of every edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Box<[usize]>,
    /// Flat destination array (the paper's `E`).
    targets: Box<[u32]>,
}

impl CsrGraph {
    /// Build from an edge list by counting sort — O(n + m), no comparison
    /// sort.
    ///
    /// With `undirected = true` each input pair `(u, v)` is inserted in
    /// both directions (self-loops once). Duplicate edges are kept: the
    /// uniform generator produces multigraphs, as random-graph benchmark
    /// generators conventionally do.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], undirected: bool) -> CsrGraph {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        let mut degree = vec![0usize; n];
        let mut half_edges = 0usize;
        for &(u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
            degree[u] += 1;
            half_edges += 1;
            if undirected && u != v {
                degree[v] += 1;
                half_edges += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, half_edges);

        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; half_edges];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            if undirected && u != v {
                targets[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored directed edges (2× the undirected edge count,
    /// except self-loops which are stored once).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of `v` (with multiplicity).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// The raw offsets array (`n + 1` entries) — the paper's `V`.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw targets array — the paper's `E`.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Iterate all stored directed edges as `(src, dst)`.
    pub fn directed_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u as u32)
                .iter()
                .map(move |&v| (u as u32, v))
        })
    }

    /// Sort each adjacency list and drop duplicate neighbors (keeps one
    /// self-loop if present). Returns a new graph.
    pub fn simplified(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        for v in 0..n {
            let mut adj: Vec<u32> = self.neighbors(v as u32).to_vec();
            adj.sort_unstable();
            adj.dedup();
            targets.extend_from_slice(&adj);
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_undirected_with_both_directions() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)], true);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_directed_edges(), 6);
        let mut n0: Vec<u32> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn builds_directed_when_requested() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], false);
        assert_eq!(g.num_directed_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1).contains(&2));
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn self_loops_stored_once_even_undirected() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)], true);
        assert_eq!(g.neighbors(0).iter().filter(|&&t| t == 0).count(), 1);
        assert_eq!(g.num_directed_edges(), 3);
    }

    #[test]
    fn duplicate_edges_kept_then_simplified() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)], true);
        assert_eq!(g.degree(0), 2);
        let s = g.simplified();
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.neighbors(1), &[0, 2]);
    }

    #[test]
    fn directed_edges_iterator_roundtrips() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let g = CsrGraph::from_edges(3, &edges, true);
        let all: Vec<(u32, u32)> = g.directed_edges().collect();
        assert_eq!(all.len(), 6);
        for &(u, v) in &edges {
            assert!(all.contains(&(u, v)));
            assert!(all.contains(&(v, u)));
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(0, &[], true);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);

        let g = CsrGraph::from_edges(5, &[], true);
        assert_eq!(g.num_directed_edges(), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn degree_stats() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], true);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)], true);
    }
}
