//! Compressed sparse row adjacency — the Rodinia BFS memory layout.
//!
//! The paper's Figure 3 declares `unsigned V[N]` (index of each vertex's
//! first edge) and `unsigned E[M]` (destination vertex ids); [`CsrGraph`]
//! is exactly that pair, with the conventional `N + 1` offsets so
//! `neighbors(v)` is a single slice.

/// A graph in CSR form. Vertex ids are `u32`; an undirected graph stores
/// both directions of every edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Box<[usize]>,
    /// Flat destination array (the paper's `E`).
    targets: Box<[u32]>,
}

impl CsrGraph {
    /// Build from an edge list by counting sort — O(n + m), no comparison
    /// sort.
    ///
    /// With `undirected = true` each input pair `(u, v)` is inserted in
    /// both directions (self-loops once). Duplicate edges are kept: the
    /// uniform generator produces multigraphs, as random-graph benchmark
    /// generators conventionally do.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], undirected: bool) -> CsrGraph {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        let mut degree = vec![0usize; n];
        let mut half_edges = 0usize;
        for &(u, v) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
            degree[u] += 1;
            half_edges += 1;
            if undirected && u != v {
                degree[v] += 1;
                half_edges += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, half_edges);

        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; half_edges];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            if undirected && u != v {
                targets[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored directed edges (2× the undirected edge count,
    /// except self-loops which are stored once).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of `v` (with multiplicity).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// The raw offsets array (`n + 1` entries) — the paper's `V`.
    ///
    /// This array *is* the out-degree prefix sum
    /// (`offsets[v] = Σ_{u < v} degree(u)`), which is what makes
    /// [`CsrGraph::edges_in_vertex_range`] — and with it degree-weighted
    /// chunking and the push/pull direction heuristic — O(1) per query.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Total out-degree of the contiguous vertex range `lo..hi` in O(1),
    /// read off the offsets prefix sum.
    #[inline]
    pub fn edges_in_vertex_range(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi < self.offsets.len());
        self.offsets[hi] - self.offsets[lo]
    }

    /// Total out-degree of an arbitrary vertex set (O(1) per vertex).
    pub fn edges_from(&self, vertices: impl IntoIterator<Item = u32>) -> usize {
        vertices.into_iter().map(|v| self.degree(v)).sum()
    }

    /// The raw targets array — the paper's `E`.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Iterate all stored directed edges as `(src, dst)`.
    pub fn directed_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |u| self.neighbors(u as u32).iter().map(move |&v| (u as u32, v)))
    }

    /// Sort each adjacency list and drop duplicate neighbors (keeps one
    /// self-loop if present). Returns a new graph.
    pub fn simplified(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        for v in 0..n {
            let mut adj: Vec<u32> = self.neighbors(v as u32).to_vec();
            adj.sort_unstable();
            adj.dedup();
            targets.extend_from_slice(&adj);
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Build the in-edge view: for every vertex `v`, the sources `u` of
    /// edges `u → v` together with each edge's index in this graph's
    /// target array. O(n + m) counting sort.
    ///
    /// This is what a bottom-up ("pull") BFS sweep needs: scanning `v`'s
    /// in-edges while keeping the discovered tree edge expressed as an
    /// index *owned by the parent*, so the `sel_edge` invariant is the
    /// same in both directions. For an undirected [`CsrGraph`] (both
    /// directions stored) the in- and out-neighbor multisets coincide, but
    /// the edge ids do not — the reverse view records the id of the
    /// `u → v` copy.
    pub fn reverse(&self) -> ReverseCsr {
        let n = self.num_vertices();
        let mut in_degree = vec![0usize; n];
        for &t in self.targets.iter() {
            in_degree[t as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &in_degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut sources = vec![0u32; self.targets.len()];
        let mut edge_ids = vec![0usize; self.targets.len()];
        for u in 0..n {
            for e in self.offsets[u]..self.offsets[u + 1] {
                let v = self.targets[e] as usize;
                sources[cursor[v]] = u as u32;
                edge_ids[cursor[v]] = e;
                cursor[v] += 1;
            }
        }
        ReverseCsr {
            offsets: offsets.into_boxed_slice(),
            sources: sources.into_boxed_slice(),
            edge_ids: edge_ids.into_boxed_slice(),
        }
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }
}

/// The in-edge view of a [`CsrGraph`], with edge provenance.
///
/// `offsets[v]..offsets[v + 1]` indexes parallel arrays `sources` (the
/// origin of each in-edge) and `edge_ids` (that edge's index in the
/// original graph's target array). Built by [`CsrGraph::reverse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseCsr {
    offsets: Box<[usize]>,
    sources: Box<[u32]>,
    edge_ids: Box<[usize]>,
}

impl ReverseCsr {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The raw in-offsets array (`n + 1` entries) — the in-degree prefix
    /// sum, the pull-side counterpart of [`CsrGraph::offsets`].
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The in-edges of `v` as `(source, original_edge_id)` pairs.
    #[inline]
    pub fn in_edges(&self, v: u32) -> impl Iterator<Item = (u32, usize)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        self.sources[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_ids[range].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_undirected_with_both_directions() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)], true);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_directed_edges(), 6);
        let mut n0: Vec<u32> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn builds_directed_when_requested() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], false);
        assert_eq!(g.num_directed_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1).contains(&2));
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn self_loops_stored_once_even_undirected() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)], true);
        assert_eq!(g.neighbors(0).iter().filter(|&&t| t == 0).count(), 1);
        assert_eq!(g.num_directed_edges(), 3);
    }

    #[test]
    fn duplicate_edges_kept_then_simplified() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)], true);
        assert_eq!(g.degree(0), 2);
        let s = g.simplified();
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.neighbors(1), &[0, 2]);
    }

    #[test]
    fn directed_edges_iterator_roundtrips() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let g = CsrGraph::from_edges(3, &edges, true);
        let all: Vec<(u32, u32)> = g.directed_edges().collect();
        assert_eq!(all.len(), 6);
        for &(u, v) in &edges {
            assert!(all.contains(&(u, v)));
            assert!(all.contains(&(v, u)));
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(0, &[], true);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);

        let g = CsrGraph::from_edges(5, &[], true);
        assert_eq!(g.num_directed_edges(), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn degree_stats() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], true);
        assert_eq!(g.max_degree(), 3);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)], true);
    }

    #[test]
    fn edges_in_vertex_range_matches_degree_sums() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4)], true);
        for lo in 0..=5 {
            for hi in lo..=5 {
                let expect: usize = (lo..hi).map(|v| g.degree(v as u32)).sum();
                assert_eq!(g.edges_in_vertex_range(lo, hi), expect, "{lo}..{hi}");
            }
        }
        assert_eq!(
            g.edges_from([0u32, 3].into_iter()),
            g.degree(0) + g.degree(3)
        );
    }

    #[test]
    fn reverse_records_in_edges_with_provenance() {
        // Directed, so in- and out-views genuinely differ.
        let g = CsrGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 2)], false);
        let r = g.reverse();
        assert_eq!(r.num_vertices(), 4);
        assert_eq!(r.in_degree(2), 3);
        assert_eq!(r.in_degree(0), 0);
        for v in 0..4u32 {
            for (u, e) in r.in_edges(v) {
                // Provenance: edge e really is u → v in the original CSR.
                assert!((g.offsets()[u as usize]..g.offsets()[u as usize + 1]).contains(&e));
                assert_eq!(g.targets()[e], v);
            }
        }
        // Every directed edge appears in exactly one in-list.
        let total: usize = (0..4u32).map(|v| r.in_edges(v).count()).sum();
        assert_eq!(total, g.num_directed_edges());
        // In-offsets are the in-degree prefix sum.
        assert_eq!(r.offsets()[4], g.num_directed_edges());
    }

    #[test]
    fn reverse_of_undirected_preserves_neighbor_multisets() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 1), (1, 2), (2, 0)], true);
        let r = g.reverse();
        for v in 0..4u32 {
            let mut out: Vec<u32> = g.neighbors(v).to_vec();
            let mut inc: Vec<u32> = r.in_edges(v).map(|(u, _)| u).collect();
            out.sort_unstable();
            inc.sort_unstable();
            assert_eq!(out, inc, "vertex {v}");
        }
    }
}
