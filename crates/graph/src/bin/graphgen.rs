//! Generate benchmark workload graphs as edge-list files.
//!
//! ```text
//! Usage: graphgen <KIND> [OPTIONS]
//!
//! Kinds:
//!   gnm         uniform random multigraph        (--n, --m, --seed)
//!   gnm-simple  uniform random simple graph      (--n, --m, --seed)
//!   rmat        R-MAT skewed graph               (--scale, --m, --seed)
//!   path|cycle|star|complete                     (--n)
//!   grid                                         (--rows, --cols)
//!   cliques     disjoint cliques                 (--k, --size)
//!
//! Options:
//!   --out <PATH>   output file (default: stdout)
//! ```
//!
//! The output round-trips through `pram_graph::io::parse_edge_list`, so a
//! saved workload replays byte-identically across machines.

use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;

use pram_graph::{io, GraphGen};

fn usage() -> ExitCode {
    eprintln!(
        "Usage: graphgen <gnm|gnm-simple|rmat|path|cycle|star|complete|grid|cliques> \
         [--n N] [--m M] [--seed S] [--scale SC] [--rows R] [--cols C] [--k K] [--size Z] \
         [--out PATH]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(kind) = args.next() else {
        return usage();
    };
    let mut opts: HashMap<String, String> = HashMap::new();
    while let Some(flag) = args.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return usage();
        };
        let Some(value) = args.next() else {
            return usage();
        };
        opts.insert(key.to_string(), value);
    }
    let get = |k: &str, default: usize| -> Option<usize> {
        match opts.get(k) {
            Some(v) => v.parse().ok(),
            None => Some(default),
        }
    };
    let Some(n) = get("n", 1_000) else {
        return usage();
    };
    let Some(m) = get("m", 5_000) else {
        return usage();
    };
    let Some(seed) = get("seed", 42) else {
        return usage();
    };
    let Some(scale) = get("scale", 10) else {
        return usage();
    };
    let Some(rows) = get("rows", 10) else {
        return usage();
    };
    let Some(cols) = get("cols", 10) else {
        return usage();
    };
    let Some(k) = get("k", 10) else {
        return usage();
    };
    let Some(size) = get("size", 10) else {
        return usage();
    };

    let mut gen = GraphGen::new(seed as u64);
    let (vertices, edges) = match kind.as_str() {
        "gnm" => (n, gen.gnm(n, m)),
        "gnm-simple" => (n, gen.gnm_simple(n, m)),
        "rmat" => (1usize << scale, gen.rmat_standard(scale as u32, m)),
        "path" => (n, GraphGen::path(n)),
        "cycle" => (n, GraphGen::cycle(n)),
        "star" => (n, GraphGen::star(n)),
        "complete" => (n, GraphGen::complete(n)),
        "grid" => (rows * cols, GraphGen::grid(rows, cols)),
        "cliques" => (k * size, GraphGen::disjoint_cliques(k, size)),
        _ => return usage(),
    };

    let body = io::to_edge_list_string(vertices, &edges);
    match opts.get("out") {
        None => {
            print!("{body}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("graphgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            let _ = writeln!(
                std::io::stderr(),
                "wrote {path}: {vertices} vertices, {} edges",
                edges.len()
            );
        }
    }
    ExitCode::SUCCESS
}
