//! Plain-text edge-list persistence, so benchmark workloads can be saved
//! and replayed byte-identically.
//!
//! Format: a header line `p <num_vertices> <num_edges>`, then one
//! `<u> <v>` pair per line. Lines starting with `#` are comments.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};

/// Serialize `n` vertices and `edges` to the text format.
pub fn to_edge_list_string(n: usize, edges: &[(u32, u32)]) -> String {
    let mut out = String::with_capacity(16 + edges.len() * 12);
    let _ = writeln!(out, "p {n} {}", edges.len());
    for &(u, v) in edges {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Error from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No `p` header line before the first edge.
    MissingHeader,
    /// A line that is neither a comment, the header, nor a `u v` pair.
    BadLine(usize),
    /// An endpoint ≥ the declared vertex count.
    EndpointOutOfRange {
        /// 1-based line number.
        line: usize,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'p <n> <m>' header"),
            ParseError::BadLine(l) => write!(f, "malformed line {l}"),
            ParseError::EndpointOutOfRange { line } => {
                write!(f, "edge endpoint out of range at line {line}")
            }
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse the text format back to `(num_vertices, edges)`.
pub fn parse_edge_list(reader: impl Read) -> Result<(usize, Vec<(u32, u32)>), ParseError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError::Io(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("p") => {
                let nv: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                let _m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                n = Some(nv);
            }
            Some(tok) => {
                let n = n.ok_or(ParseError::MissingHeader)?;
                let u: u32 = tok.parse().map_err(|_| ParseError::BadLine(lineno))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                if u as usize >= n || v as usize >= n {
                    return Err(ParseError::EndpointOutOfRange { line: lineno });
                }
                edges.push((u, v));
            }
            None => unreachable!("empty lines filtered above"),
        }
    }
    Ok((n.ok_or(ParseError::MissingHeader)?, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let s = to_edge_list_string(3, &edges);
        let (n, parsed) = parse_edge_list(s.as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(parsed, edges);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = "# a comment\n\np 2 1\n# another\n0 1\n";
        let (n, e) = parse_edge_list(s.as_bytes()).unwrap();
        assert_eq!((n, e), (2, vec![(0, 1)]));
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            parse_edge_list("0 1\n".as_bytes()).unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(
            parse_edge_list("".as_bytes()).unwrap_err(),
            ParseError::MissingHeader
        );
    }

    #[test]
    fn bad_lines_rejected_with_position() {
        assert_eq!(
            parse_edge_list("p 2 1\n0 x\n".as_bytes()).unwrap_err(),
            ParseError::BadLine(2)
        );
        assert_eq!(
            parse_edge_list("p nope 1\n".as_bytes()).unwrap_err(),
            ParseError::BadLine(1)
        );
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        assert_eq!(
            parse_edge_list("p 2 1\n0 5\n".as_bytes()).unwrap_err(),
            ParseError::EndpointOutOfRange { line: 2 }
        );
    }
}
