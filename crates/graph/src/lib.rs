//! # pram-graph — graph substrate for the paper's BFS and CC benchmarks
//!
//! The paper evaluates its concurrent-write methods on "randomly-generated
//! undirected graphs" with up to 100 K vertices and 30 M edges, stored the
//! Rodinia way: a vertex offset array plus a flat edge-target array — i.e.
//! CSR. This crate provides:
//!
//! * [`CsrGraph`] — compressed sparse row adjacency with `u32` vertex ids
//!   (ample for the paper's scales) built by counting sort.
//! * [`GraphGen`] — seeded generators: uniform G(n, m) multigraphs (the
//!   Rodinia-style random generator), R-MAT skewed graphs, and structured
//!   families (paths, stars, grids, cliques, forests) for tests.
//! * [`serial`] — the sequential ground truth the parallel kernels are
//!   validated against: BFS levels/parents and union–find connected
//!   components.
//! * [`io`] — a plain edge-list text format for persisting workloads.
//!
//! ```
//! use pram_graph::{CsrGraph, GraphGen};
//!
//! let edges = GraphGen::new(42).gnm(1_000, 5_000);
//! let g = CsrGraph::from_edges(1_000, &edges, true);
//! assert_eq!(g.num_vertices(), 1_000);
//! assert_eq!(g.num_directed_edges(), 10_000); // both directions stored
//! let levels = pram_graph::serial::bfs_levels(&g, 0);
//! assert_eq!(levels[0], 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod gen;
pub mod io;
pub mod serial;

pub use csr::{CsrGraph, ReverseCsr};
pub use gen::GraphGen;
pub use serial::DisjointSet;
