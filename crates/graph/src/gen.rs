//! Seeded graph generators.
//!
//! The paper's workloads are "randomly-generated undirected graphs" with
//! controlled vertex and edge counts (e.g. 100 K vertices, 5–30 M edges).
//! [`GraphGen::gnm`] reproduces that family: `m` edges drawn uniformly from
//! all non-loop pairs, duplicates allowed (a multigraph, as the Rodinia
//! generator produces). [`GraphGen::rmat`] adds the skewed-degree family
//! used throughout the graph-benchmark literature, and the structured
//! constructors give tests predictable topologies.
//!
//! Everything is seeded and deterministic: the figure-regeneration harness
//! records the seed, so any measurement can be reproduced on the identical
//! workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of graphs.
#[derive(Debug, Clone)]
pub struct GraphGen {
    rng: StdRng,
}

impl GraphGen {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> GraphGen {
        GraphGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `m` uniform random non-loop edges over `n` vertices (duplicates
    /// allowed — a multigraph).
    ///
    /// # Panics
    /// Panics if `n < 2` and `m > 0` (no non-loop pair exists).
    pub fn gnm(&mut self, n: usize, m: usize) -> Vec<(u32, u32)> {
        assert!(n >= 2 || m == 0, "need at least 2 vertices to draw edges");
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = self.rng.gen_range(0..n as u32);
            let mut v = self.rng.gen_range(0..n as u32 - 1);
            if v >= u {
                v += 1; // uniform over vertices != u
            }
            edges.push((u, v));
        }
        edges
    }

    /// Like [`GraphGen::gnm`] but rejecting duplicate (unordered) pairs —
    /// a simple graph. Requires `m` ≤ the number of distinct pairs.
    pub fn gnm_simple(&mut self, n: usize, m: usize) -> Vec<(u32, u32)> {
        let max_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
        assert!(
            m <= max_pairs,
            "m = {m} exceeds the {max_pairs} distinct pairs on {n} vertices"
        );
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = self.rng.gen_range(0..n as u32);
            let mut v = self.rng.gen_range(0..n as u32 - 1);
            if v >= u {
                v += 1;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                edges.push(key);
            }
        }
        edges
    }

    /// R-MAT generator (Chakrabarti–Zhan–Faloutsos): `m` edges over
    /// `2^scale` vertices with recursive quadrant probabilities
    /// `(a, b, c, d)`, `a + b + c + d = 1`. Skewed degrees stress the
    /// concurrent-write collision behaviour far more than uniform graphs.
    pub fn rmat(&mut self, scale: u32, m: usize, probs: (f64, f64, f64, f64)) -> Vec<(u32, u32)> {
        let (a, b, c, d) = probs;
        assert!(
            (a + b + c + d - 1.0).abs() < 1e-9 && a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
            "quadrant probabilities must be non-negative and sum to 1"
        );
        assert!(scale < 31, "scale too large for u32 ids");
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                let r: f64 = self.rng.gen();
                if r < a {
                    // top-left: no bits set
                } else if r < a + b {
                    v |= 1;
                } else if r < a + b + c {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            if u == v {
                v ^= 1; // nudge self-loops off the diagonal
            }
            edges.push((u, v));
        }
        edges
    }

    /// The standard R-MAT parameterization (0.57, 0.19, 0.19, 0.05).
    pub fn rmat_standard(&mut self, scale: u32, m: usize) -> Vec<(u32, u32)> {
        self.rmat(scale, m, (0.57, 0.19, 0.19, 0.05))
    }

    /// Path `0 - 1 - … - (n-1)` — maximal BFS depth.
    pub fn path(n: usize) -> Vec<(u32, u32)> {
        (1..n as u32).map(|v| (v - 1, v)).collect()
    }

    /// Cycle over `n` vertices.
    pub fn cycle(n: usize) -> Vec<(u32, u32)> {
        let mut e = Self::path(n);
        if n >= 2 {
            e.push((n as u32 - 1, 0));
        }
        e
    }

    /// Star with center 0 — maximal single-cell write contention in BFS's
    /// first level and CC's hooking.
    pub fn star(n: usize) -> Vec<(u32, u32)> {
        (1..n as u32).map(|v| (0, v)).collect()
    }

    /// Complete graph on `n` vertices.
    pub fn complete(n: usize) -> Vec<(u32, u32)> {
        let mut e = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                e.push((u, v));
            }
        }
        e
    }

    /// `rows × cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Vec<(u32, u32)> {
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        let mut e = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    e.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    e.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        e
    }

    /// `k` disjoint cliques of `size` vertices each — known component
    /// structure for CC tests. Vertex `i` belongs to component `i / size`.
    pub fn disjoint_cliques(k: usize, size: usize) -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for c in 0..k {
            let base = (c * size) as u32;
            for u in 0..size as u32 {
                for v in (u + 1)..size as u32 {
                    e.push((base + u, base + v));
                }
            }
        }
        e
    }

    /// A random forest over `n` vertices: each vertex `v ≥ 1` attaches to a
    /// uniform earlier vertex with probability `attach`, else starts a new
    /// tree. Gives random component structure with expected size control.
    pub fn random_forest(&mut self, n: usize, attach: f64) -> Vec<(u32, u32)> {
        assert!((0.0..=1.0).contains(&attach));
        let mut e = Vec::new();
        for v in 1..n as u32 {
            if self.rng.gen::<f64>() < attach {
                let p = self.rng.gen_range(0..v);
                e.push((p, v));
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn gnm_has_requested_count_and_no_loops() {
        let edges = GraphGen::new(1).gnm(100, 1000);
        assert_eq!(edges.len(), 1000);
        assert!(edges
            .iter()
            .all(|&(u, v)| u != v && (u as usize) < 100 && (v as usize) < 100));
    }

    #[test]
    fn gnm_is_seed_deterministic() {
        assert_eq!(GraphGen::new(7).gnm(50, 200), GraphGen::new(7).gnm(50, 200));
        assert_ne!(GraphGen::new(7).gnm(50, 200), GraphGen::new(8).gnm(50, 200));
    }

    #[test]
    fn gnm_simple_has_no_duplicate_pairs() {
        let edges = GraphGen::new(3).gnm_simple(30, 200);
        assert_eq!(edges.len(), 200);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_simple_rejects_impossible_density() {
        let _ = GraphGen::new(0).gnm_simple(4, 7);
    }

    #[test]
    fn rmat_bounds_and_skew() {
        let edges = GraphGen::new(5).rmat_standard(10, 20_000);
        assert_eq!(edges.len(), 20_000);
        assert!(edges.iter().all(|&(u, v)| u < 1024 && v < 1024 && u != v));
        // Skew: the max degree far exceeds the mean for standard R-MAT.
        let g = CsrGraph::from_edges(1024, &edges, true);
        assert!(g.max_degree() as f64 > 4.0 * g.mean_degree());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probs() {
        let _ = GraphGen::new(0).rmat(4, 10, (0.5, 0.5, 0.5, 0.5));
    }

    #[test]
    fn structured_families_have_expected_shapes() {
        assert_eq!(GraphGen::path(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(GraphGen::cycle(3).len(), 3);
        assert_eq!(GraphGen::star(5).len(), 4);
        assert_eq!(GraphGen::complete(5).len(), 10);
        // 2×3 grid: 2 rows × 2 horizontal + 1 × 3 vertical = 7 edges.
        assert_eq!(GraphGen::grid(2, 3).len(), 7);
        assert_eq!(GraphGen::path(1), vec![]);
        assert_eq!(GraphGen::cycle(1), vec![]);
    }

    #[test]
    fn disjoint_cliques_structure() {
        let edges = GraphGen::disjoint_cliques(3, 4);
        assert_eq!(edges.len(), 3 * 6);
        for &(u, v) in &edges {
            assert_eq!(u / 4, v / 4, "edge crosses cliques");
        }
    }

    #[test]
    fn random_forest_is_acyclic_and_bounded() {
        let edges = GraphGen::new(11).random_forest(500, 0.8);
        assert!(edges.len() < 500);
        // Acyclic by construction: every edge attaches v to some p < v.
        assert!(edges.iter().all(|&(p, v)| p < v));
    }
}
