//! CAS-if-Less-Than arbitration — the paper's contribution.
//!
//! Each concurrent-write target owns one auxiliary word, `last_round_updated`
//! (the paper's `lastRoundUpdated`), holding the ID of the last round in
//! which the target was claimed (0 = never). The claim operation is the
//! paper's Figure 1 translated to Rust atomics:
//!
//! ```text
//! inline bool canConWriteCASLT(unsigned &lastRoundUpdated, unsigned round) {
//!     bool x = false;
//!     if ((unsigned current = lastRoundUpdated) < round)   // fast-path load
//!         x = atomic_cas(&lastRoundUpdated, current, round);
//!     return x;
//! }
//! ```
//!
//! Two properties follow:
//!
//! * **Wait-free.** Every call completes in one load plus at most one CAS,
//!   independent of other threads' progress. A CAS failure is definitive —
//!   some other thread moved the cell to `round` (or the claim raced with a
//!   later epoch reset) — so there is no retry loop.
//! * **Bounded serialization.** Only threads whose fast-path load observed a
//!   stale value execute the CAS; after the first winner, every later
//!   arrival reads `== round` and skips the atomic entirely. At most
//!   `P_phys` CASes can be in flight at once, giving the O(1) claim cost of
//!   the paper's §6 analysis — in contrast to the gatekeeper scheme, where
//!   *all* competitors serialize on a fetch-and-increment.
//!
//! The cells never need reinitialization between rounds: advancing the round
//! counter re-arms all of them. Only exhaustion of the 32-bit round space
//! forces a reset (see [`crate::RoundCounter`]); `CasLtCell64` trades 2×
//! auxiliary memory for a practically inexhaustible round space.

use crate::sync::{AtomicU32, AtomicU64, Ordering};
use std::ops::Range;

use crossbeam_utils::CachePadded;

use crate::round::Round;
use crate::traits::{Arbiter, SliceArbiter};

/// A single CAS-LT arbitration word (32-bit rounds, matching the paper).
///
/// ```
/// use pram_core::{CasLtCell, Round};
///
/// let cell = CasLtCell::new();
/// let r1 = Round::from_iteration(0);
/// let r2 = Round::from_iteration(1);
/// assert!(cell.try_claim(r1));   // first claimant of round 1 wins
/// assert!(!cell.try_claim(r1));  // same round: already claimed
/// assert!(cell.try_claim(r2));   // new round re-arms the cell for free
/// ```
#[derive(Debug, Default)]
pub struct CasLtCell {
    last_round_updated: AtomicU32,
}

impl CasLtCell {
    /// A never-claimed cell.
    #[inline]
    pub const fn new() -> CasLtCell {
        CasLtCell {
            last_round_updated: AtomicU32::new(0),
        }
    }

    /// The paper's `canConWriteCASLT`: claim this cell for `round`.
    ///
    /// Returns `true` iff the caller is the unique winner among all claims
    /// for (`self`, `round`). Wait-free: one load, at most one CAS.
    #[inline]
    pub fn try_claim(&self, round: Round) -> bool {
        // Fast path: if the cell already carries the current round, the
        // write has been claimed — skip the atomic RMW entirely. Relaxed is
        // sufficient: the value only gates *writer* election; dependent
        // readers are ordered by the program's synchronization point (see
        // crate::ordering).
        let current = self.last_round_updated.load(Ordering::Relaxed);
        if current >= round.get() {
            crate::telemetry::record_fast_skip();
            return false;
        }
        // Slow path: compete. Exactly one CAS from `current` (or any other
        // stale value) to `round` succeeds; the rest observe the new value
        // and fail. `compare_exchange` (strong) keeps the wait-free bound —
        // a spurious failure of the weak variant would force a retry loop.
        //
        // Failure ordering is `Relaxed` because the loaded-on-failure value
        // is discarded: a loser returns `false` and performs no dependent
        // reads of the winner's payload — those happen only after the
        // round's synchronization point, which supplies the happens-before
        // edge (the same argument as the fast path's `Relaxed` load; see
        // crate::ordering). An `Acquire` failure ordering would order
        // against a value nobody looks at.
        crate::telemetry::record_cas_attempt();
        let won = self
            .last_round_updated
            .compare_exchange(current, round.get(), Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        if won {
            crate::telemetry::record_win();
        } else {
            crate::telemetry::record_cas_failure();
        }
        won
    }

    /// The last round this cell was claimed in, or `None` if never/reset.
    #[inline]
    pub fn last_claimed(&self) -> Option<Round> {
        match self.last_round_updated.load(Ordering::Relaxed) {
            0 => None,
            r => Some(Round(r)),
        }
    }

    /// Restore the never-claimed state (start of a new epoch).
    #[inline]
    pub fn reset(&mut self) {
        *self.last_round_updated.get_mut() = 0;
    }

    /// Shared-access reset, for parallel epoch-reset passes over disjoint
    /// ranges. Must not race with in-flight claims on the same cell.
    #[inline]
    pub fn reset_shared(&self) {
        self.last_round_updated.store(0, Ordering::Relaxed);
    }

    /// Raw fast-path load (used by the instrumented claim in `stats`).
    #[inline]
    pub(crate) fn load_raw(&self) -> u32 {
        self.last_round_updated.load(Ordering::Relaxed)
    }

    /// Raw claim CAS (used by the instrumented claim in `stats`).
    #[inline]
    pub(crate) fn cas_raw(&self, current: u32, new: u32) -> bool {
        self.last_round_updated
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl Arbiter for CasLtCell {
    #[inline]
    fn try_claim(&self, round: Round) -> bool {
        CasLtCell::try_claim(self, round)
    }
    fn reset(&mut self) {
        CasLtCell::reset(self);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A CAS-LT arbitration word with 64-bit rounds.
///
/// The 32-bit round space of [`CasLtCell`] wraps after ~4.3 billion
/// concurrent-write steps, forcing an O(K) epoch reset. The 64-bit variant
/// makes exhaustion unreachable in practice (half a million years at 1 ns
/// per round) at the cost of doubling the auxiliary memory — the
/// `ablate_width` bench quantifies the runtime difference.
#[derive(Debug, Default)]
pub struct CasLtCell64 {
    last_round_updated: AtomicU64,
}

impl CasLtCell64 {
    /// A never-claimed cell.
    #[inline]
    pub const fn new() -> CasLtCell64 {
        CasLtCell64 {
            last_round_updated: AtomicU64::new(0),
        }
    }

    /// Claim this cell for the 64-bit round `round` (must be nonzero and
    /// monotonically non-decreasing across calls, as with [`Round`]).
    #[inline]
    pub fn try_claim_wide(&self, round: u64) -> bool {
        debug_assert!(round != 0, "round 0 is the never-claimed sentinel");
        let current = self.last_round_updated.load(Ordering::Relaxed);
        if current >= round {
            crate::telemetry::record_fast_skip();
            return false;
        }
        // Relaxed failure ordering for the same reason as
        // [`CasLtCell::try_claim`]: the failure value is discarded.
        crate::telemetry::record_cas_attempt();
        let won = self
            .last_round_updated
            .compare_exchange(current, round, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        if won {
            crate::telemetry::record_win();
        } else {
            crate::telemetry::record_cas_failure();
        }
        won
    }

    /// The last 64-bit round this cell was claimed in (0 = never).
    #[inline]
    pub fn last_claimed_wide(&self) -> u64 {
        self.last_round_updated.load(Ordering::Relaxed)
    }

    /// Restore the never-claimed state.
    #[inline]
    pub fn reset(&mut self) {
        *self.last_round_updated.get_mut() = 0;
    }
}

impl Arbiter for CasLtCell64 {
    #[inline]
    fn try_claim(&self, round: Round) -> bool {
        self.try_claim_wide(round.widen())
    }
    fn reset(&mut self) {
        CasLtCell64::reset(self);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A packed array of [`CasLtCell`]s — one word per concurrent-write target.
///
/// This is the layout the paper's kernels use (`unsigned RoundWritten[N]`):
/// 4 bytes per target, 16 targets per cache line. Dense packing maximizes
/// the reach of each cache line during the read-mostly fast path at the cost
/// of false sharing between *winning* CASes on neighboring targets; compare
/// [`PaddedCasLtArray`] and the `ablate_padding` bench.
#[derive(Debug)]
pub struct CasLtArray {
    cells: Box<[CasLtCell]>,
}

impl CasLtArray {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> CasLtArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, CasLtCell::new);
        CasLtArray {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Claim target `index` for `round`. See [`CasLtCell::try_claim`].
    #[inline]
    pub fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }

    /// The last round target `index` was claimed in.
    #[inline]
    pub fn last_claimed(&self, index: usize) -> Option<Round> {
        self.cells[index].last_claimed()
    }

    /// Exclusive-access whole-array reset (start of a new epoch).
    pub fn reset(&mut self) {
        for c in self.cells.iter_mut() {
            c.reset();
        }
    }

    /// Access the underlying cells (e.g. to share sub-slices with workers).
    #[inline]
    pub fn cells(&self) -> &[CasLtCell] {
        &self.cells
    }
}

impl SliceArbiter for CasLtArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(self.cells.len() as u64);
    }
    fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A cache-line-padded array of CAS-LT cells.
///
/// Each cell occupies its own cache line (64/128 bytes via
/// `crossbeam_utils::CachePadded`), eliminating false sharing between CASes
/// on distinct targets at a 16–32× memory cost. Useful when targets are few
/// and hot (e.g. a handful of reduction cells); for per-vertex arbitration
/// the packed [`CasLtArray`] is usually superior because the fast path is
/// read-dominated.
#[derive(Debug)]
pub struct PaddedCasLtArray {
    cells: Box<[CachePadded<CasLtCell>]>,
}

impl PaddedCasLtArray {
    /// `len` never-claimed, cache-line-isolated cells.
    pub fn new(len: usize) -> PaddedCasLtArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || CachePadded::new(CasLtCell::new()));
        PaddedCasLtArray {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Claim target `index` for `round`.
    #[inline]
    pub fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }

    /// Exclusive-access whole-array reset.
    pub fn reset(&mut self) {
        for c in self.cells.iter_mut() {
            c.reset();
        }
    }
}

impl SliceArbiter for PaddedCasLtArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(self.cells.len() as u64);
    }
    fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// Ablation variant: CAS-LT **without** the pre-CAS load check — every
/// claim issues an atomic RMW (`fetch_max(round)`), winning iff the
/// previous value was older.
///
/// Semantically identical to [`CasLtArray`] (single winner per round,
/// reset-free re-arming) but with the gatekeeper method's cost structure:
/// all competitors serialize on the RMW. The `ablate_fastpath` bench uses
/// this to isolate how much of CAS-LT's advantage is the skip itself, which
/// is the paper's §5 claim ("we skip the atomic instruction once we have a
/// winner thread").
#[derive(Debug)]
pub struct AlwaysRmwCasLtArray {
    cells: Box<[AtomicU32]>,
}

impl AlwaysRmwCasLtArray {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> AlwaysRmwCasLtArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU32::new(0));
        AlwaysRmwCasLtArray {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl SliceArbiter for AlwaysRmwCasLtArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        // Unconditional RMW: the ablated fast path.
        crate::telemetry::record_cas_attempt();
        let won = self.cells[index].fetch_max(round.get(), Ordering::AcqRel) < round.get();
        if won {
            crate::telemetry::record_win();
        } else {
            crate::telemetry::record_cas_failure();
        }
        won
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
        crate::telemetry::record_rearm_resets(self.cells.len() as u64);
    }
    fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.store(0, Ordering::Relaxed);
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A packed array of [`CasLtCell64`]s — the auxiliary-width ablation
/// (8 bytes/target, inexhaustible round space; see [`CasLtCell64`]).
#[derive(Debug)]
pub struct CasLtArray64 {
    cells: Box<[CasLtCell64]>,
}

impl CasLtArray64 {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> CasLtArray64 {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, CasLtCell64::new);
        CasLtArray64 {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Claim target `index` for the 64-bit round `round`.
    #[inline]
    pub fn try_claim_wide(&self, index: usize, round: u64) -> bool {
        self.cells[index].try_claim_wide(round)
    }
}

impl SliceArbiter for CasLtArray64 {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim_wide(round.widen())
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
        crate::telemetry::record_rearm_resets(self.cells.len() as u64);
    }
    fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn r(i: u32) -> Round {
        Round::from_iteration(i)
    }

    #[test]
    fn single_thread_claim_semantics() {
        let c = CasLtCell::new();
        assert_eq!(c.last_claimed(), None);
        assert!(c.try_claim(r(0)));
        assert!(!c.try_claim(r(0)));
        assert_eq!(c.last_claimed(), Some(r(0)));
        assert!(c.try_claim(r(1)));
        assert_eq!(c.last_claimed(), Some(r(1)));
    }

    #[test]
    fn stale_round_never_wins() {
        let c = CasLtCell::new();
        assert!(c.try_claim(r(5)));
        // A thread late to the party with an older round must fail: the
        // fast-path comparison is `current >= round`.
        assert!(!c.try_claim(r(3)));
        assert!(!c.try_claim(r(5)));
        assert!(c.try_claim(r(6)));
    }

    #[test]
    fn skipping_rounds_is_allowed() {
        let c = CasLtCell::new();
        assert!(c.try_claim(r(0)));
        assert!(c.try_claim(r(100)));
        assert!(!c.try_claim(r(50)));
    }

    #[test]
    fn reset_rearms_old_rounds() {
        let mut c = CasLtCell::new();
        assert!(c.try_claim(r(9)));
        c.reset();
        assert!(c.try_claim(r(0)));
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        // The central invariant, hammered by real threads over many rounds.
        let threads = if cfg!(miri) { 4 } else { 8 };
        let rounds = if cfg!(miri) { 4 } else { 200 };
        let cell = CasLtCell::new();
        let wins = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..rounds {
                        barrier.wait();
                        if cell.try_claim(r(i)) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), rounds as usize);
    }

    #[test]
    fn array_claims_are_independent_per_cell() {
        let a = CasLtArray::new(4);
        assert!(a.try_claim(0, r(0)));
        assert!(a.try_claim(1, r(0)));
        assert!(!a.try_claim(0, r(0)));
        assert_eq!(a.last_claimed(2), None);
        assert_eq!(a.last_claimed(0), Some(r(0)));
    }

    #[test]
    #[should_panic]
    fn array_claim_out_of_bounds_panics() {
        let a = CasLtArray::new(2);
        a.try_claim(2, r(0));
    }

    #[test]
    fn array_reset_all_and_range() {
        let a = CasLtArray::new(8);
        for i in 0..8 {
            assert!(a.try_claim(i, r(0)));
        }
        a.reset_range(2..5);
        for i in 0..8 {
            let claimed_again = a.try_claim(i, r(0));
            assert_eq!(claimed_again, (2..5).contains(&i), "cell {i}");
        }
        a.reset_all();
        for i in 0..8 {
            assert!(a.try_claim(i, r(0)));
        }
    }

    #[test]
    fn wide_cell_accepts_rounds_beyond_u32() {
        let c = CasLtCell64::new();
        assert!(c.try_claim_wide(u64::from(u32::MAX) + 10));
        assert!(!c.try_claim_wide(u64::from(u32::MAX) + 10));
        assert!(c.try_claim_wide(u64::from(u32::MAX) + 11));
        assert_eq!(c.last_claimed_wide(), u64::from(u32::MAX) + 11);
    }

    #[test]
    fn wide_cell_as_arbiter_uses_narrow_rounds() {
        let c = CasLtCell64::new();
        assert!(Arbiter::try_claim(&c, r(0)));
        assert!(!Arbiter::try_claim(&c, r(0)));
        assert!(c.rearms_on_new_round());
    }

    #[test]
    fn padded_array_same_semantics_as_packed() {
        let a = PaddedCasLtArray::new(3);
        assert!(a.try_claim(1, r(0)));
        assert!(!a.try_claim(1, r(0)));
        assert!(a.try_claim(1, r(1)));
        a.reset_all();
        assert!(a.try_claim(1, r(0)));
    }

    #[test]
    fn padded_cells_occupy_distinct_cache_lines() {
        let a = PaddedCasLtArray::new(2);
        let p0 = &a.cells[0] as *const _ as usize;
        let p1 = &a.cells[1] as *const _ as usize;
        assert!(p1 - p0 >= 64, "expected cache-line separation");
    }

    #[test]
    fn always_rmw_variant_same_semantics() {
        let a = AlwaysRmwCasLtArray::new(2);
        assert!(a.try_claim(0, r(0)));
        assert!(!a.try_claim(0, r(0)));
        assert!(a.try_claim(0, r(1))); // rearms on round advance
        assert!(!a.try_claim(0, r(0))); // stale round loses
        assert!(a.rearms_on_new_round());
        a.reset_all();
        assert!(a.try_claim(0, r(0)));
        a.reset_range(0..1);
        assert!(a.try_claim(0, r(0)));
        assert!(!a.is_empty());
    }

    #[test]
    fn always_rmw_one_winner_under_contention() {
        let a = AlwaysRmwCasLtArray::new(1);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if a.try_claim(0, r(0)) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wide_array_same_semantics() {
        let a = CasLtArray64::new(2);
        assert!(SliceArbiter::try_claim(&a, 1, r(0)));
        assert!(!SliceArbiter::try_claim(&a, 1, r(0)));
        assert!(a.try_claim_wide(1, u64::from(u32::MAX) + 5));
        assert!(!SliceArbiter::try_claim(&a, 1, r(7)));
        a.reset_all();
        assert!(SliceArbiter::try_claim(&a, 1, r(0)));
        a.reset_range(1..2);
        assert!(SliceArbiter::try_claim(&a, 1, r(0)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn contended_multi_cell_rounds() {
        // Claims to different cells in the same round are independent wins.
        let cells = CasLtArray::new(16);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..cells.len() {
                        if cells.try_claim(i, r(0)) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 16);
    }
}
