//! Critical-section arbitration — the paper's "trivial but bad solution".
//!
//! §4 of the paper: *"A trivial but bad solution to this problem is to
//! encapsulate the arbitrary CWs within a critical section, which will cause
//! massive performance degradation."* We implement it anyway, both as the
//! correctness yardstick (a mutex makes the single-winner argument immune to
//! memory-ordering subtleties) and as the pessimistic baseline for the
//! `ablate_lock` bench.
//!
//! Each cell pairs a `parking_lot::Mutex` with the same `last_round_updated`
//! state machine as CAS-LT. Claims are blocking (not wait-free): a claimant
//! may wait behind every other competitor, and the OS may deschedule the
//! lock holder — precisely the failure modes lock-free arbitration avoids.

use std::ops::Range;

use crate::sync::Mutex;

use crate::round::Round;
use crate::traits::{Arbiter, SliceArbiter};

/// A mutex-guarded arbitration cell.
#[derive(Debug, Default)]
pub struct LockCell {
    last_round_updated: Mutex<u32>,
}

impl LockCell {
    /// A never-claimed cell.
    #[inline]
    pub const fn new() -> LockCell {
        LockCell {
            last_round_updated: Mutex::new(0),
        }
    }

    /// Claim under the lock: take the mutex, compare, update.
    ///
    /// Same observable semantics as [`crate::CasLtCell::try_claim`]
    /// (single winner per round, free re-arming on round advance), but the
    /// losers serialize through the critical section instead of skipping.
    pub fn try_claim(&self, round: Round) -> bool {
        crate::telemetry::record_lock_acquisition();
        let mut last = self.last_round_updated.lock();
        if *last >= round.get() {
            false
        } else {
            *last = round.get();
            crate::telemetry::record_win();
            true
        }
    }

    /// Restore the never-claimed state.
    pub fn reset(&mut self) {
        *self.last_round_updated.get_mut() = 0;
    }

    /// Shared-access reset (between rounds, no claims in flight).
    pub fn reset_shared(&self) {
        *self.last_round_updated.lock() = 0;
    }
}

impl Arbiter for LockCell {
    fn try_claim(&self, round: Round) -> bool {
        LockCell::try_claim(self, round)
    }
    fn reset(&mut self) {
        LockCell::reset(self);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A packed array of [`LockCell`]s.
#[derive(Debug)]
pub struct LockArray {
    cells: Box<[LockCell]>,
}

impl LockArray {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> LockArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, LockCell::new);
        LockArray {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Claim target `index` for `round`.
    #[inline]
    pub fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
}

impl SliceArbiter for LockArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(self.cells.len() as u64);
    }
    fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn r(i: u32) -> Round {
        Round::from_iteration(i)
    }

    #[test]
    fn same_state_machine_as_caslt() {
        let c = LockCell::new();
        assert!(c.try_claim(r(0)));
        assert!(!c.try_claim(r(0)));
        assert!(c.try_claim(r(1))); // round advance re-arms
        assert!(!c.try_claim(r(0))); // stale round loses
        let mut c = c;
        c.reset();
        assert!(c.try_claim(r(0)));
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let cell = LockCell::new();
        let wins = AtomicUsize::new(0);
        let threads = if cfg!(miri) { 4 } else { 8 };
        let rounds = if cfg!(miri) { 4u32 } else { 100u32 };
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..rounds {
                        barrier.wait();
                        if cell.try_claim(r(i)) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), rounds as usize);
    }

    #[test]
    fn array_reset_semantics() {
        let a = LockArray::new(4);
        for i in 0..4 {
            assert!(a.try_claim(i, r(0)));
        }
        a.reset_range(1..2);
        assert!(!a.try_claim(0, r(0)));
        assert!(a.try_claim(1, r(0)));
        a.reset_all();
        for i in 0..4 {
            assert!(a.try_claim(i, r(0)));
        }
        assert!(a.rearms_on_new_round());
        assert_eq!(SliceArbiter::len(&a), 4);
    }
}
