//! Gatekeeper (prefix-sum) arbitration — the XMT-inspired prior practice.
//!
//! The method the paper compares against (Vishkin, Caragea & Lee 2008,
//! realized with OpenMP `atomic capture` in the paper's Figure 2): every
//! competitor performs an atomic postfix increment on a per-target
//! *gatekeeper* counter, and the competitor that observed `0` wins:
//!
//! ```text
//! inline bool canConWriteAtomic(unsigned &gatekeeper) {
//!     unsigned x;
//!     #pragma omp atomic capture
//!     { x = gatekeeper; gatekeeper++; }
//!     return x == 0;
//! }
//! ```
//!
//! Two structural costs distinguish it from CAS-LT:
//!
//! * **Unconditional serialization.** Every claim executes the atomic RMW,
//!   even long after a winner exists, so all competitors to one target
//!   serialize on its cache line (the paper's §6: time `T(N) = P_PRAM(N)`).
//!   [`GatekeeperSkipCell`] adds the mitigation the paper mentions —
//!   a plain load first, skipping the RMW once the gatekeeper is nonzero.
//! * **Per-round reinitialization.** The gatekeeper carries no round
//!   information, so the entire array must be re-zeroed before every new
//!   concurrent-write round (the paper's Figure 3(b), lines 34–35): an extra
//!   O(K) pass with its own barrier, which CAS-LT eliminates.

use crate::sync::{AtomicU32, Ordering};
use std::ops::Range;

use crate::round::Round;
use crate::traits::{Arbiter, SliceArbiter};

/// A single gatekeeper counter (the paper's Figure 2).
///
/// ```
/// use pram_core::{Arbiter, GatekeeperCell, Round};
///
/// let g = GatekeeperCell::new();
/// assert!(g.try_claim(Round::FIRST));    // observed 0: winner
/// assert!(!g.try_claim(Round::FIRST));   // observed 1: loser
/// // A new round does NOT re-arm the cell …
/// assert!(!g.try_claim(Round::from_iteration(1)));
/// // … an explicit reset is required.
/// let mut g = g;
/// g.reset();
/// assert!(g.try_claim(Round::from_iteration(1)));
/// ```
#[derive(Debug, Default)]
pub struct GatekeeperCell {
    gatekeeper: AtomicU32,
}

impl GatekeeperCell {
    /// A zeroed (armed) gatekeeper.
    #[inline]
    pub const fn new() -> GatekeeperCell {
        GatekeeperCell {
            gatekeeper: AtomicU32::new(0),
        }
    }

    /// The paper's `canConWriteAtomic`: atomically post-increment and win
    /// iff the previous value was 0.
    ///
    /// Wrapping note: the counter saturates logically — after 2³²
    /// unreset claims the increment would wrap to 0 and elect a bogus second
    /// winner. The kernels in this workspace reset every round, bounding the
    /// count by the claim multiplicity of one round; `debug_assert!` guards
    /// the invariant in test builds.
    #[inline]
    pub fn try_claim_once(&self) -> bool {
        crate::telemetry::record_gatekeeper_rmw();
        let prev = self.gatekeeper.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            prev != u32::MAX,
            "gatekeeper wrapped: reset discipline violated"
        );
        if prev == 0 {
            crate::telemetry::record_win();
        }
        prev == 0
    }

    /// Current claim count since the last reset.
    #[inline]
    pub fn count(&self) -> u32 {
        self.gatekeeper.load(Ordering::Relaxed)
    }

    /// Re-arm (exclusive access).
    #[inline]
    pub fn reset(&mut self) {
        *self.gatekeeper.get_mut() = 0;
    }

    /// Re-arm through a shared reference — the building block of the
    /// per-round parallel reinitialization pass. Must not race with claims.
    #[inline]
    pub fn reset_shared(&self) {
        self.gatekeeper.store(0, Ordering::Relaxed);
    }
}

impl Arbiter for GatekeeperCell {
    /// The round argument is ignored: gatekeepers carry no round state.
    #[inline]
    fn try_claim(&self, _round: Round) -> bool {
        self.try_claim_once()
    }
    fn reset(&mut self) {
        GatekeeperCell::reset(self);
    }
    fn rearms_on_new_round(&self) -> bool {
        false
    }
}

/// Gatekeeper with the load-first mitigation (paper §5: "this can be
/// mitigated by skipping the atomic operation, once the gatekeeper variable
/// is no longer equal to 0").
///
/// Late arrivals read a nonzero gatekeeper and skip the RMW, removing the
/// post-decision serialization — but the scheme still requires the per-round
/// reset pass, which is what keeps it behind CAS-LT in the paper's CC
/// benchmark.
#[derive(Debug, Default)]
pub struct GatekeeperSkipCell {
    inner: GatekeeperCell,
}

impl GatekeeperSkipCell {
    /// A zeroed (armed) gatekeeper.
    #[inline]
    pub const fn new() -> GatekeeperSkipCell {
        GatekeeperSkipCell {
            inner: GatekeeperCell::new(),
        }
    }

    /// Claim: skip the atomic once a winner is known.
    #[inline]
    pub fn try_claim_once(&self) -> bool {
        if self.inner.gatekeeper.load(Ordering::Relaxed) != 0 {
            crate::telemetry::record_fast_skip();
            return false;
        }
        self.inner.try_claim_once()
    }

    /// Re-arm (exclusive access).
    #[inline]
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Re-arm through a shared reference (reset pass only).
    #[inline]
    pub fn reset_shared(&self) {
        self.inner.reset_shared();
    }
}

impl Arbiter for GatekeeperSkipCell {
    #[inline]
    fn try_claim(&self, _round: Round) -> bool {
        self.try_claim_once()
    }
    fn reset(&mut self) {
        GatekeeperSkipCell::reset(self);
    }
    fn rearms_on_new_round(&self) -> bool {
        false
    }
}

macro_rules! gatekeeper_array {
    ($(#[$meta:meta])* $name:ident, $cell:ident) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            cells: Box<[$cell]>,
        }

        impl $name {
            /// `len` armed gatekeepers.
            pub fn new(len: usize) -> $name {
                let mut v = Vec::with_capacity(len);
                v.resize_with(len, $cell::new);
                $name { cells: v.into_boxed_slice() }
            }

            /// Number of targets.
            #[inline]
            pub fn len(&self) -> usize {
                self.cells.len()
            }

            /// `true` if the array has no targets.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.cells.is_empty()
            }

            /// Claim target `index` (round-free; see [`GatekeeperCell`]).
            #[inline]
            pub fn try_claim_once(&self, index: usize) -> bool {
                self.cells[index].try_claim_once()
            }

            /// Exclusive-access whole-array re-arm.
            pub fn reset(&mut self) {
                for c in self.cells.iter_mut() {
                    c.reset();
                }
            }

            /// Access the underlying cells.
            #[inline]
            pub fn cells(&self) -> &[$cell] {
                &self.cells
            }
        }

        impl SliceArbiter for $name {
            fn len(&self) -> usize {
                self.cells.len()
            }
            #[inline]
            fn try_claim(&self, index: usize, _round: Round) -> bool {
                self.cells[index].try_claim_once()
            }
            fn reset_all(&self) {
                for c in self.cells.iter() {
                    c.reset_shared();
                }
                crate::telemetry::record_rearm_resets(self.cells.len() as u64);
            }
            fn reset_range(&self, range: Range<usize>) {
                let cells = &self.cells[range];
                for c in cells {
                    c.reset_shared();
                }
                crate::telemetry::record_rearm_resets(cells.len() as u64);
            }
            fn rearms_on_new_round(&self) -> bool {
                false
            }
        }
    };
}

gatekeeper_array!(
    /// A packed array of [`GatekeeperCell`]s (the paper's
    /// `unsigned gatekeeper[N]`). Requires [`SliceArbiter::reset_all`] (or a
    /// parallel [`SliceArbiter::reset_range`] pass) before every round.
    GatekeeperArray,
    GatekeeperCell
);

gatekeeper_array!(
    /// A packed array of [`GatekeeperSkipCell`]s — gatekeepers with the
    /// skip-once-nonzero mitigation. Same reset discipline as
    /// [`GatekeeperArray`].
    GatekeeperSkipArray,
    GatekeeperSkipCell
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn first_claim_wins_rest_lose() {
        let g = GatekeeperCell::new();
        assert!(g.try_claim_once());
        for _ in 0..10 {
            assert!(!g.try_claim_once());
        }
        assert_eq!(g.count(), 11);
    }

    #[test]
    fn reset_rearms() {
        let mut g = GatekeeperCell::new();
        assert!(g.try_claim_once());
        g.reset();
        assert!(g.try_claim_once());
    }

    #[test]
    fn skip_variant_does_not_inflate_count() {
        let g = GatekeeperSkipCell::new();
        assert!(g.try_claim_once());
        for _ in 0..100 {
            assert!(!g.try_claim_once());
        }
        // Losers skipped the RMW: the counter stays at 1.
        assert_eq!(g.inner.count(), 1);
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let threads = if cfg!(miri) { 4 } else { 8 };
        let iters = if cfg!(miri) { 4 } else { 200 };
        let wins = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(threads);
        let mut g = GatekeeperCell::new();
        for _ in 0..iters {
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        barrier.wait();
                        if g.try_claim_once() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            g.reset();
        }
        assert_eq!(wins.load(Ordering::Relaxed), iters);
    }

    #[test]
    fn exactly_one_winner_skip_variant() {
        let threads = if cfg!(miri) { 4 } else { 8 };
        let iters = if cfg!(miri) { 4 } else { 200 };
        let wins = AtomicUsize::new(0);
        let mut g = GatekeeperSkipCell::new();
        for _ in 0..iters {
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        if g.try_claim_once() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            g.reset();
        }
        assert_eq!(wins.load(Ordering::Relaxed), iters);
    }

    #[test]
    fn arrays_reset_all_and_range() {
        let a = GatekeeperArray::new(6);
        for i in 0..6 {
            assert!(a.try_claim_once(i));
            assert!(!a.try_claim_once(i));
        }
        a.reset_range(0..3);
        for i in 0..6 {
            assert_eq!(a.try_claim_once(i), i < 3, "cell {i}");
        }
        a.reset_all();
        for i in 0..6 {
            assert!(a.try_claim_once(i));
        }
    }

    #[test]
    fn arbiter_trait_ignores_round() {
        let g = GatekeeperCell::new();
        assert!(Arbiter::try_claim(&g, Round::FIRST));
        // New round, no reset: still claimed — the defining limitation.
        assert!(!Arbiter::try_claim(&g, Round::from_iteration(1)));
        assert!(!g.rearms_on_new_round());
    }

    #[test]
    fn skip_array_basic() {
        let a = GatekeeperSkipArray::new(2);
        assert!(SliceArbiter::try_claim(&a, 0, Round::FIRST));
        assert!(!SliceArbiter::try_claim(&a, 0, Round::FIRST));
        assert!(SliceArbiter::try_claim(&a, 1, Round::FIRST));
        a.reset_all();
        assert!(SliceArbiter::try_claim(&a, 0, Round::FIRST));
    }
}
