//! Priority concurrent writes — the strongest CRCW resolution rule.
//!
//! Under *Priority CRCW*, the competitor with the highest priority commits
//! its write (the paper's §2 lists "minimum processor rank" and "smallest
//! value written" as typical priority attributes). This module simulates the
//! rule on a multicore with a packed 64-bit CAS loop, demonstrating the
//! paper's observation that a weaker model's primitives can host a stronger
//! rule — at a measurable cost: the claim here is **lock-free but not
//! wait-free** (a claimant can be forced to retry while better offers keep
//! landing), in contrast to CAS-LT's one-load-one-CAS bound.
//!
//! ## Two-phase protocol
//!
//! Unlike arbitrary CW — where the first successful claimant simply *is* the
//! winner — a priority winner is only known once every competitor has made
//! its offer. Usage is therefore two-phase, with the program's existing
//! synchronization point between the phases:
//!
//! 1. **Offer phase:** every competitor calls [`PriorityCell::offer`] with
//!    its priority.
//! 2. *(barrier)*
//! 3. **Commit phase:** each competitor calls [`PriorityCell::is_winner`];
//!    the unique `true` recipient performs the write. (Another barrier is
//!    then needed before dependent reads, exactly as for the other schemes.)
//!
//! Smaller numeric priority wins ("minimum processor rank has the highest
//! priority"). Priorities must be unique within a round for the winner to be
//! unique; processor/thread IDs are the canonical choice.

use crate::sync::{AtomicU64, Ordering};
use std::ops::Range;

use crate::round::Round;

/// Packs (round, priority) so one 64-bit CAS updates both fields.
#[inline]
fn pack(round: u32, prio: u32) -> u64 {
    (u64::from(round) << 32) | u64::from(prio)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A priority-CW arbitration cell (min-priority-value wins).
///
/// ```
/// use pram_core::{PriorityCell, Round};
///
/// let cell = PriorityCell::new();
/// let round = Round::FIRST;
/// // Offer phase (normally from different threads):
/// cell.offer(round, 7);
/// cell.offer(round, 2);
/// cell.offer(round, 5);
/// // ... barrier ...
/// assert_eq!(cell.winner(round), Some(2));
/// assert!(cell.is_winner(round, 2));
/// assert!(!cell.is_winner(round, 7));
/// ```
#[derive(Debug, Default)]
pub struct PriorityCell {
    /// High 32 bits: last offered round. Low 32 bits: best (minimum)
    /// priority offered in that round.
    state: AtomicU64,
}

impl PriorityCell {
    /// A cell with no offers (round 0 = never).
    #[inline]
    pub const fn new() -> PriorityCell {
        PriorityCell {
            state: AtomicU64::new(0),
        }
    }

    /// Offer `prio` for `round`; returns `true` if this offer is the best
    /// seen so far (which does **not** yet make the caller the winner —
    /// a better offer may still arrive before the barrier).
    ///
    /// Lock-free: retries only when another offer lands concurrently.
    pub fn offer(&self, round: Round, prio: u32) -> bool {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let (cur_round, cur_prio) = unpack(cur);
            let beats = cur_round < round.get() || (cur_round == round.get() && prio < cur_prio);
            if !beats {
                // Stale round, or an equal-or-better offer already present.
                crate::telemetry::record_fast_skip();
                return false;
            }
            crate::telemetry::record_cas_attempt();
            match self.state.compare_exchange_weak(
                cur,
                pack(round.get(), prio),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    crate::telemetry::record_win();
                    return true;
                }
                Err(actual) => {
                    crate::telemetry::record_cas_failure();
                    cur = actual;
                }
            }
        }
    }

    /// After the offer phase's barrier: the winning priority for `round`,
    /// or `None` if no offer was made in that round.
    #[inline]
    pub fn winner(&self, round: Round) -> Option<u32> {
        let (r, p) = unpack(self.state.load(Ordering::Acquire));
        (r == round.get()).then_some(p)
    }

    /// After the offer phase's barrier: is `prio` the winner of `round`?
    #[inline]
    pub fn is_winner(&self, round: Round, prio: u32) -> bool {
        self.winner(round) == Some(prio)
    }

    /// Restore the no-offers state (start of a new epoch).
    pub fn reset(&mut self) {
        *self.state.get_mut() = 0;
    }

    /// Shared-access reset; must not race with offers.
    pub fn reset_shared(&self) {
        self.state.store(0, Ordering::Relaxed);
    }
}

/// An array of [`PriorityCell`]s, one per concurrent-write target.
#[derive(Debug)]
pub struct PriorityArray {
    cells: Box<[PriorityCell]>,
}

impl PriorityArray {
    /// `len` cells with no offers.
    pub fn new(len: usize) -> PriorityArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, PriorityCell::new);
        PriorityArray {
            cells: v.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the array has no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Offer `prio` for target `index` in `round`.
    #[inline]
    pub fn offer(&self, index: usize, round: Round, prio: u32) -> bool {
        self.cells[index].offer(round, prio)
    }

    /// Winning priority for target `index` in `round`, post-barrier.
    #[inline]
    pub fn winner(&self, index: usize, round: Round) -> Option<u32> {
        self.cells[index].winner(round)
    }

    /// Is `prio` the post-barrier winner of target `index` in `round`?
    #[inline]
    pub fn is_winner(&self, index: usize, round: Round, prio: u32) -> bool {
        self.cells[index].is_winner(round, prio)
    }

    /// Exclusive-access whole-array reset.
    pub fn reset(&mut self) {
        for c in self.cells.iter_mut() {
            c.reset();
        }
    }

    /// Reset targets in `range` via shared access (between rounds only).
    pub fn reset_range(&self, range: Range<usize>) {
        let cells = &self.cells[range];
        for c in cells {
            c.reset_shared();
        }
        crate::telemetry::record_rearm_resets(cells.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> Round {
        Round::from_iteration(i)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for &(a, b) in &[(0u32, 0u32), (1, 2), (u32::MAX, u32::MAX), (5, 0)] {
            assert_eq!(unpack(pack(a, b)), (a, b));
        }
    }

    #[test]
    fn minimum_priority_wins() {
        let c = PriorityCell::new();
        assert!(c.offer(r(0), 9));
        assert!(c.offer(r(0), 3));
        assert!(!c.offer(r(0), 7)); // 7 does not beat 3
        assert!(!c.offer(r(0), 3)); // ties do not displace
        assert_eq!(c.winner(r(0)), Some(3));
    }

    #[test]
    fn new_round_supersedes_old_offers() {
        let c = PriorityCell::new();
        assert!(c.offer(r(0), 1));
        assert!(c.offer(r(1), 42)); // worse prio but newer round
        assert_eq!(c.winner(r(1)), Some(42));
        assert_eq!(c.winner(r(0)), None); // old round's winner is gone
        assert!(!c.offer(r(0), 0)); // stale round cannot offer
    }

    #[test]
    fn no_offer_no_winner() {
        let c = PriorityCell::new();
        assert_eq!(c.winner(r(0)), None);
        assert!(!c.is_winner(r(0), 0));
    }

    #[test]
    fn unique_winner_under_contention_is_global_minimum() {
        let cell = PriorityCell::new();
        let threads: Vec<u32> = (0..16).rev().collect();
        std::thread::scope(|s| {
            for &prio in &threads {
                let cell = &cell;
                s.spawn(move || {
                    cell.offer(r(0), prio);
                });
            }
        });
        assert_eq!(cell.winner(r(0)), Some(0));
        let winners: Vec<u32> = threads
            .iter()
            .copied()
            .filter(|&p| cell.is_winner(r(0), p))
            .collect();
        assert_eq!(winners, vec![0]);
    }

    #[test]
    fn array_independent_targets() {
        let a = PriorityArray::new(3);
        a.offer(0, r(0), 5);
        a.offer(1, r(0), 1);
        assert_eq!(a.winner(0, r(0)), Some(5));
        assert_eq!(a.winner(1, r(0)), Some(1));
        assert_eq!(a.winner(2, r(0)), None);
        assert!(a.is_winner(0, r(0), 5));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn reset_clears_offers() {
        let mut a = PriorityArray::new(2);
        a.offer(0, r(3), 1);
        a.reset();
        assert_eq!(a.winner(0, r(3)), None);
        a.offer(1, r(0), 2);
        a.reset_range(1..2);
        assert_eq!(a.winner(1, r(0)), None);
    }
}
