//! Per-round arbitration telemetry: sharded counters, round snapshots,
//! and exporters.
//!
//! The paper's performance argument is mechanistic — CAS-LT wins because
//! most competitors take a contention-free read-only fast path and skip
//! both the atomic and the write, while the gatekeeper funnels *every*
//! claim through an RMW. [`crate::stats`] made that observable for
//! explicitly instrumented call sites; this module makes it observable for
//! the real kernels, per round, with zero cost when disabled:
//!
//! * **Recording** ([`CwTelemetry`] / [`TelemetryShard`] / [`ShardGuard`]):
//!   one cache-padded shard of counters per worker. A worker installs its
//!   shard into thread-local storage with a [`ShardGuard`]; the arbiters'
//!   claim paths call the `record_*` hooks in this module, which increment
//!   the installed shard with `Relaxed` adds (and are no-ops when no shard
//!   is installed). The counter atomics are routed through
//!   [`crate::sync`], so under `--cfg pram_check` the checker can verify
//!   the instrumentation is *passive* — recording never changes
//!   arbitration outcomes.
//! * **Snapshots** ([`RoundSnapshot`] / [`RoundReport`]): the execution
//!   substrate collects per-round counter deltas at barrier boundaries
//!   (where the team is quiescent, so deltas are exact) and merges them
//!   with the substrate's own [`crate::ExecStats`] counters.
//! * **Exporters**: [`RoundReport::metrics_json`] (a stable-schema JSON
//!   dump with derived rates, consumed by the bench tier and parseable
//!   back via [`RoundReport::from_metrics_json`]) and
//!   [`RoundReport::chrome_trace`] (a `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) span export of epochs, rounds,
//!   and barrier waits). Both serialize only timestamps recorded earlier
//!   by the collector — no clock is read during export, so output is a
//!   pure function of the report.
//!
//! With the `telemetry` cargo feature **disabled**, the recording types
//! are zero-sized and every `record_*` hook is an empty `#[inline(always)]`
//! function: the arbitration hot path compiles to the exact status quo
//! (no added atomics, no TLS access, unchanged cell layout — asserted by
//! `tests/telemetry_conservation.rs`). The report/exporter types remain
//! available so downstream code compiles identically either way.

use std::fmt;

use crate::stats::ExecWorkerSnapshot;

// ---------------------------------------------------------------------------
// Counter value types (always compiled; plain data, no atomics)
// ---------------------------------------------------------------------------

/// Concurrent-write claim counters, as plain values.
///
/// One instance describes either a point-in-time snapshot (a sum over
/// shards) or a delta between two snapshots. Which fields are populated
/// depends on the method: CAS-LT uses `fast_path_skips` / `cas_attempts` /
/// `cas_failures` / `wins` / `rearm_resets`; gatekeeper uses
/// `gatekeeper_rmws` (+ `fast_path_skips` for the skip variant) and
/// `rearm_resets`; lock uses `lock_acquisitions`; priority uses the CAS
/// family (each successful improvement CAS counts as a win); naive counts
/// only `wins`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CwCounters {
    /// Claims resolved by a read-only fast path (CAS-LT's pre-CAS load,
    /// the gatekeeper-skip pre-RMW load, priority's beats check): the
    /// atomic and the write were both skipped.
    pub fast_path_skips: u64,
    /// Compare-and-swap instructions issued (CAS-LT slow path, priority
    /// offer loop).
    pub cas_attempts: u64,
    /// CAS instructions that failed (another competitor moved the word).
    pub cas_failures: u64,
    /// Claims that returned `true` — for single-winner methods, exactly
    /// one per (cell, round).
    pub wins: u64,
    /// Gatekeeper fetch-and-increment instructions issued.
    pub gatekeeper_rmws: u64,
    /// Lock acquisitions on the critical-section baseline's claim path.
    pub lock_acquisitions: u64,
    /// Cells re-zeroed by explicit `reset_all` / `reset_range` passes
    /// (the re-arm cost CAS-LT's round advance avoids).
    pub rearm_resets: u64,
}

impl CwCounters {
    /// Claim calls that were *resolved* — by a fast-path skip or by
    /// issuing the method's atomic/lock (the denominator of
    /// [`CwCounters::fast_path_hit_rate`]). For CAS-LT this equals the
    /// number of `try_claim` calls.
    pub fn resolutions(&self) -> u64 {
        self.fast_path_skips + self.cas_attempts + self.gatekeeper_rmws + self.lock_acquisitions
    }

    /// Fraction of claim resolutions that took the read-only fast path,
    /// in `[0, 1]` (0.0 when nothing was recorded). The paper's headline
    /// mechanism metric: rises with contention for CAS-LT, identically
    /// zero for the plain gatekeeper.
    pub fn fast_path_hit_rate(&self) -> f64 {
        let total = self.resolutions();
        if total == 0 {
            0.0
        } else {
            self.fast_path_skips as f64 / total as f64
        }
    }

    /// Fraction of issued CASes that failed, in `[0, 1]` (0.0 when no CAS
    /// was issued). For CAS-LT a failure is definitive (wait-free, no
    /// retry); for the priority offer loop failures trigger retries.
    pub fn cas_retry_rate(&self) -> f64 {
        if self.cas_attempts == 0 {
            0.0
        } else {
            self.cas_failures as f64 / self.cas_attempts as f64
        }
    }

    /// Field-wise accumulate.
    pub fn add(&mut self, other: &CwCounters) {
        self.fast_path_skips += other.fast_path_skips;
        self.cas_attempts += other.cas_attempts;
        self.cas_failures += other.cas_failures;
        self.wins += other.wins;
        self.gatekeeper_rmws += other.gatekeeper_rmws;
        self.lock_acquisitions += other.lock_acquisitions;
        self.rearm_resets += other.rearm_resets;
    }

    /// Field-wise `self − baseline` (saturating): the counters accrued
    /// since `baseline` was snapshotted.
    pub fn delta_since(&self, baseline: &CwCounters) -> CwCounters {
        CwCounters {
            fast_path_skips: self
                .fast_path_skips
                .saturating_sub(baseline.fast_path_skips),
            cas_attempts: self.cas_attempts.saturating_sub(baseline.cas_attempts),
            cas_failures: self.cas_failures.saturating_sub(baseline.cas_failures),
            wins: self.wins.saturating_sub(baseline.wins),
            gatekeeper_rmws: self
                .gatekeeper_rmws
                .saturating_sub(baseline.gatekeeper_rmws),
            lock_acquisitions: self
                .lock_acquisitions
                .saturating_sub(baseline.lock_acquisitions),
            rearm_resets: self.rearm_resets.saturating_sub(baseline.rearm_resets),
        }
    }
}

impl fmt::Display for CwCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast_skips={} cas={} cas_failed={} wins={} gk_rmws={} locks={} resets={} \
             (fast-path {:.1}%, cas-retry {:.1}%)",
            self.fast_path_skips,
            self.cas_attempts,
            self.cas_failures,
            self.wins,
            self.gatekeeper_rmws,
            self.lock_acquisitions,
            self.rearm_resets,
            self.fast_path_hit_rate() * 100.0,
            self.cas_retry_rate() * 100.0
        )
    }
}

/// Execution-substrate counters, as plain values (the value-type face of
/// [`crate::ExecStats`]): barrier traffic and loop-scheduling
/// grab/steal traffic, summed over the team or accrued over one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecCounters {
    /// Barrier rendezvous completed.
    pub barrier_waits: u64,
    /// Nanoseconds spent waiting at barriers (summed over workers).
    pub barrier_wait_ns: u64,
    /// Loop chunks acquired from a worker's own share.
    pub grabs: u64,
    /// Steal attempts made after an own share drained.
    pub steal_attempts: u64,
    /// Steal attempts that took a chunk from a victim.
    pub steals: u64,
}

impl ExecCounters {
    /// Fraction of acquired chunks that were stolen, in `[0, 1]`.
    pub fn steal_ratio(&self) -> f64 {
        let total = self.grabs + self.steals;
        if total == 0 {
            0.0
        } else {
            self.steals as f64 / total as f64
        }
    }

    /// Field-wise accumulate.
    pub fn add(&mut self, other: &ExecCounters) {
        self.barrier_waits += other.barrier_waits;
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.grabs += other.grabs;
        self.steal_attempts += other.steal_attempts;
        self.steals += other.steals;
    }

    /// Field-wise `self − baseline` (saturating).
    pub fn delta_since(&self, baseline: &ExecCounters) -> ExecCounters {
        ExecCounters {
            barrier_waits: self.barrier_waits.saturating_sub(baseline.barrier_waits),
            barrier_wait_ns: self
                .barrier_wait_ns
                .saturating_sub(baseline.barrier_wait_ns),
            grabs: self.grabs.saturating_sub(baseline.grabs),
            steal_attempts: self.steal_attempts.saturating_sub(baseline.steal_attempts),
            steals: self.steals.saturating_sub(baseline.steals),
        }
    }
}

impl From<ExecWorkerSnapshot> for ExecCounters {
    fn from(s: ExecWorkerSnapshot) -> ExecCounters {
        ExecCounters {
            barrier_waits: s.barrier_waits,
            barrier_wait_ns: s.barrier_wait_ns,
            grabs: s.grabs,
            steal_attempts: s.steal_attempts,
            steals: s.steals,
        }
    }
}

/// One lock-step round's telemetry: counter deltas between the round's
/// opening and closing barriers, stamped with timestamps supplied by the
/// collector (never read at export time).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSnapshot {
    /// Which `converge_rounds` invocation (parallel region) this round
    /// belongs to.
    pub epoch: u32,
    /// Round index within the epoch (0-based iteration).
    pub round: u32,
    /// Kernel-supplied annotation (e.g. `"push"` / `"pull"` / `"hook"`);
    /// empty when the kernel did not annotate.
    pub label: String,
    /// Round start, nanoseconds on the collector's clock (relative to the
    /// collector's chosen origin).
    pub start_ns: u64,
    /// Round wall time, nanoseconds.
    pub wall_ns: u64,
    /// Claim-counter deltas accrued during the round.
    pub cw: CwCounters,
    /// Execution-counter deltas accrued during the round.
    pub exec: ExecCounters,
}

/// A full telemetry report: per-round snapshots plus whole-run totals
/// (the totals also cover work outside annotated rounds — `for_each`
/// regions, reset passes between rounds).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundReport {
    /// Team size the counters were collected under.
    pub threads: usize,
    /// Per-round snapshots, in collection order.
    pub rounds: Vec<RoundSnapshot>,
    /// Whole-run claim-counter totals.
    pub totals_cw: CwCounters,
    /// Whole-run execution-counter totals.
    pub totals_exec: ExecCounters,
}

const METRICS_SCHEMA: &str = "pram-telemetry-v1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cw_json(c: &CwCounters) -> String {
    format!(
        "{{\"fast_path_skips\": {}, \"cas_attempts\": {}, \"cas_failures\": {}, \
         \"wins\": {}, \"gatekeeper_rmws\": {}, \"lock_acquisitions\": {}, \
         \"rearm_resets\": {}}}",
        c.fast_path_skips,
        c.cas_attempts,
        c.cas_failures,
        c.wins,
        c.gatekeeper_rmws,
        c.lock_acquisitions,
        c.rearm_resets
    )
}

fn exec_json(e: &ExecCounters) -> String {
    format!(
        "{{\"barrier_waits\": {}, \"barrier_wait_ns\": {}, \"grabs\": {}, \
         \"steal_attempts\": {}, \"steals\": {}}}",
        e.barrier_waits, e.barrier_wait_ns, e.grabs, e.steal_attempts, e.steals
    )
}

impl RoundReport {
    /// The stable-schema JSON metrics dump (`pram-telemetry-v1`).
    ///
    /// Field ordering is fixed; counters are exact integers; the derived
    /// rates (`fast_path_hit_rate`, `cas_retry_rate`, `steal_ratio`) are
    /// redundant conveniences recomputed on parse. The output parses back
    /// to an equal report via [`RoundReport::from_metrics_json`].
    pub fn metrics_json(&self) -> String {
        let rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|r| {
                format!(
                    "{{\"epoch\": {}, \"round\": {}, \"label\": \"{}\", \"start_ns\": {}, \
                     \"wall_ns\": {}, \"cw\": {}, \"exec\": {}}}",
                    r.epoch,
                    r.round,
                    json_escape(&r.label),
                    r.start_ns,
                    r.wall_ns,
                    cw_json(&r.cw),
                    exec_json(&r.exec)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"{METRICS_SCHEMA}\",\n  \"threads\": {},\n  \"totals\": {{\n    \
             \"cw\": {},\n    \"exec\": {},\n    \"fast_path_hit_rate\": {:.6},\n    \
             \"cas_retry_rate\": {:.6},\n    \"steal_ratio\": {:.6}\n  }},\n  \"rounds\": [\n    \
             {}\n  ]\n}}\n",
            self.threads,
            cw_json(&self.totals_cw),
            exec_json(&self.totals_exec),
            self.totals_cw.fast_path_hit_rate(),
            self.totals_cw.cas_retry_rate(),
            self.totals_exec.steal_ratio(),
            rounds.join(",\n    ")
        )
    }

    /// Parse a [`RoundReport::metrics_json`] dump back into a report.
    ///
    /// Tolerates unknown extra fields; rejects a missing/mismatched
    /// `schema` tag and malformed JSON.
    pub fn from_metrics_json(s: &str) -> Result<RoundReport, String> {
        let root = mini_json::parse(s)?;
        let obj = root.as_obj("root")?;
        let schema = mini_json::field(obj, "schema")?.as_str("schema")?;
        if schema != METRICS_SCHEMA {
            return Err(format!(
                "unsupported telemetry schema {schema:?} (expected {METRICS_SCHEMA:?})"
            ));
        }
        let threads = mini_json::field(obj, "threads")?.as_u64("threads")? as usize;
        let totals = mini_json::field(obj, "totals")?.as_obj("totals")?;
        let totals_cw = parse_cw(mini_json::field(totals, "cw")?)?;
        let totals_exec = parse_exec(mini_json::field(totals, "exec")?)?;
        let mut rounds = Vec::new();
        for (i, r) in mini_json::field(obj, "rounds")?
            .as_arr("rounds")?
            .iter()
            .enumerate()
        {
            let ro = r.as_obj(&format!("rounds[{i}]"))?;
            rounds.push(RoundSnapshot {
                epoch: mini_json::field(ro, "epoch")?.as_u64("epoch")? as u32,
                round: mini_json::field(ro, "round")?.as_u64("round")? as u32,
                label: mini_json::field(ro, "label")?.as_str("label")?.to_string(),
                start_ns: mini_json::field(ro, "start_ns")?.as_u64("start_ns")?,
                wall_ns: mini_json::field(ro, "wall_ns")?.as_u64("wall_ns")?,
                cw: parse_cw(mini_json::field(ro, "cw")?)?,
                exec: parse_exec(mini_json::field(ro, "exec")?)?,
            });
        }
        Ok(RoundReport {
            threads,
            rounds,
            totals_cw,
            totals_exec,
        })
    }

    /// Export as `chrome://tracing` "Trace Event Format" JSON (load in
    /// `chrome://tracing` or Perfetto).
    ///
    /// Spans, in stable field order, all `ph: "X"` complete events with
    /// microsecond `ts`/`dur` derived from the recorded nanosecond
    /// timestamps (thousandths preserved):
    ///
    /// * track `tid 0` — one span per epoch, covering its rounds;
    /// * track `tid 1` — one span per round, named
    ///   `"round <n> [<label>]"`, with the round's claim counters in
    ///   `args`;
    /// * track `tid 2` — one `"barrier-wait"` span per round that
    ///   recorded barrier waiting, `dur` = the team's summed wait time.
    ///
    /// No clock is read here: output is a pure function of the report, so
    /// identical reports serialize byte-identically (the golden-file test
    /// pins this).
    pub fn chrome_trace(&self) -> String {
        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        let mut events: Vec<String> = Vec::new();
        // Epoch spans: rounds arrive in collection order, so each epoch's
        // extent is the min start / max end over its contiguous run.
        let mut epochs: Vec<(u32, u64, u64)> = Vec::new(); // (epoch, start, end)
        for r in &self.rounds {
            let end = r.start_ns + r.wall_ns;
            match epochs.last_mut() {
                Some((e, s, en)) if *e == r.epoch => {
                    *s = (*s).min(r.start_ns);
                    *en = (*en).max(end);
                }
                _ => epochs.push((r.epoch, r.start_ns, end)),
            }
        }
        for (e, start, end) in &epochs {
            events.push(format!(
                "{{\"name\": \"epoch {e}\", \"cat\": \"epoch\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": 0}}",
                us(*start),
                us(end.saturating_sub(*start))
            ));
        }
        for r in &self.rounds {
            let name = if r.label.is_empty() {
                format!("round {}", r.round)
            } else {
                format!("round {} [{}]", r.round, json_escape(&r.label))
            };
            events.push(format!(
                "{{\"name\": \"{name}\", \"cat\": \"round\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": 1, \"args\": {}}}",
                us(r.start_ns),
                us(r.wall_ns),
                cw_json(&r.cw)
            ));
        }
        for r in &self.rounds {
            if r.exec.barrier_wait_ns > 0 {
                events.push(format!(
                    "{{\"name\": \"barrier-wait\", \"cat\": \"barrier\", \"ph\": \"X\", \
                     \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": 2, \
                     \"args\": {{\"barrier_waits\": {}}}}}",
                    us(r.start_ns),
                    us(r.exec.barrier_wait_ns),
                    r.exec.barrier_waits
                ));
            }
        }
        format!(
            "{{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n  {}\n ]}}\n",
            events.join(",\n  ")
        )
    }
}

fn parse_cw(v: &mini_json::Value) -> Result<CwCounters, String> {
    let o = v.as_obj("cw")?;
    Ok(CwCounters {
        fast_path_skips: mini_json::field(o, "fast_path_skips")?.as_u64("fast_path_skips")?,
        cas_attempts: mini_json::field(o, "cas_attempts")?.as_u64("cas_attempts")?,
        cas_failures: mini_json::field(o, "cas_failures")?.as_u64("cas_failures")?,
        wins: mini_json::field(o, "wins")?.as_u64("wins")?,
        gatekeeper_rmws: mini_json::field(o, "gatekeeper_rmws")?.as_u64("gatekeeper_rmws")?,
        lock_acquisitions: mini_json::field(o, "lock_acquisitions")?.as_u64("lock_acquisitions")?,
        rearm_resets: mini_json::field(o, "rearm_resets")?.as_u64("rearm_resets")?,
    })
}

fn parse_exec(v: &mini_json::Value) -> Result<ExecCounters, String> {
    let o = v.as_obj("exec")?;
    Ok(ExecCounters {
        barrier_waits: mini_json::field(o, "barrier_waits")?.as_u64("barrier_waits")?,
        barrier_wait_ns: mini_json::field(o, "barrier_wait_ns")?.as_u64("barrier_wait_ns")?,
        grabs: mini_json::field(o, "grabs")?.as_u64("grabs")?,
        steal_attempts: mini_json::field(o, "steal_attempts")?.as_u64("steal_attempts")?,
        steals: mini_json::field(o, "steals")?.as_u64("steals")?,
    })
}

/// A dependency-free JSON reader, just large enough for the telemetry
/// round-trip (the workspace vendors no serde).
mod mini_json {
    /// A parsed JSON value. Integers without fraction/exponent/sign are
    /// kept exact as `UInt`.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Exact non-negative integer.
        UInt(u64),
        /// Any other number.
        Float(f64),
        /// String (escapes decoded).
        Str(String),
        /// Boolean.
        Bool(bool),
        /// null.
        Null,
        /// Array.
        Arr(Vec<Value>),
        /// Object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_obj(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(o) => Ok(o),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }
        pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(a) => Ok(a),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::UInt(n) => Ok(*n),
                other => Err(format!("{what}: expected unsigned integer, got {other:?}")),
            }
        }
    }

    /// Look up `key` in an object.
    pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.ws();
            self.b
                .get(self.i)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, got {:?}",
                    c as char, self.i, self.b[self.i] as char
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                b'-' | b'0'..=b'9' => self.number(),
                c => Err(format!("unexpected {:?} at byte {}", c as char, self.i)),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            self.ws();
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("expected {word:?} at byte {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Obj(fields));
                    }
                    c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Arr(items));
                    }
                    c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                self.i += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("bad \\u{code:04x}"))?,
                                );
                            }
                            c => return Err(format!("unsupported escape \\{}", c as char)),
                        }
                    }
                    c => {
                        // Re-assemble multi-byte UTF-8 sequences verbatim.
                        let start = self.i - 1;
                        let len = if c < 0x80 {
                            1
                        } else if c >= 0xF0 {
                            4
                        } else if c >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        self.i = start + len;
                        let chunk = self
                            .b
                            .get(start..self.i)
                            .ok_or_else(|| "truncated UTF-8".to_string())?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.ws();
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while self.b.get(self.i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Recording side — feature "telemetry" ON
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
mod recording {
    use std::cell::Cell;

    use crossbeam_utils::CachePadded;

    use super::CwCounters;
    // Routed through the facade so `--cfg pram_check` sees (and can
    // schedule around) every telemetry increment — that is how the
    // passivity model proves recording never perturbs arbitration.
    use crate::sync::{AtomicU64, Ordering};

    #[derive(Debug)]
    struct ShardSlots {
        fast_path_skips: AtomicU64,
        cas_attempts: AtomicU64,
        cas_failures: AtomicU64,
        wins: AtomicU64,
        gatekeeper_rmws: AtomicU64,
        lock_acquisitions: AtomicU64,
        rearm_resets: AtomicU64,
    }

    impl ShardSlots {
        const fn new() -> ShardSlots {
            ShardSlots {
                fast_path_skips: AtomicU64::new(0),
                cas_attempts: AtomicU64::new(0),
                cas_failures: AtomicU64::new(0),
                wins: AtomicU64::new(0),
                gatekeeper_rmws: AtomicU64::new(0),
                lock_acquisitions: AtomicU64::new(0),
                rearm_resets: AtomicU64::new(0),
            }
        }
    }

    /// One worker's claim counters, on its own cache line(s) so recording
    /// never bounces a line between the threads it observes.
    #[derive(Debug)]
    pub struct TelemetryShard {
        slots: CachePadded<ShardSlots>,
    }

    impl TelemetryShard {
        /// A zeroed shard.
        pub fn new() -> TelemetryShard {
            TelemetryShard {
                slots: CachePadded::new(ShardSlots::new()),
            }
        }

        /// A consistent-enough copy of this shard (exact when its owner
        /// is quiescent).
        pub fn snapshot(&self) -> CwCounters {
            let s = &*self.slots;
            CwCounters {
                fast_path_skips: s.fast_path_skips.load(Ordering::Relaxed),
                cas_attempts: s.cas_attempts.load(Ordering::Relaxed),
                cas_failures: s.cas_failures.load(Ordering::Relaxed),
                wins: s.wins.load(Ordering::Relaxed),
                gatekeeper_rmws: s.gatekeeper_rmws.load(Ordering::Relaxed),
                lock_acquisitions: s.lock_acquisitions.load(Ordering::Relaxed),
                rearm_resets: s.rearm_resets.load(Ordering::Relaxed),
            }
        }
    }

    impl Default for TelemetryShard {
        fn default() -> TelemetryShard {
            TelemetryShard::new()
        }
    }

    /// The sharded claim-counter set for one team: shard `i` belongs to
    /// worker `i`, each worker records only into its own shard (via
    /// [`ShardGuard`]), and [`CwTelemetry::totals`] sums shards.
    #[derive(Debug)]
    pub struct CwTelemetry {
        shards: Box<[TelemetryShard]>,
    }

    impl CwTelemetry {
        /// Zeroed shards for a team of `threads` workers.
        pub fn new(threads: usize) -> CwTelemetry {
            let mut v = Vec::with_capacity(threads.max(1));
            v.resize_with(threads.max(1), TelemetryShard::new);
            CwTelemetry {
                shards: v.into_boxed_slice(),
            }
        }

        /// Number of shards (the team size, at least 1).
        pub fn shards(&self) -> usize {
            self.shards.len()
        }

        /// Worker `i`'s shard.
        pub fn shard(&self, i: usize) -> &TelemetryShard {
            &self.shards[i]
        }

        /// Sum over all shards (exact when the team is quiescent, e.g.
        /// between a round's closing barrier and the next round's opening
        /// rendezvous).
        pub fn totals(&self) -> CwCounters {
            let mut total = CwCounters::default();
            for s in self.shards.iter() {
                total.add(&s.snapshot());
            }
            total
        }
    }

    thread_local! {
        /// Where this thread's `record_*` calls land; null = recording
        /// disabled (the default for every thread).
        static SINK: Cell<*const TelemetryShard> = const { Cell::new(std::ptr::null()) };
    }

    /// RAII registration of a shard as the current thread's recording
    /// sink. Restores the previous sink on drop, so guards nest; the
    /// borrow keeps the shard alive for the registration's lifetime.
    /// `!Send` by construction (raw pointer member): a guard cannot
    /// outlive its thread's stack frame on another thread.
    #[derive(Debug)]
    pub struct ShardGuard<'a> {
        _shard: &'a TelemetryShard,
        prev: *const TelemetryShard,
    }

    impl<'a> ShardGuard<'a> {
        /// Route this thread's `record_*` calls into `shard` until the
        /// guard drops.
        pub fn install(shard: &'a TelemetryShard) -> ShardGuard<'a> {
            let prev = SINK.with(|s| s.replace(shard as *const TelemetryShard));
            ShardGuard {
                _shard: shard,
                prev,
            }
        }
    }

    impl Drop for ShardGuard<'_> {
        fn drop(&mut self) {
            SINK.with(|s| s.set(self.prev));
        }
    }

    #[inline]
    fn with_sink(f: impl FnOnce(&ShardSlots)) {
        let p = SINK.with(|s| s.get());
        if !p.is_null() {
            // SAFETY: `p` was installed by a live `ShardGuard` on this
            // thread, whose `&TelemetryShard` borrow outlives the guard
            // (and the guard restores the previous sink on drop), so the
            // shard is alive for the duration of this call.
            let shard = unsafe { &*p };
            f(&shard.slots);
        }
    }

    /// A claim resolved by a read-only fast path.
    #[inline]
    pub(crate) fn record_fast_skip() {
        with_sink(|s| {
            s.fast_path_skips.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// A CAS issued on a claim path.
    #[inline]
    pub(crate) fn record_cas_attempt() {
        with_sink(|s| {
            s.cas_attempts.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// A claim-path CAS that failed.
    #[inline]
    pub(crate) fn record_cas_failure() {
        with_sink(|s| {
            s.cas_failures.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// A claim that returned `true`.
    #[inline]
    pub(crate) fn record_win() {
        with_sink(|s| {
            s.wins.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// A gatekeeper fetch-and-increment issued.
    #[inline]
    pub(crate) fn record_gatekeeper_rmw() {
        with_sink(|s| {
            s.gatekeeper_rmws.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// A lock acquired on the lock baseline's claim path.
    #[inline]
    pub(crate) fn record_lock_acquisition() {
        with_sink(|s| {
            s.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// `n` cells re-zeroed by a reset pass.
    #[inline]
    pub(crate) fn record_rearm_resets(n: u64) {
        if n > 0 {
            with_sink(|s| {
                s.rearm_resets.fetch_add(n, Ordering::Relaxed);
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Recording side — feature "telemetry" OFF: ZSTs and empty inline hooks,
// so dependents compile unchanged and the hot path is the exact status quo.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry"))]
mod recording {
    use super::CwCounters;

    /// Disabled-build stand-in: zero-sized, records nothing.
    #[derive(Debug, Default)]
    pub struct TelemetryShard {
        _private: (),
    }

    impl TelemetryShard {
        /// Always-zero snapshot.
        pub fn snapshot(&self) -> CwCounters {
            CwCounters::default()
        }
    }

    static STUB_SHARD: TelemetryShard = TelemetryShard { _private: () };

    /// Disabled-build stand-in: zero-sized, records nothing.
    #[derive(Debug, Default)]
    pub struct CwTelemetry {
        _private: (),
    }

    impl CwTelemetry {
        /// No shards to allocate.
        pub fn new(_threads: usize) -> CwTelemetry {
            CwTelemetry { _private: () }
        }
        /// Reported as 0 in disabled builds.
        pub fn shards(&self) -> usize {
            0
        }
        /// A shared zero-sized stub shard.
        pub fn shard(&self, _i: usize) -> &TelemetryShard {
            &STUB_SHARD
        }
        /// Always zero.
        pub fn totals(&self) -> CwCounters {
            CwCounters::default()
        }
    }

    /// Disabled-build stand-in: installs nothing.
    #[derive(Debug)]
    pub struct ShardGuard<'a> {
        _shard: &'a TelemetryShard,
    }

    impl<'a> ShardGuard<'a> {
        /// No-op registration.
        pub fn install(shard: &'a TelemetryShard) -> ShardGuard<'a> {
            ShardGuard { _shard: shard }
        }
    }

    #[inline(always)]
    pub(crate) fn record_fast_skip() {}
    #[inline(always)]
    pub(crate) fn record_cas_attempt() {}
    #[inline(always)]
    pub(crate) fn record_cas_failure() {}
    #[inline(always)]
    pub(crate) fn record_win() {}
    #[inline(always)]
    pub(crate) fn record_gatekeeper_rmw() {}
    #[inline(always)]
    pub(crate) fn record_lock_acquisition() {}
    #[inline(always)]
    pub(crate) fn record_rearm_resets(_n: u64) {}
}

pub use recording::{CwTelemetry, ShardGuard, TelemetryShard};

pub(crate) use recording::{
    record_cas_attempt, record_cas_failure, record_fast_skip, record_gatekeeper_rmw,
    record_lock_acquisition, record_rearm_resets, record_win,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RoundReport {
        RoundReport {
            threads: 4,
            rounds: vec![
                RoundSnapshot {
                    epoch: 0,
                    round: 0,
                    label: "push".to_string(),
                    start_ns: 1_000,
                    wall_ns: 2_500,
                    cw: CwCounters {
                        fast_path_skips: 5,
                        cas_attempts: 7,
                        cas_failures: 3,
                        wins: 4,
                        gatekeeper_rmws: 0,
                        lock_acquisitions: 0,
                        rearm_resets: 0,
                    },
                    exec: ExecCounters {
                        barrier_waits: 8,
                        barrier_wait_ns: 900,
                        grabs: 12,
                        steal_attempts: 2,
                        steals: 1,
                    },
                },
                RoundSnapshot {
                    epoch: 0,
                    round: 1,
                    label: String::new(),
                    start_ns: 3_500,
                    wall_ns: 1_000,
                    cw: CwCounters {
                        fast_path_skips: 9,
                        cas_attempts: 1,
                        cas_failures: 0,
                        wins: 1,
                        ..CwCounters::default()
                    },
                    exec: ExecCounters::default(),
                },
            ],
            totals_cw: CwCounters {
                fast_path_skips: 14,
                cas_attempts: 8,
                cas_failures: 3,
                wins: 5,
                gatekeeper_rmws: 0,
                lock_acquisitions: 0,
                rearm_resets: 16,
            },
            totals_exec: ExecCounters {
                barrier_waits: 8,
                barrier_wait_ns: 900,
                grabs: 12,
                steal_attempts: 2,
                steals: 1,
            },
        }
    }

    #[test]
    fn counter_math_rates_add_delta() {
        let mut a = CwCounters {
            fast_path_skips: 6,
            cas_attempts: 2,
            cas_failures: 1,
            wins: 1,
            ..CwCounters::default()
        };
        assert_eq!(a.resolutions(), 8);
        assert!((a.fast_path_hit_rate() - 0.75).abs() < 1e-12);
        assert!((a.cas_retry_rate() - 0.5).abs() < 1e-12);
        let b = a;
        a.add(&b);
        assert_eq!(a.fast_path_skips, 12);
        assert_eq!(a.delta_since(&b), b);
        assert_eq!(CwCounters::default().fast_path_hit_rate(), 0.0);
        assert_eq!(CwCounters::default().cas_retry_rate(), 0.0);
        let mut e = ExecCounters {
            grabs: 3,
            steals: 1,
            steal_attempts: 2,
            ..ExecCounters::default()
        };
        assert!((e.steal_ratio() - 0.25).abs() < 1e-12);
        let e0 = e;
        e.add(&e0);
        assert_eq!(e.grabs, 6);
        assert_eq!(e.delta_since(&e0), e0);
        assert_eq!(ExecCounters::default().steal_ratio(), 0.0);
    }

    #[test]
    fn exec_counters_from_snapshot() {
        let s = ExecWorkerSnapshot {
            barrier_waits: 1,
            barrier_wait_ns: 2,
            grabs: 3,
            steal_attempts: 4,
            steals: 5,
        };
        let e = ExecCounters::from(s);
        assert_eq!(e.barrier_waits, 1);
        assert_eq!(e.steals, 5);
    }

    #[test]
    fn metrics_json_round_trips() {
        let report = sample_report();
        let json = report.metrics_json();
        let back = RoundReport::from_metrics_json(&json).expect("round trip");
        assert_eq!(back, report);
        // Serialization is a pure function of the report.
        assert_eq!(back.metrics_json(), json);
    }

    #[test]
    fn metrics_json_rejects_bad_input() {
        assert!(RoundReport::from_metrics_json("").is_err());
        assert!(RoundReport::from_metrics_json("{\"schema\": \"other\"}").is_err());
        assert!(RoundReport::from_metrics_json("{\"threads\": 1}").is_err());
        assert!(RoundReport::from_metrics_json("[1, 2").is_err());
    }

    #[test]
    fn chrome_trace_is_deterministic_and_monotone() {
        let report = sample_report();
        let trace = report.chrome_trace();
        assert_eq!(trace, report.chrome_trace());
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("epoch 0"));
        assert!(trace.contains("round 0 [push]"));
        assert!(trace.contains("round 1"));
        assert!(trace.contains("barrier-wait"));
        // Round spans appear in recorded (monotone-timestamp) order.
        let p0 = trace.find("round 0 [push]").unwrap();
        let p1 = trace.find("\"round 1\"").unwrap();
        assert!(p0 < p1);
    }

    #[test]
    fn display_formats() {
        let c = sample_report().totals_cw;
        let txt = format!("{c}");
        assert!(txt.contains("fast_skips=14"));
        assert!(txt.contains("resets=16"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn recording_lands_in_installed_shard_only() {
        let telem = CwTelemetry::new(2);
        // No guard installed: hooks are no-ops.
        record_win();
        assert_eq!(telem.totals(), CwCounters::default());
        {
            let _g = ShardGuard::install(telem.shard(0));
            record_fast_skip();
            record_cas_attempt();
            record_cas_failure();
            record_win();
            record_gatekeeper_rmw();
            record_lock_acquisition();
            record_rearm_resets(5);
            record_rearm_resets(0);
        }
        // Guard dropped: recording is off again.
        record_win();
        let t = telem.totals();
        assert_eq!(t.fast_path_skips, 1);
        assert_eq!(t.cas_attempts, 1);
        assert_eq!(t.cas_failures, 1);
        assert_eq!(t.wins, 1);
        assert_eq!(t.gatekeeper_rmws, 1);
        assert_eq!(t.lock_acquisitions, 1);
        assert_eq!(t.rearm_resets, 5);
        assert_eq!(telem.shard(1).snapshot(), CwCounters::default());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn shard_guards_nest_and_restore() {
        let telem = CwTelemetry::new(2);
        let g0 = ShardGuard::install(telem.shard(0));
        record_win();
        {
            let _g1 = ShardGuard::install(telem.shard(1));
            record_win();
        }
        record_win();
        drop(g0);
        record_win(); // no sink
        assert_eq!(telem.shard(0).snapshot().wins, 2);
        assert_eq!(telem.shard(1).snapshot().wins, 1);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_build_types_are_zero_sized_no_ops() {
        assert_eq!(std::mem::size_of::<CwTelemetry>(), 0);
        assert_eq!(std::mem::size_of::<TelemetryShard>(), 0);
        // The arbiters themselves never carry counters — with telemetry
        // off, a cell is exactly its round word, nothing more.
        assert_eq!(
            std::mem::size_of::<crate::CasLtCell>(),
            std::mem::size_of::<u32>()
        );
        let telem = CwTelemetry::new(8);
        let _g = ShardGuard::install(telem.shard(0));
        record_win();
        record_rearm_resets(100);
        assert_eq!(telem.totals(), CwCounters::default());
        assert_eq!(telem.shards(), 0);
    }
}
