//! # pram-core — concurrent-write arbitration for CRCW PRAM kernels
//!
//! The Concurrent Read Concurrent Write (CRCW) PRAM model allows many
//! processors to write the same shared-memory cell in the same time step.
//! Real multicores do not: unsynchronized concurrent stores are a data race,
//! and even when each individual store is made atomic, a logical write that
//! spans several words (a struct copy, or updates to several parallel
//! arrays) can be torn between competing writers.
//!
//! This crate implements the arbitration schemes studied in
//! *"Implementing Arbitrary/Common Concurrent Writes of CRCW PRAM"*
//! (Ghanim, ElWasif, Bernholdt — ICPP 2021):
//!
//! * [`CasLtCell`] / [`CasLtArray`] — the paper's contribution, the
//!   **CAS-if-Less-Than** (CAS-LT) claim. One auxiliary word per
//!   concurrent-write target records the ID of the last *round* in which the
//!   target was claimed. A competing thread first loads the word; if it
//!   already equals the current round the write has been claimed and the
//!   thread skips both the atomic and the write (the contention-free fast
//!   path). Otherwise it issues a single compare-and-swap from the observed
//!   stale value to the current round; exactly one competitor succeeds and
//!   becomes the **winner**. Advancing the round ID re-arms every cell at
//!   zero cost — no reinitialization pass is ever needed.
//! * [`GatekeeperCell`] / [`GatekeeperArray`] — the XMT-inspired prefix-sum
//!   method (Vishkin et al. 2008): every competitor unconditionally performs
//!   an atomic fetch-and-increment on a per-target gatekeeper; the thread
//!   that observed `0` wins. All competitors serialize on the atomic, and
//!   the gatekeeper array must be re-zeroed before every new round.
//! * [`GatekeeperSkipCell`] — the mitigation the paper mentions in §5:
//!   a plain load first, skipping the atomic once the gatekeeper is nonzero.
//! * [`NaiveArbiter`] — no arbitration: every competitor "wins". This is
//!   the Rodinia-BFS practice of issuing all writes and letting the memory
//!   system serialize them. It is only sound for *common* writes of a single
//!   machine word; [`naive`] documents why.
//! * [`LockCell`] — the trivial-but-bad critical-section baseline.
//! * [`PriorityCell`] — *priority* CRCW writes (strongest PRAM rule) built
//!   from a packed 64-bit CAS loop, used to demonstrate that the weaker
//!   rules of this crate can be strengthened when an algorithm needs it.
//!
//! Multi-word payloads are covered by [`ConCell`] and [`ConVec`]
//! (claim-then-publish cells whose winner gains exclusive `&mut` access for
//! the duration of the round).
//!
//! ## The round discipline
//!
//! Rounds are the unit of re-arming. A *round* corresponds to one PRAM time
//! step containing concurrent writes; all claims issued with the same
//! [`Round`] compete, and exactly one wins per cell. Before the next
//! concurrent-write step, obtain a fresh round from a [`RoundCounter`]
//! (or reuse a loop iteration counter, as the paper suggests). A
//! **synchronization point** (barrier) is required between the writes of one
//! round and any dependent reads — arbitration orders *writers*, not
//! readers; see [`ordering`] for the memory-ordering argument.
//!
//! ## Quick example
//!
//! ```
//! use pram_core::{CasLtArray, RoundCounter};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let cells = CasLtArray::new(1);
//! let winner_count = AtomicUsize::new(0);
//! let mut rounds = RoundCounter::new();
//! let round = rounds.next_round().unwrap();
//!
//! std::thread::scope(|s| {
//!     for _ in 0..8 {
//!         s.spawn(|| {
//!             if cells.try_claim(0, round) {
//!                 // we are the unique winner for (cell 0, this round)
//!                 winner_count.fetch_add(1, Ordering::Relaxed);
//!             }
//!         });
//!     }
//! });
//! assert_eq!(winner_count.load(Ordering::Relaxed), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod bitmap;
pub mod caslt;
pub mod gatekeeper;
pub mod lock;
pub mod naive;
pub mod ordering;
pub mod payload;
pub mod priority;
pub mod round;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod traits;

pub use adaptive::{AdaptiveArbiter, AdaptivePolicy, Delegate, SwitchDecision, WriteProfile};
pub use bitmap::{AtomicBitmap, BitGatekeeperArray};
pub use caslt::{
    AlwaysRmwCasLtArray, CasLtArray, CasLtArray64, CasLtCell, CasLtCell64, PaddedCasLtArray,
};
pub use gatekeeper::{GatekeeperArray, GatekeeperCell, GatekeeperSkipArray, GatekeeperSkipCell};
pub use lock::{LockArray, LockCell};
pub use naive::{NaiveArbiter, NaiveCell};
pub use payload::{ConCell, ConVec};
pub use priority::{PriorityArray, PriorityCell};
pub use round::{Round, RoundCounter, RoundOverflow};
pub use stats::{CountingArbiter, CwStats, CwStatsSnapshot, ExecStats, ExecWorkerSnapshot};
pub use telemetry::{
    CwCounters, CwTelemetry, ExecCounters, RoundReport, RoundSnapshot, ShardGuard, TelemetryShard,
};
pub use traits::{try_claim_all, Arbiter, SliceArbiter};
