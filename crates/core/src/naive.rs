//! The "naive" non-method: let every write happen.
//!
//! Rodinia's OpenMP BFS performs its concurrent writes by simply issuing
//! them from every competing thread and relying on the cache-coherence
//! protocol to serialize the stores. The paper (§4–§5) analyzes when this is
//! tolerable:
//!
//! * **Common writes of one machine word** — every competitor writes the
//!   same value, so it does not matter who wins or whether winners
//!   interleave. Correct, though the redundant stores cause cache-line
//!   invalidation traffic and queueing (§6: the writes serialize, costing
//!   `T(N) = P_PRAM(N)` in the worst case).
//! * **Arbitrary writes, or any multi-word write** — different competitors
//!   write different values (or one logical value spread over several
//!   words), and interleaving can commit a *mixture* that no thread wrote.
//!   The paper's CC kernel is the canonical example: hooking updates two
//!   arrays, so it has no naive variant at all.
//!
//! In Rust there is an additional wrinkle: a racy plain store is Undefined
//! Behaviour regardless of the C-level argument above. The kernels in this
//! workspace therefore model "naive" with **`Relaxed` atomic stores**, which
//! compile to exactly the same x86 `mov` instructions as the C code's plain
//! stores (no `lock` prefix, no fence) while staying defined. The measured
//! cost is the same; the torn-mixture hazard for multi-word writes remains
//! and is demonstrated by `tests/torn_writes.rs` in the workspace root.
//!
//! [`NaiveArbiter`] makes the non-method pluggable: `try_claim` always
//! returns `true`, so a kernel written against [`SliceArbiter`] degenerates
//! to every-thread-writes.

use std::ops::Range;

use crate::round::Round;
use crate::traits::{Arbiter, SliceArbiter};

/// Arbitration that never arbitrates: every claimant "wins".
///
/// Plugging this into a kernel reproduces the naive method. It is sound
/// only when the kernel's writes are single-word and common (same value);
/// see the module docs for the full argument.
///
/// ```
/// use pram_core::{NaiveArbiter, SliceArbiter, Round};
///
/// let naive = NaiveArbiter::new(4);
/// assert!(naive.try_claim(2, Round::FIRST));
/// assert!(naive.try_claim(2, Round::FIRST)); // everyone wins
/// ```
#[derive(Debug, Clone)]
pub struct NaiveArbiter {
    len: usize,
}

impl NaiveArbiter {
    /// A no-op arbiter spanning `len` targets.
    ///
    /// No memory is allocated — the naive method's auxiliary space cost is
    /// zero, which is its one genuine advantage.
    #[inline]
    pub const fn new(len: usize) -> NaiveArbiter {
        NaiveArbiter { len }
    }
}

impl SliceArbiter for NaiveArbiter {
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn try_claim(&self, index: usize, _round: Round) -> bool {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        crate::telemetry::record_win();
        true
    }
    fn reset_all(&self) {}
    fn reset_range(&self, _range: Range<usize>) {}
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// Single-cell flavour of the non-method.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCell;

impl Arbiter for NaiveCell {
    #[inline]
    fn try_claim(&self, _round: Round) -> bool {
        crate::telemetry::record_win();
        true
    }
    fn reset(&mut self) {}
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_wins() {
        let n = NaiveArbiter::new(3);
        for _ in 0..5 {
            assert!(n.try_claim(0, Round::FIRST));
        }
        assert_eq!(SliceArbiter::len(&n), 3);
        assert!(n.rearms_on_new_round());
        n.reset_all(); // no-op, must not panic
        n.reset_range(0..3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_are_still_checked() {
        let n = NaiveArbiter::new(3);
        n.try_claim(3, Round::FIRST);
    }

    #[test]
    fn naive_cell_always_claims() {
        let mut c = NaiveCell;
        assert!(Arbiter::try_claim(&c, Round::FIRST));
        assert!(Arbiter::try_claim(&c, Round::FIRST));
        c.reset();
        assert!(Arbiter::try_claim(&c, Round::FIRST));
    }
}
