//! Bitmap gatekeeper — a memory-compact prior-practice variant for the
//! ablation study.
//!
//! The gatekeeper method spends one 32-bit counter per target even though
//! it only ever distinguishes zero from nonzero. Packing targets into a
//! bitmap (one bit each, claimed via `fetch_or`) cuts the auxiliary memory
//! 32× and makes the reset pass proportionally cheaper — but now **64
//! unrelated targets share one atomic word**, so claims to *different*
//! targets contend on the same cache line and the same RMW destination.
//! The `ablate_bitmap` bench quantifies the trade; the paper's CAS-LT
//! sidesteps it entirely (per-target words, atomics skipped after the
//! winner).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::round::Round;
use crate::traits::SliceArbiter;

/// One-bit-per-target gatekeeper over packed `AtomicU64` words.
///
/// Round-free like [`crate::GatekeeperArray`]: requires a reset pass
/// before every concurrent-write round.
#[derive(Debug)]
pub struct BitGatekeeperArray {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl BitGatekeeperArray {
    /// `len` armed (clear) targets.
    pub fn new(len: usize) -> BitGatekeeperArray {
        let n_words = len.div_ceil(64);
        let mut v = Vec::with_capacity(n_words);
        v.resize_with(n_words, || AtomicU64::new(0));
        BitGatekeeperArray {
            words: v.into_boxed_slice(),
            len,
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if there are no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Claim target `index`: set its bit; win iff it was clear.
    #[inline]
    pub fn try_claim_once(&self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of bounds ({})", self.len);
        let bit = 1u64 << (index % 64);
        let prev = self.words[index / 64].fetch_or(bit, Ordering::AcqRel);
        prev & bit == 0
    }

    /// Auxiliary memory in bytes (for the ablation's space accounting).
    pub fn aux_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl SliceArbiter for BitGatekeeperArray {
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn try_claim(&self, index: usize, _round: Round) -> bool {
        self.try_claim_once(index)
    }
    fn reset_all(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }
    fn reset_range(&self, range: Range<usize>) {
        // Word-granular: a range reset may only be used when the range is
        // word-aligned or the adjacent targets are quiescent — the kernels
        // here always reset between rounds, where everything is quiescent,
        // so clearing whole covering words (and re-claiming nothing) is
        // exact as long as concurrent ranges touch disjoint words. To stay
        // safe for *any* disjoint index ranges, clear bits individually.
        for i in range {
            let bit = 1u64 << (i % 64);
            self.words[i / 64].fetch_and(!bit, Ordering::Relaxed);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn first_claim_wins_rest_lose() {
        let b = BitGatekeeperArray::new(100);
        assert!(b.try_claim_once(63));
        assert!(!b.try_claim_once(63));
        assert!(b.try_claim_once(64)); // next word, independent
        assert!(b.try_claim_once(0));
        assert_eq!(b.len(), 100);
        assert_eq!(b.aux_bytes(), 16);
    }

    #[test]
    fn reset_all_and_ranges() {
        let b = BitGatekeeperArray::new(130);
        for i in 0..130 {
            assert!(b.try_claim_once(i));
        }
        b.reset_range(60..70); // straddles a word boundary
        for i in 0..130 {
            assert_eq!(b.try_claim_once(i), (60..70).contains(&i), "bit {i}");
        }
        b.reset_all();
        for i in 0..130 {
            assert!(b.try_claim_once(i));
        }
    }

    #[test]
    fn concurrent_range_resets_on_disjoint_ranges_are_exact() {
        let b = BitGatekeeperArray::new(128);
        for i in 0..128 {
            b.try_claim_once(i);
        }
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || b.reset_range(0..64));
            s.spawn(move || b.reset_range(64..128));
        });
        for i in 0..128 {
            assert!(b.try_claim_once(i), "bit {i} not re-armed");
        }
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let b = BitGatekeeperArray::new(64);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..64 {
                        if b.try_claim_once(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn slice_arbiter_round_is_ignored() {
        let b = BitGatekeeperArray::new(1);
        assert!(SliceArbiter::try_claim(&b, 0, Round::FIRST));
        assert!(!SliceArbiter::try_claim(
            &b,
            0,
            Round::from_iteration(5)
        ));
        assert!(!b.rearms_on_new_round());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let b = BitGatekeeperArray::new(10);
        b.try_claim_once(10);
    }

    #[test]
    fn empty_bitmap() {
        let b = BitGatekeeperArray::new(0);
        assert!(b.is_empty());
        assert_eq!(b.aux_bytes(), 0);
        b.reset_all();
    }
}
