//! Packed atomic bitmaps: a reusable dense set ([`AtomicBitmap`]) and the
//! memory-compact bitmap gatekeeper built on it ([`BitGatekeeperArray`]).
//!
//! The gatekeeper method spends one 32-bit counter per target even though
//! it only ever distinguishes zero from nonzero. Packing targets into a
//! bitmap (one bit each, claimed via `fetch_or`) cuts the auxiliary memory
//! 32× and makes the reset pass proportionally cheaper — but now **64
//! unrelated targets share one atomic word**, so claims to *different*
//! targets contend on the same cache line and the same RMW destination.
//! The `ablate_bitmap` bench quantifies the trade; the paper's CAS-LT
//! sidesteps it entirely (per-target words, atomics skipped after the
//! winner).
//!
//! The same packed representation is what a direction-optimizing BFS wants
//! for its *dense frontier* (one membership bit per vertex, test-and-set
//! insertion, per-word iteration during the bottom-up pull), so the word
//! machinery lives in [`AtomicBitmap`] and the gatekeeper is a thin
//! arbitration wrapper over it.

use crate::sync::{AtomicU64, Ordering};
use std::ops::Range;

use crate::round::Round;
use crate::traits::SliceArbiter;

/// A fixed-size set of `usize` indices packed one bit per element into
/// `AtomicU64` words.
///
/// All operations are `&self` and thread-safe. Mutating operations use
/// `Relaxed` ordering except [`AtomicBitmap::insert`] (an `AcqRel`
/// test-and-set, so it can arbitrate); callers that read the set after a
/// parallel build phase must separate the phases with a synchronization
/// point (a barrier), exactly like every other concurrent-write target in
/// this workspace.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitmap {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> AtomicBitmap {
        let n_words = len.div_ceil(64);
        let mut v = Vec::with_capacity(n_words);
        v.resize_with(n_words, || AtomicU64::new(0));
        AtomicBitmap {
            words: v.into_boxed_slice(),
            len,
        }
    }

    /// Universe size (maximum element + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing 64-bit words (for word-parallel loops).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Test-and-set `index`: returns `true` iff this call inserted it
    /// (the bit was previously clear).
    #[inline]
    pub fn insert(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let bit = 1u64 << (index % 64);
        let prev = self.words[index / 64].fetch_or(bit, Ordering::AcqRel);
        prev & bit == 0
    }

    /// Clear `index`.
    #[inline]
    pub fn remove(&self, index: usize) {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let bit = 1u64 << (index % 64);
        self.words[index / 64].fetch_and(!bit, Ordering::Relaxed);
    }

    /// Membership test (`Relaxed`; authoritative only across a
    /// synchronization point from the inserts).
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let bit = 1u64 << (index % 64);
        self.words[index / 64].load(Ordering::Relaxed) & bit != 0
    }

    /// The raw bits of word `w` (elements `64 * w ..`).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Relaxed)
    }

    /// Clear word `w` (elements `64 * w .. 64 * (w + 1)`), for
    /// word-parallel clears.
    #[inline]
    pub fn clear_word(&self, w: usize) {
        self.words[w].store(0, Ordering::Relaxed);
    }

    /// Clear the whole set (single-threaded; for the parallel variant,
    /// partition `0..num_words()` and call [`AtomicBitmap::clear_word`]).
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Call `f` for every set index in word `w`, ascending — the
    /// word-granular iteration a parallel sweep partitions over.
    #[inline]
    pub fn for_each_set_in_word(&self, w: usize, mut f: impl FnMut(usize)) {
        let mut bits = self.words[w].load(Ordering::Relaxed);
        let base = w * 64;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            f(base + b);
            bits &= bits - 1;
        }
    }

    /// Call `f` for every set index, ascending (serial full scan).
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for w in 0..self.words.len() {
            self.for_each_set_in_word(w, &mut f);
        }
    }
}

/// One-bit-per-target gatekeeper over a packed [`AtomicBitmap`].
///
/// Round-free like [`crate::GatekeeperArray`]: requires a reset pass
/// before every concurrent-write round.
#[derive(Debug)]
pub struct BitGatekeeperArray {
    bits: AtomicBitmap,
}

impl BitGatekeeperArray {
    /// `len` armed (clear) targets.
    pub fn new(len: usize) -> BitGatekeeperArray {
        BitGatekeeperArray {
            bits: AtomicBitmap::new(len),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if there are no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Claim target `index`: set its bit; win iff it was clear.
    #[inline]
    pub fn try_claim_once(&self, index: usize) -> bool {
        self.bits.insert(index)
    }

    /// Auxiliary memory in bytes (for the ablation's space accounting).
    pub fn aux_bytes(&self) -> usize {
        self.bits.num_words() * 8
    }
}

impl SliceArbiter for BitGatekeeperArray {
    fn len(&self) -> usize {
        self.bits.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, _round: Round) -> bool {
        self.try_claim_once(index)
    }
    fn reset_all(&self) {
        self.bits.clear();
    }
    fn reset_range(&self, range: Range<usize>) {
        // Bit-granular (not word-granular) so concurrent resets of *any*
        // disjoint index ranges are exact even when they share a word.
        for i in range {
            self.bits.remove(i);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn first_claim_wins_rest_lose() {
        let b = BitGatekeeperArray::new(100);
        assert!(b.try_claim_once(63));
        assert!(!b.try_claim_once(63));
        assert!(b.try_claim_once(64)); // next word, independent
        assert!(b.try_claim_once(0));
        assert_eq!(b.len(), 100);
        assert_eq!(b.aux_bytes(), 16);
    }

    #[test]
    fn reset_all_and_ranges() {
        let b = BitGatekeeperArray::new(130);
        for i in 0..130 {
            assert!(b.try_claim_once(i));
        }
        b.reset_range(60..70); // straddles a word boundary
        for i in 0..130 {
            assert_eq!(b.try_claim_once(i), (60..70).contains(&i), "bit {i}");
        }
        b.reset_all();
        for i in 0..130 {
            assert!(b.try_claim_once(i));
        }
    }

    #[test]
    fn concurrent_range_resets_on_disjoint_ranges_are_exact() {
        let b = BitGatekeeperArray::new(128);
        for i in 0..128 {
            b.try_claim_once(i);
        }
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || b.reset_range(0..64));
            s.spawn(move || b.reset_range(64..128));
        });
        for i in 0..128 {
            assert!(b.try_claim_once(i), "bit {i} not re-armed");
        }
    }

    #[test]
    fn exactly_one_winner_under_contention() {
        let b = BitGatekeeperArray::new(64);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..64 {
                        if b.try_claim_once(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn slice_arbiter_round_is_ignored() {
        let b = BitGatekeeperArray::new(1);
        assert!(SliceArbiter::try_claim(&b, 0, Round::FIRST));
        assert!(!SliceArbiter::try_claim(&b, 0, Round::from_iteration(5)));
        assert!(!b.rearms_on_new_round());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let b = BitGatekeeperArray::new(10);
        b.try_claim_once(10);
    }

    #[test]
    fn empty_bitmap() {
        let b = BitGatekeeperArray::new(0);
        assert!(b.is_empty());
        assert_eq!(b.aux_bytes(), 0);
        b.reset_all();
    }

    #[test]
    fn atomic_bitmap_insert_contains_remove() {
        let s = AtomicBitmap::new(130);
        assert!(!s.contains(65));
        assert!(s.insert(65));
        assert!(!s.insert(65)); // already present
        assert!(s.contains(65));
        assert_eq!(s.count_ones(), 1);
        s.remove(65);
        assert!(!s.contains(65));
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.num_words(), 3);
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn atomic_bitmap_word_iteration_is_ascending_and_complete() {
        let s = AtomicBitmap::new(200);
        let members = [0usize, 1, 63, 64, 100, 127, 128, 199];
        for &i in &members {
            s.insert(i);
        }
        let mut seen = Vec::new();
        s.for_each_set(|i| seen.push(i));
        assert_eq!(seen, members);

        let mut word2 = Vec::new();
        s.for_each_set_in_word(2, |i| word2.push(i));
        assert_eq!(word2, vec![128]); // word 2 spans bits 128..192
        let mut word3 = Vec::new();
        s.for_each_set_in_word(3, |i| word3.push(i));
        assert_eq!(word3, vec![199]);
    }

    #[test]
    fn atomic_bitmap_clear_variants() {
        let s = AtomicBitmap::new(128);
        for i in 0..128 {
            s.insert(i);
        }
        s.clear_word(0);
        assert_eq!(s.count_ones(), 64);
        s.clear();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn atomic_bitmap_insert_arbitrates_under_contention() {
        let s = AtomicBitmap::new(64);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|h| {
            for _ in 0..8 {
                h.spawn(|| {
                    for i in 0..64 {
                        if s.insert(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 64);
        assert_eq!(s.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn atomic_bitmap_bounds_checked() {
        let s = AtomicBitmap::new(10);
        s.insert(10);
    }
}
