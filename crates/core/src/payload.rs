//! Multi-word concurrent-write targets: claim-then-publish cells.
//!
//! The paper's stated goal includes supporting "concurrent write for modern
//! language data structures such as structure and class copies" — logical
//! writes spanning several machine words. Arbitration makes such writes safe
//! by construction: the unique winner of a round performs the whole
//! multi-word store while every loser skips it, so no mixture of two
//! competitors' payloads can ever be committed (the hazard that rules out
//! the naive method for arbitrary CW; `tests/torn_writes.rs` in the
//! workspace root demonstrates the mixture with naive writes and its absence
//! here).
//!
//! [`ConCell`] couples one [`CasLtCell`] with an [`UnsafeCell`]-wrapped
//! payload; [`ConVec`] is the per-element array form the kernels use.
//!
//! # Safety model
//!
//! The write and read methods are `unsafe`: their soundness rests on the
//! **round discipline**, which the types cannot verify —
//!
//! 1. A happens-before edge (barrier) separates any two rounds in which the
//!    same cell is claimed. This is the paper's required "synchronization
//!    point" between a concurrent write and dependent operations; it also
//!    prevents the winners of *different* rounds from holding `&mut` to the
//!    same payload simultaneously.
//! 2. Reads of the payload happen either before a round's claims begin or
//!    after the barrier that closes the round — never concurrently with the
//!    winner's store.
//!
//! Programs built on `pram_exec`'s lock-step driver satisfy both rules
//! automatically (every round is barrier-bounded); the safe wrappers in
//! `pram_algos` encapsulate the argument so downstream users never touch
//! `unsafe`.

use std::cell::UnsafeCell;

use crate::caslt::{CasLtArray, CasLtCell};
use crate::round::Round;

/// A multi-word concurrent-write target: CAS-LT claim word + payload.
///
/// ```
/// use pram_core::{ConCell, Round};
///
/// #[derive(Clone, Copy, PartialEq, Debug)]
/// struct Edge { src: u32, dst: u32 }
///
/// let cell = ConCell::new(Edge { src: 0, dst: 0 });
/// let round = Round::FIRST;
/// // SAFETY: single-threaded here, so the round discipline trivially holds.
/// let won = unsafe { cell.write_with(round, |e| *e = Edge { src: 3, dst: 7 }) };
/// assert!(won);
/// let lost = unsafe { cell.write_with(round, |e| *e = Edge { src: 9, dst: 9 }) };
/// assert!(!lost);
/// assert_eq!(unsafe { *cell.read() }, Edge { src: 3, dst: 7 });
/// ```
#[derive(Debug)]
pub struct ConCell<T> {
    claim: CasLtCell,
    value: UnsafeCell<T>,
}

// SAFETY: concurrent mutable access is mediated by the claim word under the
// round discipline documented at module level; the payload itself crosses
// threads, hence `T: Send`. `T: Sync` is additionally required because
// `read` hands out `&T` observable from multiple threads.
unsafe impl<T: Send + Sync> Sync for ConCell<T> {}

impl<T> ConCell<T> {
    /// A never-claimed cell holding `value`.
    pub fn new(value: T) -> ConCell<T> {
        ConCell {
            claim: CasLtCell::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Claim the cell for `round` and, on success, run `f` with exclusive
    /// access to the payload. Returns whether the caller won.
    ///
    /// # Safety
    /// The caller must uphold the module-level round discipline: a
    /// happens-before edge between rounds claiming this cell, and no
    /// concurrent [`ConCell::read`] while a round is open.
    #[inline]
    pub unsafe fn write_with(&self, round: Round, f: impl FnOnce(&mut T)) -> bool {
        if self.claim.try_claim(round) {
            // Under the checker, mark the payload as a write region so
            // overlapping winners (a broken arbiter) surface as a
            // torn-write violation instead of silent UB.
            #[cfg(pram_check)]
            let _region = crate::sync::RegionGuard::enter(self.value.get() as usize, true);
            // SAFETY: we are the unique winner for this round, and the
            // caller guarantees no other round's winner or reader overlaps.
            f(unsafe { &mut *self.value.get() });
            true
        } else {
            false
        }
    }

    /// Read the payload.
    ///
    /// # Safety
    /// No concurrent-write round may be open for this cell (reads must be
    /// separated from claims by the round-closing barrier).
    #[inline]
    pub unsafe fn read(&self) -> &T {
        #[cfg(pram_check)]
        let _region = crate::sync::RegionGuard::enter(self.value.get() as usize, false);
        // SAFETY: caller guarantees no winner currently holds `&mut`.
        unsafe { &*self.value.get() }
    }

    /// Exclusive access to the payload — safe, for inspection between
    /// parallel phases.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// The last round this cell was claimed in.
    #[inline]
    pub fn last_claimed(&self) -> Option<Round> {
        self.claim.last_claimed()
    }

    /// Re-arm the claim word (epoch reset); the payload is untouched.
    pub fn reset_claim(&mut self) {
        self.claim.reset();
    }

    /// Consume the cell, yielding the payload.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// An array of multi-word concurrent-write targets.
///
/// Storage is split — one packed [`CasLtArray`] of claim words plus one
/// payload slice — so the claim fast path scans a dense `u32` array (the
/// layout the paper's kernels use) instead of striding over interleaved
/// payloads.
#[derive(Debug)]
pub struct ConVec<T> {
    claims: CasLtArray,
    values: Box<[UnsafeCell<T>]>,
}

// SAFETY: as for `ConCell` — access mediated by per-index claim words under
// the round discipline.
unsafe impl<T: Send + Sync> Sync for ConVec<T> {}

impl<T> ConVec<T> {
    /// `len` never-claimed cells, payloads built by `init(index)`.
    pub fn new(len: usize, mut init: impl FnMut(usize) -> T) -> ConVec<T> {
        let values: Vec<UnsafeCell<T>> = (0..len).map(|i| UnsafeCell::new(init(i))).collect();
        ConVec {
            claims: CasLtArray::new(len),
            values: values.into_boxed_slice(),
        }
    }

    /// Wrap an existing vector of payloads.
    pub fn from_vec(v: Vec<T>) -> ConVec<T> {
        let claims = CasLtArray::new(v.len());
        let values: Vec<UnsafeCell<T>> = v.into_iter().map(UnsafeCell::new).collect();
        ConVec {
            claims,
            values: values.into_boxed_slice(),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Claim target `index` for `round`; on success run `f` with exclusive
    /// access to its payload.
    ///
    /// # Safety
    /// Module-level round discipline, per index.
    #[inline]
    pub unsafe fn write_with(&self, index: usize, round: Round, f: impl FnOnce(&mut T)) -> bool {
        if self.claims.try_claim(index, round) {
            #[cfg(pram_check)]
            let _region = crate::sync::RegionGuard::enter(self.values[index].get() as usize, true);
            // SAFETY: unique winner for (index, round); discipline upheld
            // by caller.
            f(unsafe { &mut *self.values[index].get() });
            true
        } else {
            false
        }
    }

    /// Read target `index`'s payload.
    ///
    /// # Safety
    /// No open concurrent-write round for this index.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> &T {
        #[cfg(pram_check)]
        let _region = crate::sync::RegionGuard::enter(self.values[index].get() as usize, false);
        // SAFETY: caller guarantees no winner holds `&mut` for this index.
        unsafe { &*self.values[index].get() }
    }

    /// The last round target `index` was claimed in.
    #[inline]
    pub fn last_claimed(&self, index: usize) -> Option<Round> {
        self.claims.last_claimed(index)
    }

    /// Exclusive access to payload `index` — safe, between phases.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> &mut T {
        self.values[index].get_mut()
    }

    /// Exclusive snapshot of all payloads — safe, between phases.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees no concurrent access of any kind;
        // `UnsafeCell<T>` is layout-compatible with `T`.
        unsafe { &mut *(std::ptr::from_mut(&mut *self.values) as *mut [T]) }
    }

    /// Consume, yielding the payloads.
    pub fn into_vec(self) -> Vec<T> {
        let values: Box<[UnsafeCell<T>]> = self.values;
        // SAFETY: sole owner; UnsafeCell<T> is repr(transparent) over T.
        let raw = Box::into_raw(values) as *mut [T];
        unsafe { Box::from_raw(raw) }.into_vec()
    }

    /// Re-arm every claim word (epoch reset); payloads untouched.
    pub fn reset_claims(&mut self) {
        self.claims.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn r(i: u32) -> Round {
        Round::from_iteration(i)
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Wide {
        a: u64,
        b: u64,
        c: u64,
        tag: u64,
    }

    impl Wide {
        fn coherent(tag: u64) -> Wide {
            Wide {
                a: tag,
                b: tag.wrapping_mul(3),
                c: tag.wrapping_mul(7),
                tag,
            }
        }
        fn is_coherent(&self) -> bool {
            self.a == self.tag
                && self.b == self.tag.wrapping_mul(3)
                && self.c == self.tag.wrapping_mul(7)
        }
    }

    #[test]
    fn single_winner_gets_exclusive_payload_access() {
        let cell = ConCell::new(0u64);
        assert!(unsafe { cell.write_with(r(0), |v| *v = 42) });
        assert!(!unsafe { cell.write_with(r(0), |v| *v = 99) });
        assert_eq!(unsafe { *cell.read() }, 42);
        assert_eq!(cell.last_claimed(), Some(r(0)));
    }

    #[test]
    fn multi_word_payload_is_never_torn() {
        // Many threads race to write distinct coherent structs in each
        // round; barriers between rounds uphold the discipline. The
        // committed struct must always be exactly one thread's payload.
        let threads = if cfg!(miri) { 4 } else { 8 };
        let rounds = if cfg!(miri) { 4u32 } else { 100u32 };
        let cell = ConCell::new(Wide::coherent(0));
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let cell = &cell;
                let barrier = &barrier;
                s.spawn(move || {
                    for i in 0..rounds {
                        barrier.wait(); // opens round i
                        let tag = u64::from(i) * 1000 + t;
                        // SAFETY: barriers separate rounds; no reads inside.
                        unsafe {
                            cell.write_with(r(i), |w| *w = Wide::coherent(tag));
                        }
                        barrier.wait(); // closes round i
                                        // Post-barrier read: must be coherent and current.
                                        // SAFETY: round closed by the barrier above.
                        let seen = unsafe { *cell.read() };
                        assert!(seen.is_coherent(), "torn write observed: {seen:?}");
                        assert_eq!(seen.tag / 1000, u64::from(i));
                    }
                });
            }
        });
    }

    #[test]
    fn convec_independent_indices() {
        let v = ConVec::new(4, |i| i as u64);
        assert!(unsafe { v.write_with(2, r(0), |x| *x = 100) });
        assert!(!unsafe { v.write_with(2, r(0), |x| *x = 200) });
        assert!(unsafe { v.write_with(3, r(0), |x| *x = 300) });
        assert_eq!(unsafe { *v.read(0) }, 0);
        assert_eq!(unsafe { *v.read(2) }, 100);
        assert_eq!(unsafe { *v.read(3) }, 300);
        assert_eq!(v.last_claimed(2), Some(r(0)));
        assert_eq!(v.last_claimed(0), None);
    }

    #[test]
    fn convec_round_rearm_and_reset() {
        let mut v = ConVec::from_vec(vec![0u32; 2]);
        assert!(unsafe { v.write_with(0, r(0), |x| *x = 1) });
        assert!(unsafe { v.write_with(0, r(1), |x| *x = 2) });
        assert_eq!(*v.get_mut(0), 2);
        v.reset_claims();
        assert!(unsafe { v.write_with(0, r(0), |x| *x = 3) });
        assert_eq!(v.as_mut_slice(), &[3, 0]);
    }

    #[test]
    fn convec_into_vec_roundtrip() {
        let v = ConVec::from_vec(vec![1u8, 2, 3]);
        assert!(unsafe { v.write_with(1, r(0), |x| *x = 9) });
        assert_eq!(v.into_vec(), vec![1, 9, 3]);
    }

    #[test]
    fn concell_into_inner_and_get_mut() {
        let mut c = ConCell::new(String::from("a"));
        c.get_mut().push('b');
        c.reset_claim();
        assert_eq!(c.into_inner(), "ab");
    }

    #[test]
    fn convec_empty() {
        let v: ConVec<u32> = ConVec::new(0, |_| 0);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
