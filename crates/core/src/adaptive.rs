//! Contention-adaptive arbitration: a [`SliceArbiter`] that delegates to
//! naive / CAS-LT / gatekeeper per *epoch*, choosing the delegate online
//! from the telemetry deltas of previous rounds.
//!
//! The paper's own figures show no single concurrent-write method
//! dominates: naive stores win for single-word *common* writes at low
//! contention (no atomic at all), CAS-LT wins under contention and for
//! multi-word/arbitrary writes (the read-only fast path absorbs repeat
//! claims), and the gatekeeper pays one RMW per claim *plus* an O(n)
//! re-zero pass per round regardless of how little hooking happened.
//! [`crate::telemetry`] measures exactly those mechanisms per round; this
//! module closes the loop by feeding the measured deltas back into the
//! method choice.
//!
//! Three pieces:
//!
//! * [`AdaptivePolicy`] — a **pure, deterministic** decision procedure
//!   over [`CwCounters`] deltas with hysteresis (a challenger must win
//!   [`HYSTERESIS_EPOCHS`] consecutive epochs, and a fresh switch is
//!   followed by [`COOLDOWN_EPOCHS`] of no reconsideration), so the
//!   delegate never flip-flops. Being plain values in / plain values out,
//!   the policy is property-testable without threads.
//! * [`WriteProfile`] — the static hint path: a kernel whose guarded
//!   write is a single word on which all concurrent writers agree
//!   (logical-or flags, level-only BFS) can pin the naive delegate, which
//!   the policy will never override. The default [`WriteProfile::Auto`]
//!   assumes arbitrary multi-word writes and only ever chooses between
//!   the single-winner delegates.
//! * [`AdaptiveArbiter`] — the runtime object: one claim-cell family per
//!   delegate plus an *active delegate* word. Claims route through one
//!   extra `Acquire` load; switches happen **only** at epoch boundaries
//!   ([`AdaptiveArbiter::epoch_boundary`]), called by a single thread
//!   while the whole team is quiescent at a barrier — in this workspace,
//!   the elected member of `pram_exec::WorkerCtx::tune`'s rendezvous.
//!
//! Every shared word (the active-delegate selector, the policy mutex) is
//! routed through [`crate::sync`], so `--cfg pram_check` schedule
//! exploration models the switcher exactly like the delegates it wraps
//! (`tests/check_adaptive.rs` proves an epoch-boundary switch loses no
//! rounds and never double-awards a `(cell, round)`).
//!
//! ## Why switches are safe at epoch boundaries only
//!
//! Within a round, exactly one delegate answers every claim, so the
//! single-winner contract is the delegate's own. Across a switch the
//! argument needs two invariants, both maintained here:
//!
//! 1. **Gatekeeper cells are zero whenever the gatekeeper is not
//!    active.** They start zero, kernels re-zero them after every round
//!    in which the gatekeeper was active (its `rearms_on_new_round()` is
//!    `false`), and switching *to* the gatekeeper re-zeroes defensively —
//!    so the incoming delegate is always fully armed and no round is
//!    lost.
//! 2. **Rounds strictly increase across a switch.** CAS-LT cells keep
//!    whatever round they last recorded; because a returning round id is
//!    always larger, stale cells are claimable, never falsely claimed.
//!    (This is the same round discipline CAS-LT itself requires.)

use std::fmt;

use crate::gatekeeper::GatekeeperArray;
use crate::naive::NaiveArbiter;
use crate::round::Round;
use crate::sync::{AtomicU32, Mutex, Ordering};
use crate::telemetry::CwCounters;
use crate::traits::SliceArbiter;
use crate::CasLtArray;

/// Epochs in a row a challenger must be preferred before a switch commits.
pub const HYSTERESIS_EPOCHS: u32 = 2;
/// Epochs after a switch during which no new challenge is considered.
pub const COOLDOWN_EPOCHS: u32 = 2;
/// Minimum claim resolutions per epoch for the delta to count as signal;
/// quieter epochs reset the challenger streak instead of feeding it.
pub const MIN_SIGNAL_RESOLUTIONS: u64 = 64;
/// CAS failure fraction above which CAS-LT is considered contended.
pub const CAS_RETRY_HI: f64 = 0.5;
/// Fast-path hit fraction below which CAS-LT's load filter is considered
/// ineffective (the contention is not being absorbed read-only).
pub const FAST_PATH_LO: f64 = 0.25;
/// Resolutions-per-cell density below which the gatekeeper's O(n) re-zero
/// pass dominates its useful work.
pub const DENSITY_LO: f64 = 2.0;

/// The methods [`AdaptiveArbiter`] can delegate to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Delegate {
    /// Unarbitrated stores: every claim "wins". Sound only for
    /// single-word common writes; reachable only via
    /// [`WriteProfile::CommonSingleWord`], never chosen online.
    Naive,
    /// CAS-if-less-than round claims (the paper's contribution). The
    /// starting delegate for every non-pinned profile.
    CasLt,
    /// Per-cell fetch-and-add gatekeeper (needs per-round re-zeroing).
    Gatekeeper,
}

impl Delegate {
    /// Stable short name (matches the kernel-facing method names).
    pub fn name(self) -> &'static str {
        match self {
            Delegate::Naive => "naive",
            Delegate::CasLt => "caslt",
            Delegate::Gatekeeper => "gatekeeper",
        }
    }

    fn as_u32(self) -> u32 {
        match self {
            Delegate::Naive => 0,
            Delegate::CasLt => 1,
            Delegate::Gatekeeper => 2,
        }
    }

    fn from_u32(v: u32) -> Delegate {
        match v {
            0 => Delegate::Naive,
            1 => Delegate::CasLt,
            2 => Delegate::Gatekeeper,
            _ => unreachable!("invalid delegate discriminant {v}"),
        }
    }
}

impl fmt::Display for Delegate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static knowledge about the guarded write, supplied by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteProfile {
    /// No static knowledge: assume arbitrary multi-word writes (the safe
    /// default) and adapt between the single-winner delegates.
    #[default]
    Auto,
    /// The guarded write is one word and all concurrent writers store the
    /// same value (logical-or flags, BFS levels without tree edges).
    /// **Pins the naive delegate** — provably safe for this write shape,
    /// and no online evidence can justify overriding a soundness fact.
    CommonSingleWord,
    /// The guarded write spans several words or writers disagree (BFS
    /// four-word commits, CC's two-array hooks). Behaves like
    /// [`WriteProfile::Auto`] but documents intent: naive is *unsound*
    /// here and is never considered.
    ArbitraryMultiWord,
}

impl WriteProfile {
    /// The delegate this profile pins, if any.
    pub fn pinned_delegate(self) -> Option<Delegate> {
        match self {
            WriteProfile::CommonSingleWord => Some(Delegate::Naive),
            WriteProfile::Auto | WriteProfile::ArbitraryMultiWord => None,
        }
    }
}

/// One committed delegate switch, for the decision trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchDecision {
    /// Policy epoch (1-based observation count) at which the switch
    /// committed.
    pub epoch: u32,
    /// Delegate being switched away from.
    pub from: Delegate,
    /// Delegate now active.
    pub to: Delegate,
    /// Which policy rule fired (stable short slug, e.g.
    /// `"cas-retry-surge"`).
    pub reason: &'static str,
}

impl fmt::Display for SwitchDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adaptive {}->{} ({}) @epoch {}",
            self.from, self.to, self.reason, self.epoch
        )
    }
}

/// The deterministic hysteresis policy: plain values in (one
/// [`CwCounters`] delta per epoch), plain values out (an optional
/// committed [`SwitchDecision`]).
///
/// Decision table (evaluated on each epoch's delta; `density` =
/// `resolutions / cells`):
///
/// | current | challenger | fires when | reason |
/// |---|---|---|---|
/// | any pinned | — | never | — |
/// | caslt | gatekeeper | `cas_retry_rate > `[`CAS_RETRY_HI`]` && fast_path_hit_rate < `[`FAST_PATH_LO`] | `cas-retry-surge` |
/// | gatekeeper | caslt | `density < `[`DENSITY_LO`] | `low-density` |
/// | gatekeeper | caslt | `rearm_resets > gatekeeper_rmws` | `rearm-dominated` |
///
/// A challenger must fire [`HYSTERESIS_EPOCHS`] epochs in a row to
/// commit; every committed switch is followed by [`COOLDOWN_EPOCHS`]
/// epochs in which challenges are ignored; epochs with fewer than
/// [`MIN_SIGNAL_RESOLUTIONS`] resolutions reset the streak. Consequently
/// two switches are always at least `HYSTERESIS_EPOCHS +
/// COOLDOWN_EPOCHS` epochs apart, and the switch count is bounded by
/// `(epochs + COOLDOWN_EPOCHS) / (HYSTERESIS_EPOCHS + COOLDOWN_EPOCHS)`
/// (`tests/prop_adaptive.rs` pins both properties for arbitrary
/// telemetry sequences).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptivePolicy {
    profile: WriteProfile,
    current: Delegate,
    /// Consecutive epochs the same challenger has fired.
    streak: u32,
    /// The challenger accumulating the streak (meaningful when
    /// `streak > 0`).
    challenger: Delegate,
    /// Epochs left before challenges are considered again.
    cooldown: u32,
    /// Observations made so far (1-based in emitted decisions).
    epochs: u32,
    /// Switches committed so far.
    switches: u32,
    /// Cumulative-counter baseline for [`AdaptivePolicy::observe_totals`].
    last_totals: CwCounters,
}

impl AdaptivePolicy {
    /// A fresh policy for `profile`; the starting delegate is the pinned
    /// one, or CAS-LT (the paper's overall winner) when unpinned.
    pub fn new(profile: WriteProfile) -> AdaptivePolicy {
        let current = profile.pinned_delegate().unwrap_or(Delegate::CasLt);
        AdaptivePolicy {
            profile,
            current,
            streak: 0,
            challenger: current,
            cooldown: 0,
            epochs: 0,
            switches: 0,
            last_totals: CwCounters::default(),
        }
    }

    /// The delegate the policy currently selects.
    pub fn current(&self) -> Delegate {
        self.current
    }

    /// The profile the policy was built with.
    pub fn profile(&self) -> WriteProfile {
        self.profile
    }

    /// Epochs observed so far.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Switches committed so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Observe one epoch given *cumulative* counter totals (the form the
    /// pool's telemetry exposes); the policy differences them internally.
    pub fn observe_totals(&mut self, totals: &CwCounters, cells: usize) -> Option<SwitchDecision> {
        let delta = totals.delta_since(&self.last_totals);
        self.last_totals = *totals;
        self.observe_delta(&delta, cells)
    }

    /// Observe one epoch's counter **delta** over `cells` claim targets;
    /// returns the switch iff one committed this epoch.
    pub fn observe_delta(&mut self, delta: &CwCounters, cells: usize) -> Option<SwitchDecision> {
        self.epochs = self.epochs.saturating_add(1);
        if self.profile.pinned_delegate().is_some() {
            return None;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.streak = 0;
            return None;
        }
        if delta.resolutions() < MIN_SIGNAL_RESOLUTIONS {
            self.streak = 0;
            return None;
        }
        let Some((challenger, reason)) = self.challenge(delta, cells) else {
            self.streak = 0;
            return None;
        };
        if self.streak > 0 && challenger != self.challenger {
            // A different challenger restarts the streak.
            self.streak = 0;
        }
        self.challenger = challenger;
        self.streak += 1;
        if self.streak < HYSTERESIS_EPOCHS {
            return None;
        }
        let decision = SwitchDecision {
            epoch: self.epochs,
            from: self.current,
            to: challenger,
            reason,
        };
        self.current = challenger;
        self.streak = 0;
        self.cooldown = COOLDOWN_EPOCHS;
        self.switches += 1;
        Some(decision)
    }

    /// The decision table: which delegate this epoch's evidence prefers
    /// over the current one, if any.
    fn challenge(&self, delta: &CwCounters, cells: usize) -> Option<(Delegate, &'static str)> {
        let density = delta.resolutions() as f64 / cells.max(1) as f64;
        match self.current {
            Delegate::CasLt => {
                if delta.cas_retry_rate() > CAS_RETRY_HI
                    && delta.fast_path_hit_rate() < FAST_PATH_LO
                {
                    return Some((Delegate::Gatekeeper, "cas-retry-surge"));
                }
                None
            }
            Delegate::Gatekeeper => {
                if density < DENSITY_LO {
                    return Some((Delegate::CasLt, "low-density"));
                }
                if delta.rearm_resets > delta.gatekeeper_rmws {
                    return Some((Delegate::CasLt, "rearm-dominated"));
                }
                None
            }
            // Naive is only reachable pinned, which never gets here.
            Delegate::Naive => None,
        }
    }
}

/// Interior state guarded by the arbiter's mutex: the policy plus the
/// decision trace.
#[derive(Debug)]
struct Tuner {
    policy: AdaptivePolicy,
    trace: Vec<SwitchDecision>,
}

/// A [`SliceArbiter`] that delegates each claim to the currently active
/// method and re-chooses the method at epoch boundaries from telemetry.
///
/// Construction allocates all delegate families up front (naive is
/// zero-cost; CAS-LT and gatekeeper are one `u32` word per cell each), so
/// switching never allocates. The claim path costs one `Acquire` load and
/// a jump over the chosen delegate's own path.
///
/// ```
/// use pram_core::{AdaptiveArbiter, Delegate, Round, SliceArbiter};
///
/// let arb = AdaptiveArbiter::new(4);
/// assert_eq!(arb.active_delegate(), Delegate::CasLt);
/// assert!(arb.try_claim(0, Round::FIRST));
/// assert!(!arb.try_claim(0, Round::FIRST)); // single winner
/// ```
pub struct AdaptiveArbiter {
    naive: NaiveArbiter,
    caslt: CasLtArray,
    gate: GatekeeperArray,
    /// Immutable after construction; read lock-free on the tune path.
    profile: WriteProfile,
    /// Discriminant of the active [`Delegate`]; written only at epoch
    /// boundaries (team quiescent), read `Acquire` on every claim.
    active: AtomicU32,
    tuner: Mutex<Tuner>,
}

impl AdaptiveArbiter {
    /// An adaptive family over `len` cells with the default
    /// ([`WriteProfile::Auto`]) profile.
    pub fn new(len: usize) -> AdaptiveArbiter {
        AdaptiveArbiter::with_profile(len, WriteProfile::Auto)
    }

    /// An adaptive family over `len` cells with an explicit profile.
    pub fn with_profile(len: usize, profile: WriteProfile) -> AdaptiveArbiter {
        let policy = AdaptivePolicy::new(profile);
        AdaptiveArbiter {
            naive: NaiveArbiter::new(len),
            caslt: CasLtArray::new(len),
            gate: GatekeeperArray::new(len),
            profile,
            active: AtomicU32::new(policy.current().as_u32()),
            tuner: Mutex::new(Tuner {
                policy,
                trace: Vec::new(),
            }),
        }
    }

    /// The delegate answering claims right now.
    pub fn active_delegate(&self) -> Delegate {
        Delegate::from_u32(self.active.load(Ordering::Acquire))
    }

    /// The profile this arbiter was built with.
    pub fn profile(&self) -> WriteProfile {
        self.profile
    }

    /// Every switch committed so far, in order.
    pub fn decision_trace(&self) -> Vec<SwitchDecision> {
        self.tuner.lock().trace.clone()
    }

    /// Number of switches committed so far.
    pub fn switches(&self) -> u32 {
        self.tuner.lock().policy.switches()
    }

    /// Epoch-boundary tuning step: feed the pool's **cumulative** claim
    /// counters to the policy and apply its decision, if any.
    ///
    /// # Contract
    /// Must be called by exactly one thread while every thread that may
    /// claim is quiescent (e.g. from the elected member's slot of a team
    /// barrier), and only between rounds — the next claimed round id must
    /// be strictly greater than every round claimed so far.
    pub fn epoch_boundary(&self, totals: &CwCounters) -> Option<SwitchDecision> {
        let mut tuner = self.tuner.lock();
        let decision = tuner.policy.observe_totals(totals, self.caslt.len())?;
        tuner.trace.push(decision);
        drop(tuner);
        self.apply(decision);
        Some(decision)
    }

    /// Force the active delegate to `to`, bypassing the policy's evidence
    /// rules (but **not** a pinned profile, which is never overridden).
    /// Same quiescence contract as [`AdaptiveArbiter::epoch_boundary`];
    /// meant for tests and schedule-exploration models that need a switch
    /// at a chosen boundary.
    pub fn force_switch(&self, to: Delegate) -> Option<SwitchDecision> {
        if self.profile.pinned_delegate().is_some() {
            return None;
        }
        let mut tuner = self.tuner.lock();
        let from = tuner.policy.current();
        if from == to {
            return None;
        }
        let decision = SwitchDecision {
            epoch: tuner.policy.epochs(),
            from,
            to,
            reason: "forced",
        };
        tuner.policy.current = to;
        tuner.policy.switches += 1;
        tuner.trace.push(decision);
        drop(tuner);
        self.apply(decision);
        Some(decision)
    }

    /// Publish a committed switch: arm the incoming delegate, then flip
    /// the selector.
    fn apply(&self, decision: SwitchDecision) {
        if decision.to == Delegate::Gatekeeper {
            // Defensive re-arm: gatekeeper cells are already zero per the
            // module invariant, but correctness of the next round must
            // not depend on every kernel's reset discipline.
            self.gate.reset_all();
        }
        self.active.store(decision.to.as_u32(), Ordering::Release);
    }
}

impl fmt::Debug for AdaptiveArbiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveArbiter")
            .field("len", &self.caslt.len())
            .field("active", &self.active_delegate())
            .finish_non_exhaustive()
    }
}

impl SliceArbiter for AdaptiveArbiter {
    fn len(&self) -> usize {
        self.caslt.len()
    }

    fn try_claim(&self, index: usize, round: Round) -> bool {
        match self.active_delegate() {
            Delegate::Naive => self.naive.try_claim(index, round),
            Delegate::CasLt => self.caslt.try_claim(index, round),
            Delegate::Gatekeeper => self.gate.try_claim(index, round),
        }
    }

    fn reset_all(&self) {
        // Full re-arm across delegates (between-kernels reset).
        self.caslt.reset_all();
        self.gate.reset_all();
    }

    fn reset_range(&self, range: std::ops::Range<usize>) {
        // The per-round re-zero pass targets the active delegate only.
        match self.active_delegate() {
            Delegate::Naive => self.naive.reset_range(range),
            Delegate::CasLt => self.caslt.reset_range(range),
            Delegate::Gatekeeper => self.gate.reset_range(range),
        }
    }

    fn rearms_on_new_round(&self) -> bool {
        // Answered per-round: only the gatekeeper needs the reset pass.
        self.active_delegate() != Delegate::Gatekeeper
    }

    fn adapts(&self) -> bool {
        self.profile.pinned_delegate().is_none()
    }

    fn epoch_boundary(&self, totals: &CwCounters) -> Option<SwitchDecision> {
        AdaptiveArbiter::epoch_boundary(self, totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A delta that fires the caslt → gatekeeper rule.
    fn contended_delta() -> CwCounters {
        CwCounters {
            cas_attempts: 1000,
            cas_failures: 900,
            fast_path_skips: 10,
            wins: 100,
            ..CwCounters::default()
        }
    }

    /// A delta that fires the gatekeeper → caslt low-density rule.
    fn sparse_delta() -> CwCounters {
        CwCounters {
            gatekeeper_rmws: 80,
            wins: 80,
            ..CwCounters::default()
        }
    }

    #[test]
    fn auto_starts_on_caslt_and_pin_starts_on_naive() {
        assert_eq!(AdaptiveArbiter::new(4).active_delegate(), Delegate::CasLt);
        let pinned = AdaptiveArbiter::with_profile(4, WriteProfile::CommonSingleWord);
        assert_eq!(pinned.active_delegate(), Delegate::Naive);
        assert!(!pinned.adapts());
        assert!(AdaptiveArbiter::new(4).adapts());
    }

    #[test]
    fn hysteresis_requires_consecutive_epochs() {
        let mut p = AdaptivePolicy::new(WriteProfile::Auto);
        assert_eq!(p.observe_delta(&contended_delta(), 64), None);
        // An interleaved quiet epoch resets the streak.
        assert_eq!(p.observe_delta(&CwCounters::default(), 64), None);
        assert_eq!(p.observe_delta(&contended_delta(), 64), None);
        let d = p
            .observe_delta(&contended_delta(), 64)
            .expect("second consecutive contended epoch commits");
        assert_eq!(d.from, Delegate::CasLt);
        assert_eq!(d.to, Delegate::Gatekeeper);
        assert_eq!(d.reason, "cas-retry-surge");
        assert_eq!(p.current(), Delegate::Gatekeeper);
    }

    #[test]
    fn cooldown_blocks_immediate_flip_flop() {
        let mut p = AdaptivePolicy::new(WriteProfile::Auto);
        p.observe_delta(&contended_delta(), 64);
        assert!(p.observe_delta(&contended_delta(), 64).is_some());
        // Now on gatekeeper; sparse evidence would prefer caslt, but the
        // cooldown swallows the first COOLDOWN_EPOCHS challenges.
        for _ in 0..COOLDOWN_EPOCHS {
            assert_eq!(p.observe_delta(&sparse_delta(), 64), None);
        }
        for _ in 0..HYSTERESIS_EPOCHS - 1 {
            assert_eq!(p.observe_delta(&sparse_delta(), 64), None);
        }
        let d = p.observe_delta(&sparse_delta(), 64).expect("switch back");
        assert_eq!(d.to, Delegate::CasLt);
        assert_eq!(d.reason, "low-density");
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn pinned_profile_never_switches() {
        let mut p = AdaptivePolicy::new(WriteProfile::CommonSingleWord);
        for _ in 0..32 {
            assert_eq!(p.observe_delta(&contended_delta(), 64), None);
            assert_eq!(p.current(), Delegate::Naive);
        }
        let arb = AdaptiveArbiter::with_profile(2, WriteProfile::CommonSingleWord);
        assert!(arb.force_switch(Delegate::CasLt).is_none());
        assert_eq!(arb.active_delegate(), Delegate::Naive);
    }

    #[test]
    fn low_signal_epochs_never_switch() {
        let mut p = AdaptivePolicy::new(WriteProfile::Auto);
        let tiny = CwCounters {
            cas_attempts: 8,
            cas_failures: 8,
            ..CwCounters::default()
        };
        for _ in 0..32 {
            assert_eq!(p.observe_delta(&tiny, 64), None);
        }
        assert_eq!(p.current(), Delegate::CasLt);
    }

    #[test]
    fn observe_totals_differences_cumulative_counters() {
        let mut by_delta = AdaptivePolicy::new(WriteProfile::Auto);
        let mut by_total = AdaptivePolicy::new(WriteProfile::Auto);
        let mut totals = CwCounters::default();
        for _ in 0..3 {
            let d1 = by_delta.observe_delta(&contended_delta(), 64);
            totals.add(&contended_delta());
            let d2 = by_total.observe_totals(&totals, 64);
            assert_eq!(d1, d2);
        }
        assert_eq!(by_delta.current(), by_total.current());
        assert_eq!(by_delta.switches(), by_total.switches());
        assert_eq!(by_delta.epochs(), by_total.epochs());
    }

    #[test]
    fn switch_loses_no_round_and_keeps_single_winner() {
        let arb = AdaptiveArbiter::new(3);
        let r1 = Round::FIRST;
        assert!(arb.try_claim(0, r1));
        assert!(!arb.try_claim(0, r1));
        let d = arb.force_switch(Delegate::Gatekeeper).expect("switch");
        assert_eq!(d.reason, "forced");
        assert!(!arb.rearms_on_new_round());
        let r2 = r1.next().unwrap();
        // The incoming gatekeeper is armed for every cell, including the
        // one claimed last round: no round is lost...
        assert!(arb.try_claim(0, r2));
        // ...and single-winner holds under the new delegate.
        assert!(!arb.try_claim(0, r2));
        // Per-round re-zero targets the gatekeeper now.
        arb.reset_range(0..3);
        let r3 = r2.next().unwrap();
        assert!(arb.try_claim(0, r3));
    }

    #[test]
    fn switch_back_to_caslt_respects_round_monotonicity() {
        let arb = AdaptiveArbiter::new(2);
        assert!(arb.try_claim(1, Round::FIRST)); // caslt cell 1 holds round 1
        arb.force_switch(Delegate::Gatekeeper).unwrap();
        arb.reset_range(0..2);
        arb.force_switch(Delegate::CasLt).unwrap();
        assert!(arb.rearms_on_new_round());
        // Stale caslt state is from an older round: still claimable once.
        let r2 = Round::from_iteration(1);
        assert!(arb.try_claim(1, r2));
        assert!(!arb.try_claim(1, r2));
    }

    #[test]
    fn epoch_boundary_drives_switch_and_trace() {
        let arb = AdaptiveArbiter::new(8);
        let mut totals = CwCounters::default();
        totals.add(&contended_delta());
        assert!(arb.epoch_boundary(&totals).is_none());
        totals.add(&contended_delta());
        let d = arb.epoch_boundary(&totals).expect("hysteresis satisfied");
        assert_eq!(arb.active_delegate(), Delegate::Gatekeeper);
        assert_eq!(arb.decision_trace(), vec![d]);
        assert_eq!(arb.switches(), 1);
        let shown = d.to_string();
        assert!(shown.contains("caslt->gatekeeper"), "{shown}");
        assert!(shown.contains("cas-retry-surge"), "{shown}");
    }

    #[test]
    fn reset_all_rearms_every_delegate() {
        let arb = AdaptiveArbiter::new(2);
        arb.force_switch(Delegate::Gatekeeper).unwrap();
        assert!(arb.try_claim(0, Round::FIRST));
        arb.reset_all();
        assert!(arb.try_claim(0, Round::FIRST));
    }

    #[test]
    fn names_and_debug() {
        assert_eq!(Delegate::CasLt.to_string(), "caslt");
        assert_eq!(Delegate::Naive.name(), "naive");
        assert_eq!(Delegate::Gatekeeper.to_string(), "gatekeeper");
        let dbg = format!("{:?}", AdaptiveArbiter::new(2));
        assert!(dbg.contains("AdaptiveArbiter"), "{dbg}");
        assert_eq!(
            WriteProfile::CommonSingleWord.pinned_delegate(),
            Some(Delegate::Naive)
        );
        assert_eq!(WriteProfile::ArbitraryMultiWord.pinned_delegate(), None);
    }
}
