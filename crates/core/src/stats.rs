//! Contention statistics for arbitration schemes.
//!
//! The paper's performance argument is mechanistic: CAS-LT wins because
//! late arrivals *skip the atomic entirely*, while the gatekeeper method
//! funnels every claim through an RMW. [`CwStats`] makes the mechanism
//! observable — kernels and benches can report how many claims took the
//! fast path, how many CASes were issued, and how often they failed —
//! turning the §6 asymptotic story into measured counts.
//!
//! Counters are `Relaxed` atomics shared by all threads; collection
//! perturbs the measured code (extra cache traffic on the counter lines),
//! so benchmarks gather stats in separate profiling runs, never inside
//! timed sections.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::caslt::CasLtCell;
use crate::round::Round;
use crate::traits::SliceArbiter;

/// Shared contention counters.
///
/// All increments are `Relaxed`: the counts are statistics, not
/// synchronization. Each counter sits on its own cache line to keep the
/// instrumentation from serializing the threads it observes.
#[derive(Debug, Default)]
pub struct CwStats {
    /// Total claim attempts.
    attempts: CachePadded<AtomicU64>,
    /// Claims that returned `true`.
    wins: CachePadded<AtomicU64>,
    /// CAS-LT only: claims resolved by the pre-CAS load ("already claimed,
    /// skip the atomic") — the fast path that is the paper's headline.
    fast_skips: CachePadded<AtomicU64>,
    /// Atomic RMW instructions actually issued.
    rmw_issued: CachePadded<AtomicU64>,
    /// RMWs that lost (CAS failed / fetch-add observed nonzero).
    rmw_lost: CachePadded<AtomicU64>,
}

impl CwStats {
    /// Fresh zeroed counters.
    pub fn new() -> CwStats {
        CwStats::default()
    }

    #[inline]
    pub(crate) fn record_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn record_win(&self) {
        self.wins.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn record_fast_skip(&self) {
        self.fast_skips.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn record_rmw(&self, lost: bool) {
        self.rmw_issued.fetch_add(1, Ordering::Relaxed);
        if lost {
            self.rmw_lost.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy of the counters (exact when quiescent).
    pub fn snapshot(&self) -> CwStatsSnapshot {
        CwStatsSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
            fast_skips: self.fast_skips.load(Ordering::Relaxed),
            rmw_issued: self.rmw_issued.load(Ordering::Relaxed),
            rmw_lost: self.rmw_lost.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (quiescent periods only).
    pub fn reset(&self) {
        self.attempts.store(0, Ordering::Relaxed);
        self.wins.store(0, Ordering::Relaxed);
        self.fast_skips.store(0, Ordering::Relaxed);
        self.rmw_issued.store(0, Ordering::Relaxed);
        self.rmw_lost.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time counter values; see [`CwStats::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CwStatsSnapshot {
    /// Total claim attempts.
    pub attempts: u64,
    /// Claims that won.
    pub wins: u64,
    /// Claims resolved by the CAS-LT fast path (atomic skipped).
    pub fast_skips: u64,
    /// Atomic RMWs issued.
    pub rmw_issued: u64,
    /// RMWs that lost.
    pub rmw_lost: u64,
}

impl CwStatsSnapshot {
    /// Fraction of attempts that skipped the atomic, in `[0, 1]`.
    pub fn fast_path_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.fast_skips as f64 / self.attempts as f64
        }
    }

    /// Atomic RMWs per claim attempt — 1.0 for the gatekeeper method by
    /// construction; well below 1.0 for CAS-LT under contention.
    pub fn rmw_per_attempt(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.rmw_issued as f64 / self.attempts as f64
        }
    }
}

impl fmt::Display for CwStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempts={} wins={} fast_skips={} rmw={} rmw_lost={} (fast-path {:.1}%, rmw/claim {:.3})",
            self.attempts,
            self.wins,
            self.fast_skips,
            self.rmw_issued,
            self.rmw_lost,
            self.fast_path_ratio() * 100.0,
            self.rmw_per_attempt()
        )
    }
}

impl CasLtCell {
    /// [`CasLtCell::try_claim`] with per-path accounting into `stats`.
    ///
    /// Functionally identical to the uninstrumented claim; used by
    /// profiling runs to measure the fast-path ratio.
    #[inline]
    pub fn try_claim_instrumented(&self, round: Round, stats: &CwStats) -> bool {
        stats.record_attempt();
        let current = self.load_raw();
        if current >= round.get() {
            stats.record_fast_skip();
            return false;
        }
        let won = self.cas_raw(current, round.get());
        stats.record_rmw(!won);
        if won {
            stats.record_win();
        }
        won
    }
}

/// Per-worker execution-substrate counters: barrier waits and
/// loop-scheduling grab/steal traffic.
///
/// Where [`CwStats`] attributes *arbitration* cost (fast path vs RMW),
/// `ExecStats` attributes *runtime* cost: how often each worker hit a
/// barrier, how long it waited there, and how its loop iterations were
/// acquired (owned grabs vs steals). The scaling benches use it to split
/// wall time into synchronization vs work — the difference between a
/// barrier-bound regime (high-diameter graphs: thousands of rounds, tiny
/// frontiers) and a work-bound one (skewed graphs: few rounds, heavy
/// frontiers).
///
/// Every counter is a `Relaxed` atomic on its own cache line, and each
/// worker only increments its own slot, so collection never serializes the
/// threads it observes. The substrate keeps recording behind an
/// `Option` — when stats are disabled, the hot paths pay one predictable
/// branch and no atomic traffic.
#[derive(Debug)]
pub struct ExecStats {
    workers: Box<[CachePadded<WorkerSlots>]>,
}

#[derive(Debug, Default)]
struct WorkerSlots {
    barrier_waits: AtomicU64,
    barrier_wait_ns: AtomicU64,
    grabs: AtomicU64,
    steal_attempts: AtomicU64,
    steals: AtomicU64,
}

impl ExecStats {
    /// Zeroed counters for a team of `threads` workers.
    pub fn new(threads: usize) -> ExecStats {
        let mut v = Vec::with_capacity(threads);
        v.resize_with(threads, || CachePadded::new(WorkerSlots::default()));
        ExecStats {
            workers: v.into_boxed_slice(),
        }
    }

    /// Team size the counters were built for.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Record one barrier rendezvous by worker `tid`, including the time
    /// it spent waiting (nanoseconds).
    #[inline]
    pub fn record_barrier_wait(&self, tid: usize, wait_ns: u64) {
        let w = &self.workers[tid];
        w.barrier_waits.fetch_add(1, Ordering::Relaxed);
        w.barrier_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Record one loop-chunk acquisition by worker `tid` from its own
    /// share (a shared-cursor grab or an owned-deque pop).
    #[inline]
    pub fn record_grab(&self, tid: usize) {
        self.workers[tid].grabs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one steal attempt by worker `tid` (its own share was empty);
    /// `hit` is whether a victim chunk was actually taken.
    #[inline]
    pub fn record_steal(&self, tid: usize, hit: bool) {
        let w = &self.workers[tid];
        w.steal_attempts.fetch_add(1, Ordering::Relaxed);
        if hit {
            w.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy of one worker's counters.
    pub fn worker_snapshot(&self, tid: usize) -> ExecWorkerSnapshot {
        let w = &self.workers[tid];
        ExecWorkerSnapshot {
            barrier_waits: w.barrier_waits.load(Ordering::Relaxed),
            barrier_wait_ns: w.barrier_wait_ns.load(Ordering::Relaxed),
            grabs: w.grabs.load(Ordering::Relaxed),
            steal_attempts: w.steal_attempts.load(Ordering::Relaxed),
            steals: w.steals.load(Ordering::Relaxed),
        }
    }

    /// Sum of all workers' counters.
    pub fn total_snapshot(&self) -> ExecWorkerSnapshot {
        let mut total = ExecWorkerSnapshot::default();
        for tid in 0..self.threads() {
            let s = self.worker_snapshot(tid);
            total.barrier_waits += s.barrier_waits;
            total.barrier_wait_ns += s.barrier_wait_ns;
            total.grabs += s.grabs;
            total.steal_attempts += s.steal_attempts;
            total.steals += s.steals;
        }
        total
    }

    /// Zero all counters (quiescent periods only).
    pub fn reset(&self) {
        for w in self.workers.iter() {
            w.barrier_waits.store(0, Ordering::Relaxed);
            w.barrier_wait_ns.store(0, Ordering::Relaxed);
            w.grabs.store(0, Ordering::Relaxed);
            w.steal_attempts.store(0, Ordering::Relaxed);
            w.steals.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time values of one worker's (or the whole team's summed)
/// execution counters; see [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecWorkerSnapshot {
    /// Barrier rendezvous completed.
    pub barrier_waits: u64,
    /// Nanoseconds spent waiting at barriers.
    pub barrier_wait_ns: u64,
    /// Loop chunks acquired from the worker's own share.
    pub grabs: u64,
    /// Steal attempts made after the own share drained.
    pub steal_attempts: u64,
    /// Steal attempts that took a chunk from a victim.
    pub steals: u64,
}

impl ExecWorkerSnapshot {
    /// Fraction of acquired chunks that were stolen, in `[0, 1]`.
    pub fn steal_ratio(&self) -> f64 {
        let total = self.grabs + self.steals;
        if total == 0 {
            0.0
        } else {
            self.steals as f64 / total as f64
        }
    }
}

impl fmt::Display for ExecWorkerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "barrier_waits={} barrier_wait_ms={:.3} grabs={} steal_attempts={} steals={} \
             (steal ratio {:.1}%)",
            self.barrier_waits,
            self.barrier_wait_ns as f64 / 1e6,
            self.grabs,
            self.steal_attempts,
            self.steals,
            self.steal_ratio() * 100.0
        )
    }
}

/// Wraps any [`SliceArbiter`], counting attempts and wins.
///
/// Scheme-agnostic (it cannot see inside the wrapped arbiter, so fast-path
/// and RMW counts stay zero here — use
/// [`CasLtCell::try_claim_instrumented`] for those); useful to compare win
/// rates and claim multiplicities across methods with identical kernels.
#[derive(Debug)]
pub struct CountingArbiter<A> {
    inner: A,
    stats: CwStats,
}

impl<A: SliceArbiter> CountingArbiter<A> {
    /// Wrap `inner` with fresh counters.
    pub fn new(inner: A) -> CountingArbiter<A> {
        CountingArbiter {
            inner,
            stats: CwStats::new(),
        }
    }

    /// The counters.
    pub fn stats(&self) -> &CwStats {
        &self.stats
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: SliceArbiter> SliceArbiter for CountingArbiter<A> {
    fn len(&self) -> usize {
        self.inner.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.stats.record_attempt();
        let won = self.inner.try_claim(index, round);
        if won {
            self.stats.record_win();
        }
        won
    }
    fn reset_all(&self) {
        self.inner.reset_all();
    }
    fn reset_range(&self, range: Range<usize>) {
        self.inner.reset_range(range);
    }
    fn rearms_on_new_round(&self) -> bool {
        self.inner.rearms_on_new_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caslt::CasLtArray;
    use crate::gatekeeper::GatekeeperArray;

    fn r(i: u32) -> Round {
        Round::from_iteration(i)
    }

    #[test]
    fn instrumented_claim_counts_paths() {
        let c = CasLtCell::new();
        let s = CwStats::new();
        assert!(c.try_claim_instrumented(r(0), &s)); // CAS win
        assert!(!c.try_claim_instrumented(r(0), &s)); // fast skip
        assert!(!c.try_claim_instrumented(r(0), &s)); // fast skip
        let snap = s.snapshot();
        assert_eq!(snap.attempts, 3);
        assert_eq!(snap.wins, 1);
        assert_eq!(snap.fast_skips, 2);
        assert_eq!(snap.rmw_issued, 1);
        assert_eq!(snap.rmw_lost, 0);
        assert!((snap.fast_path_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn counting_wrapper_counts_any_scheme() {
        let a = CountingArbiter::new(GatekeeperArray::new(2));
        assert!(a.try_claim(0, r(0)));
        assert!(!a.try_claim(0, r(0)));
        assert!(a.try_claim(1, r(0)));
        let snap = a.stats().snapshot();
        assert_eq!(snap.attempts, 3);
        assert_eq!(snap.wins, 2);
        assert_eq!(snap.rmw_issued, 0); // wrapper can't see inside
        a.reset_all();
        assert!(a.try_claim(0, r(0)));
    }

    #[test]
    fn gatekeeper_issues_rmw_per_attempt_caslt_does_not() {
        // The mechanistic claim of the paper, as counted numbers: hammer
        // one cell with k sequential losing claims.
        let k: u16 = 1000;
        let caslt = CasLtCell::new();
        let s = CwStats::new();
        for i in 0..=k {
            caslt.try_claim_instrumented(r(0), &s);
            let _ = i;
        }
        let snap = s.snapshot();
        assert_eq!(snap.rmw_issued, 1, "CAS-LT: one RMW total");
        assert_eq!(snap.fast_skips, u64::from(k));

        let gate = CountingArbiter::new(GatekeeperArray::new(1));
        for _ in 0..=k {
            gate.try_claim(0, r(0));
        }
        // The wrapper can't count RMWs, but the gatekeeper's own counter
        // proves one RMW per attempt:
        assert_eq!(gate.into_inner().cells()[0].count(), u32::from(k) + 1);
    }

    #[test]
    fn snapshot_reset_and_display() {
        let c = CasLtCell::new();
        let s = CwStats::new();
        c.try_claim_instrumented(r(0), &s);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap, CwStatsSnapshot::default());
        assert_eq!(snap.fast_path_ratio(), 0.0);
        assert_eq!(snap.rmw_per_attempt(), 0.0);
        let txt = format!("{}", s.snapshot());
        assert!(txt.contains("attempts=0"));
    }

    #[test]
    fn exec_stats_per_worker_and_totals() {
        let s = ExecStats::new(2);
        assert_eq!(s.threads(), 2);
        s.record_barrier_wait(0, 1_000);
        s.record_barrier_wait(0, 500);
        s.record_grab(0);
        s.record_steal(1, false);
        s.record_steal(1, true);
        let w0 = s.worker_snapshot(0);
        assert_eq!(w0.barrier_waits, 2);
        assert_eq!(w0.barrier_wait_ns, 1_500);
        assert_eq!(w0.grabs, 1);
        let w1 = s.worker_snapshot(1);
        assert_eq!(w1.steal_attempts, 2);
        assert_eq!(w1.steals, 1);
        let total = s.total_snapshot();
        assert_eq!(total.barrier_waits, 2);
        assert_eq!(total.grabs, 1);
        assert_eq!(total.steals, 1);
        assert!((total.steal_ratio() - 0.5).abs() < 1e-9);
        let txt = format!("{total}");
        assert!(txt.contains("steals=1"));
        s.reset();
        assert_eq!(s.total_snapshot(), ExecWorkerSnapshot::default());
        assert_eq!(ExecWorkerSnapshot::default().steal_ratio(), 0.0);
    }

    #[test]
    fn contended_instrumented_totals_are_consistent() {
        let cells = CasLtArray::new(8);
        let s = CwStats::new();
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| {
                    for i in 0..cells.len() {
                        cells.cells()[i].try_claim_instrumented(r(0), &s);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.attempts, 32);
        assert_eq!(snap.wins, 8); // one per cell
        assert_eq!(snap.attempts, snap.wins + snap.fast_skips + snap.rmw_lost);
    }
}
