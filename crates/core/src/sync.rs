//! The synchronization facade: one import point for every atomic the
//! arbitration substrate touches.
//!
//! All of `pram-core`'s concurrent-write state — CAS-LT words, gatekeeper
//! counters, priority cells, bitmap words, the lock arbiter's mutex — goes
//! through this module instead of naming `std::sync::atomic` /
//! `parking_lot` directly. In a normal build the module is a zero-cost
//! re-export: `crate::sync::AtomicU32` *is* `std::sync::atomic::AtomicU32`,
//! and `crate::sync::Mutex` *is* `parking_lot::Mutex`.
//!
//! Under `RUSTFLAGS="--cfg pram_check"` the re-exports are replaced by
//! instrumented shims (a loom-style substitution without the vendored
//! dependency): every atomic operation first reports a [`CheckEvent`] to a
//! thread-registered [`CheckHook`] before executing. The `pram-check` crate
//! installs a hook that parks the calling thread until a deterministic
//! scheduler grants it the next step, which turns every atomic operation
//! into an explorable scheduling point — the substrate's real code paths
//! (the fast-path load, the claim CAS, the gatekeeper RMW, the lock
//! acquire) run unmodified under exhaustive or seeded-random interleaving
//! exploration.
//!
//! Semantics under the shim: the checker serializes execution (exactly one
//! logical thread runs between scheduling points), so every explored
//! interleaving is **sequentially consistent**. That is the right model for
//! the single-winner arbitration argument, which never relies on weaker
//! orderings for correctness — ordering-level bugs (a missing
//! happens-before edge to a payload) are the Miri/ThreadSanitizer tiers'
//! job, not the checker's. Memory-`Ordering` arguments are accepted for API
//! parity and ignored; `compare_exchange_weak` never fails spuriously under
//! the shim (spurious failure would make replay nondeterministic).
//!
//! When no hook is registered (e.g. test-harness glue running on the main
//! thread between phases), shim operations fall through to the underlying
//! `std` atomics, so `--cfg pram_check` builds behave like normal builds
//! until a checker takes control of a thread.

#[cfg(not(pram_check))]
pub use parking_lot::{Mutex, MutexGuard};
#[cfg(not(pram_check))]
pub use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

#[cfg(pram_check)]
pub use shim::{
    emit, hook_installed, park_hint, set_check_hook, unpark_hint, AtomicU32, AtomicU64, CheckEvent,
    CheckHook, Mutex, MutexGuard, Ordering, RegionGuard,
};

/// Checker hint: the calling thread is spin-waiting on the word at `addr`
/// and cannot make progress until another thread calls
/// [`unpark_hint`]`(addr)`.
///
/// In normal builds this is a no-op — production spin loops implement
/// their own wait policy (spin / yield / timed park). Under
/// `--cfg pram_check` it reports a `Blocked(addr)` event, so the lockstep
/// scheduler parks the spinner instead of exploring an unbounded number of
/// failed re-reads; the matching `unpark_hint` on the writer side
/// re-enables it. Callers must re-check their predicate after returning
/// (wakeups may be spurious: any release of `addr` unparks all its
/// waiters).
#[cfg(not(pram_check))]
#[inline(always)]
pub fn park_hint(_addr: usize) {}

/// Checker hint: the word at `addr` was just advanced; wake any thread
/// parked by [`park_hint`]`(addr)`. No-op in normal builds.
#[cfg(not(pram_check))]
#[inline(always)]
pub fn unpark_hint(_addr: usize) {}

#[cfg(pram_check)]
mod shim {
    use std::cell::RefCell;
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub use std::sync::atomic::Ordering;

    /// What an instrumented operation is about to do, reported to the
    /// [`CheckHook`] *before* the operation executes.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum CheckEvent {
        /// An atomic load/store/RMW is about to execute: a scheduling
        /// point. The hook returns when the thread may take its step.
        Op,
        /// The thread failed to acquire the lock at `addr` and cannot make
        /// progress until it is released. The hook parks the thread until a
        /// matching [`CheckEvent::Released`] re-enables it (and the
        /// scheduler grants it a step).
        Blocked(usize),
        /// The lock at `addr` was just released (not a scheduling point —
        /// the releaser keeps running).
        Released(usize),
        /// The thread is entering a multi-word payload region (a
        /// scheduling point). The checker flags overlapping writers, or a
        /// reader overlapping a writer, as a torn-write hazard.
        RegionEnter {
            /// Address identifying the payload.
            region: usize,
            /// Whether the access mutates the payload.
            write: bool,
        },
        /// The thread is leaving a payload region (also a scheduling
        /// point, so other threads can be interleaved *inside* the
        /// region — that is what makes overlap observable).
        RegionExit {
            /// Address identifying the payload.
            region: usize,
            /// Whether the access mutated the payload.
            write: bool,
        },
    }

    /// A per-thread instrumentation sink, installed by the checker.
    pub trait CheckHook: Send + Sync {
        /// Handle one event; for scheduling-point events this blocks until
        /// the scheduler grants the calling thread its next step.
        fn event(&self, event: CheckEvent);
    }

    thread_local! {
        static HOOK: RefCell<Option<Arc<dyn CheckHook>>> = const { RefCell::new(None) };
    }

    /// Install (or clear) the calling thread's hook.
    pub fn set_check_hook(hook: Option<Arc<dyn CheckHook>>) {
        HOOK.with(|h| *h.borrow_mut() = hook);
    }

    /// Whether the calling thread currently has a hook installed.
    pub fn hook_installed() -> bool {
        HOOK.with(|h| h.borrow().is_some())
    }

    /// Instrumented spin-wait hint: park the calling thread (via a
    /// `Blocked(addr)` event) until a matching [`unpark_hint`]. With no
    /// hook installed, degrade to a yield so uncontrolled `pram_check`
    /// builds stay live. See the non-shim doc for the contract.
    #[inline]
    pub fn park_hint(addr: usize) {
        if hook_installed() {
            emit(CheckEvent::Blocked(addr));
        } else {
            std::thread::yield_now();
        }
    }

    /// Instrumented wake hint: report `Released(addr)` so threads parked
    /// by [`park_hint`]`(addr)` become schedulable again.
    #[inline]
    pub fn unpark_hint(addr: usize) {
        emit(CheckEvent::Released(addr));
    }

    /// Report `event` to the calling thread's hook, if any.
    #[inline]
    pub fn emit(event: CheckEvent) {
        HOOK.with(|h| {
            // Clone out of the RefCell so the hook can run without the
            // borrow held (hooks never re-enter `emit`, but keeping the
            // borrow scope tight costs nothing).
            let hook = h.borrow().clone();
            if let Some(hook) = hook {
                hook.event(event);
            }
        });
    }

    /// RAII marker for a multi-word payload access. Entering and leaving
    /// are both scheduling points, so the checker can interleave other
    /// threads *between* them and observe overlapping accesses.
    #[derive(Debug)]
    pub struct RegionGuard {
        region: usize,
        write: bool,
    }

    impl RegionGuard {
        /// Enter the payload region at `region`.
        pub fn enter(region: usize, write: bool) -> RegionGuard {
            emit(CheckEvent::RegionEnter { region, write });
            RegionGuard { region, write }
        }
    }

    impl Drop for RegionGuard {
        fn drop(&mut self) {
            emit(CheckEvent::RegionExit {
                region: self.region,
                write: self.write,
            });
        }
    }

    macro_rules! shim_atomic {
        ($(#[$meta:meta])* $name:ident, $raw:ident, $t:ty) => {
            $(#[$meta])*
            #[derive(Default)]
            pub struct $name {
                inner: std::sync::atomic::$raw,
            }

            impl $name {
                /// A new shimmed atomic holding `v`.
                pub const fn new(v: $t) -> $name {
                    $name {
                        inner: std::sync::atomic::$raw::new(v),
                    }
                }

                /// Instrumented load (ordering ignored; see module docs).
                #[inline]
                pub fn load(&self, _order: Ordering) -> $t {
                    emit(CheckEvent::Op);
                    self.inner.load(Ordering::SeqCst)
                }

                /// Instrumented store.
                #[inline]
                pub fn store(&self, val: $t, _order: Ordering) {
                    emit(CheckEvent::Op);
                    self.inner.store(val, Ordering::SeqCst);
                }

                /// Instrumented strong compare-exchange.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$t, $t> {
                    emit(CheckEvent::Op);
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Instrumented weak compare-exchange. Never fails
                /// spuriously (that would make schedule replay
                /// nondeterministic); the strong semantics are a superset
                /// of every weak execution.
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Instrumented fetch-add.
                #[inline]
                pub fn fetch_add(&self, val: $t, _order: Ordering) -> $t {
                    emit(CheckEvent::Op);
                    self.inner.fetch_add(val, Ordering::SeqCst)
                }

                /// Instrumented fetch-max.
                #[inline]
                pub fn fetch_max(&self, val: $t, _order: Ordering) -> $t {
                    emit(CheckEvent::Op);
                    self.inner.fetch_max(val, Ordering::SeqCst)
                }

                /// Instrumented fetch-or.
                #[inline]
                pub fn fetch_or(&self, val: $t, _order: Ordering) -> $t {
                    emit(CheckEvent::Op);
                    self.inner.fetch_or(val, Ordering::SeqCst)
                }

                /// Instrumented fetch-and.
                #[inline]
                pub fn fetch_and(&self, val: $t, _order: Ordering) -> $t {
                    emit(CheckEvent::Op);
                    self.inner.fetch_and(val, Ordering::SeqCst)
                }

                /// Exclusive access needs no instrumentation: no other
                /// thread can observe the cell.
                #[inline]
                pub fn get_mut(&mut self) -> &mut $t {
                    self.inner.get_mut()
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    // Bypass instrumentation: Debug is diagnostics, not a
                    // modeled memory access.
                    fmt::Debug::fmt(&self.inner, f)
                }
            }
        };
    }

    shim_atomic!(
        /// Instrumented stand-in for `std::sync::atomic::AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );
    shim_atomic!(
        /// Instrumented stand-in for `std::sync::atomic::AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );

    /// Instrumented stand-in for `parking_lot::Mutex`.
    ///
    /// Acquisition is a scheduling point; a failed acquisition reports
    /// [`CheckEvent::Blocked`] so the scheduler can park the thread until
    /// the holder's release (spinning would make exhaustive exploration
    /// diverge). With no hook installed the failure path degrades to a
    /// yielding spin, keeping uncontrolled `--cfg pram_check` builds live.
    pub struct Mutex<T: ?Sized> {
        locked: AtomicBool,
        value: UnsafeCell<T>,
    }

    // SAFETY: standard mutex argument — exclusive access to `value` is
    // mediated by `locked`, so the container is Send/Sync whenever the
    // payload may move between threads.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// A new unlocked mutex holding `value`.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                locked: AtomicBool::new(false),
                value: UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire, parking via the hook while contended.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let addr = &self.locked as *const AtomicBool as usize;
            loop {
                emit(CheckEvent::Op);
                if self
                    .locked
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return MutexGuard { lock: self };
                }
                emit(CheckEvent::Blocked(addr));
                if !hook_installed() {
                    std::thread::yield_now();
                }
            }
        }

        /// Exclusive access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            self.value.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.locked.load(Ordering::SeqCst) {
                f.write_str("Mutex { <locked> }")
            } else {
                // SAFETY: diagnostics-only racy read, same caveat as
                // parking_lot's Debug on a contended mutex.
                f.debug_struct("Mutex")
                    .field("data", unsafe { &&*self.value.get() })
                    .finish()
            }
        }
    }

    /// RAII guard for the shim [`Mutex`].
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard witnesses exclusive ownership of the lock.
            unsafe { &*self.lock.value.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as above.
            unsafe { &mut *self.lock.value.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let addr = &self.lock.locked as *const AtomicBool as usize;
            self.lock.locked.store(false, Ordering::SeqCst);
            emit(CheckEvent::Released(addr));
        }
    }
}
