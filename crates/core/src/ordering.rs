//! Memory-ordering rationale for the arbitration primitives.
//!
//! This module is documentation plus two tiny fence helpers; the orderings
//! themselves live inside the cells. The reasoning, once, in full:
//!
//! ## What arbitration must order — and what it must not
//!
//! A concurrent-write step has two correctness obligations:
//!
//! 1. **Writer election.** Among the claims for one (cell, round), exactly
//!    one returns `true`.
//! 2. **Reader visibility.** A read that depends on the round's writes
//!    observes the winner's complete payload.
//!
//! Obligation 1 is purely about the *modification order* of the claim word.
//! Atomic RMW operations (CAS, fetch-add) are totally ordered per location
//! in every memory model — even `Relaxed` RMWs — so exactly one CAS from a
//! stale value to the round can succeed regardless of ordering strength.
//! Our claim CASes use `AcqRel` anyway (see below); on x86 every `lock`
//! RMW is sequentially consistent, so this costs nothing on the paper's
//! target architecture.
//!
//! Obligation 2 is **delegated to the synchronization point**, exactly as in
//! the paper ("a synchronization point is required before any subsequent
//! dependent read"). A barrier creates a happens-before edge from every
//! pre-barrier action of every thread (including the winner's payload
//! stores) to every post-barrier action — readers never rely on the claim
//! word for visibility. This is why:
//!
//! * the **fast-path load** in [`crate::CasLtCell::try_claim`] is
//!   `Relaxed`: observing a stale value merely sends a thread to the CAS,
//!   which re-checks; observing the current round means "skip", a decision
//!   with no payload visibility attached;
//! * losers need nothing from the claim word: their only obligation is to
//!   *not* write.
//!
//! ## Why the CAS is `AcqRel` regardless
//!
//! Within a single round the `Acquire`/`Release` pairing on the claim word
//! is not needed for the kernels in this workspace (the barrier dominates
//! it). It is kept because it is free on x86 and it makes the primitive
//! safe for a usage the paper does not exercise but users will attempt:
//! chaining a *claim-ordered* handoff, where a thread that observes a lost
//! claim reasons about prior winners (e.g. [`crate::PriorityCell::winner`]
//! reads with `Acquire` to pair with the offers' `Release` half).
//!
//! ## The naive method and `Relaxed` stores
//!
//! The naive kernels use `Relaxed` atomic stores as the defined-behaviour
//! stand-in for C's racy plain stores ([`crate::naive`] has the full
//! argument). `Relaxed` compiles to the identical unadorned `mov` on
//! x86-64 and does not inhibit the surrounding loop's optimization in
//! practice, so measured costs transfer.
//!
//! ## The round counter needs no atomics at all
//!
//! [`crate::RoundCounter`] is advanced by the single control thread between
//! parallel phases; the round value reaches workers through the machinery
//! that launches the phase (which provides its own happens-before edge).

use std::sync::atomic::{fence, Ordering};

/// A release fence: everything before it happens-before anything that
/// observes a subsequent atomic store by this thread.
///
/// Programs using `pram_exec` barriers never need this — the barrier is
/// strictly stronger. Provided for hand-rolled synchronization layouts.
#[inline]
pub fn release_fence() {
    fence(Ordering::Release);
}

/// An acquire fence, pairing with [`release_fence`].
#[inline]
pub fn acquire_fence() {
    fence(Ordering::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};

    #[test]
    fn fences_order_a_simple_handoff() {
        // Message-passing smoke test: payload write + release fence +
        // relaxed flag store on one side; relaxed flag load + acquire fence
        // + payload read on the other.
        let payload = AtomicU64::new(0);
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                payload.store(42, Ordering::Relaxed);
                release_fence();
                flag.store(true, Ordering::Relaxed);
            });
            s.spawn(|| {
                while !flag.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                acquire_fence();
                assert_eq!(payload.load(Ordering::Relaxed), 42);
            });
        });
    }
}
