//! Abstractions over concurrent-write arbitration schemes.
//!
//! All of the paper's methods answer the same question — *"may this thread
//! perform the concurrent write to this target in this round?"* — so kernels
//! are written once against [`Arbiter`] / [`SliceArbiter`] and instantiated
//! with whichever scheme is being measured.

use crate::adaptive::SwitchDecision;
use crate::round::Round;
use crate::telemetry::CwCounters;

/// A single concurrent-write target's arbitration state.
///
/// # Contract
///
/// For every `(cell, round)` pair, among all concurrently executing
/// `try_claim(round)` calls **at most one** returns `true` (the *winner*).
/// Implementations differ in cost, progress guarantees, and in whether
/// re-arming between rounds is free (CAS-LT) or requires an explicit
/// [`Arbiter::reset`] pass (gatekeeper).
///
/// The exception is [`crate::NaiveArbiter`], which intentionally violates
/// single-winner semantics to model the "let all writes race" practice; its
/// documentation spells out when that is tolerable.
pub trait Arbiter: Sync {
    /// Attempt to claim this cell for `round`; `true` means the caller is
    /// the unique winner and must now perform the concurrent write.
    fn try_claim(&self, round: Round) -> bool;

    /// Restore the never-claimed state.
    ///
    /// Requires `&mut self`: resets happen between parallel phases, when the
    /// caller has exclusive access. Schemes with free re-arming (CAS-LT)
    /// only need this on 32-bit round-space exhaustion; the gatekeeper
    /// scheme needs it before *every* round.
    fn reset(&mut self);

    /// Whether a new round re-arms this cell without [`Arbiter::reset`].
    ///
    /// `true` for CAS-LT and the lock arbiter; `false` for gatekeepers.
    /// Kernels consult this to decide whether to pay the O(K)
    /// reinitialization pass between rounds.
    fn rearms_on_new_round(&self) -> bool;
}

/// An indexed family of concurrent-write targets.
///
/// Kernels that arbitrate per-element (one auxiliary word per vertex, per
/// array slot, …) use this instead of `&[impl Arbiter]` so that schemes can
/// choose their own storage layout (packed vs cache-line padded) and so
/// that whole-array reset can be a single `memset`-like pass.
pub trait SliceArbiter: Sync {
    /// Number of targets.
    fn len(&self) -> usize;

    /// `true` if the family is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt to claim target `index` for `round`.
    ///
    /// Same single-winner contract as [`Arbiter::try_claim`].
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    fn try_claim(&self, index: usize, round: Round) -> bool;

    /// Restore every target to the never-claimed state (shared-access
    /// variant, usable from inside a parallel region where each thread
    /// resets a sub-range via [`SliceArbiter::reset_range`]).
    fn reset_all(&self);

    /// Reset targets `range` only — the building block for parallel
    /// reinitialization, mirroring the paper's
    /// `#pragma omp parallel for … gatekeeper[i] = 0` pass.
    ///
    /// # Safety (logical)
    /// Ranges reset concurrently must be disjoint, and no claims may be in
    /// flight for indices in `range`.
    fn reset_range(&self, range: std::ops::Range<usize>);

    /// Whether a new round re-arms all targets without a reset pass.
    fn rearms_on_new_round(&self) -> bool;

    /// Whether this family wants epoch-boundary tuning callbacks
    /// ([`SliceArbiter::epoch_boundary`]). `false` for every static
    /// scheme; `true` for [`crate::AdaptiveArbiter`] unless its profile
    /// pins a delegate. Execution substrates use this to skip the tuning
    /// rendezvous entirely for non-adaptive arbiters.
    fn adapts(&self) -> bool {
        false
    }

    /// Epoch-boundary tuning hook: observe the run's **cumulative** claim
    /// counters and possibly switch strategy, returning the committed
    /// switch. Must be called by exactly one thread while every claiming
    /// thread is quiescent (a barrier's elected-member slot), and only
    /// between rounds. Default: static schemes observe nothing and never
    /// switch.
    fn epoch_boundary(&self, _totals: &CwCounters) -> Option<SwitchDecision> {
        None
    }
}

/// Claim several targets of one family for the same round, all-or-nothing
/// in effect: returns `true` only if **every** claim won.
///
/// Claims are attempted in the order given and abandoned at the first
/// loss. There is no rollback — a prefix of won cells stays claimed for
/// the round — because none is needed under the round discipline: a
/// partially-won claim set simply expires when the round advances (the
/// reset-free re-arming CAS-LT provides). Lock-based designs would need
/// explicit undo here; this helper is how `pram_algos::matching` commits
/// its two-endpoint matches.
///
/// `indices` should be in a globally consistent order (e.g. ascending)
/// across all competing claim sets; combined with single-winner claims this
/// guarantees at least one multi-claim succeeds per round among any set of
/// conflicting claimants (see the progress argument in
/// `pram_algos::matching`).
pub fn try_claim_all<A: SliceArbiter + ?Sized>(arb: &A, indices: &[usize], round: Round) -> bool {
    debug_assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "claim sets must be sorted and duplicate-free for the progress guarantee"
    );
    indices.iter().all(|&i| arb.try_claim(i, round))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caslt::CasLtCell;

    #[test]
    fn try_claim_all_is_all_or_nothing_in_effect() {
        let arr = crate::CasLtArray::new(4);
        let r = Round::FIRST;
        assert!(try_claim_all(&arr, &[0, 2], r));
        // 1 and 3 are free, but 2 is taken: the set fails...
        assert!(!try_claim_all(&arr, &[1, 2, 3], r));
        // ...claiming 1 on the way (no rollback) — 3 was never reached.
        assert!(!arr.try_claim(1, r));
        assert!(arr.try_claim(3, r));
        // A new round expires all partial claims.
        let r2 = Round::from_iteration(1);
        assert!(try_claim_all(&arr, &[0, 1, 2, 3], r2));
    }

    #[test]
    fn try_claim_all_empty_set_wins() {
        let arr = crate::CasLtArray::new(1);
        assert!(try_claim_all(&arr, &[], Round::FIRST));
    }

    #[test]
    fn trait_object_claims() {
        let c = CasLtCell::new();
        let dyn_cell: &dyn Arbiter = &c;
        assert!(dyn_cell.try_claim(Round::FIRST));
        assert!(!dyn_cell.try_claim(Round::FIRST));
    }

    #[test]
    fn is_empty_default() {
        let arr = crate::CasLtArray::new(0);
        assert!(arr.is_empty());
        let arr = crate::CasLtArray::new(3);
        assert!(!arr.is_empty());
    }
}
