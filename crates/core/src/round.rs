//! Round identifiers and their lifecycle.
//!
//! A **round** identifies one PRAM time step that contains concurrent
//! writes. Every arbitration cell remembers the round in which it was last
//! claimed; a claim succeeds only if it is the first claim the cell sees for
//! the given round. Advancing to a fresh round therefore re-arms *all* cells
//! in O(1) total work — the property that distinguishes CAS-LT from the
//! gatekeeper method, which must re-zero its auxiliary array.
//!
//! Rounds are strictly increasing `u32`s starting at 1 (cells initialize to
//! 0, i.e. "never claimed"). The paper uses C `unsigned` round IDs and
//! ignores overflow; we make overflow explicit: [`RoundCounter::next_round`]
//! returns `None` once the space is exhausted, at which point the program
//! must reset its arbitration arrays (see [`RoundCounter::reset_epoch`]) —
//! a deliberate, rare O(K) cost after ~4 billion rounds.

use core::fmt;

/// Identifier of a concurrent-write round (a PRAM time step).
///
/// `Round` is deliberately opaque: values are only ever produced by a
/// [`RoundCounter`] or [`Round::from_iteration`], keeping the "strictly
/// increasing, never zero" invariant that arbitration cells rely on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(pub(crate) u32);

impl Round {
    /// The first valid round.
    pub const FIRST: Round = Round(1);

    /// The last issuable round before an epoch reset is required.
    pub const LAST: Round = Round(u32::MAX);

    /// Derive a round from a loop iteration counter.
    ///
    /// The paper notes that the round "could be substituted by the loop
    /// iteration, achieving the same result for free": a level-synchronous
    /// kernel whose iteration `i` performs one concurrent-write step can use
    /// `Round::from_iteration(i)` directly instead of maintaining a
    /// separate counter. Iteration 0 maps to [`Round::FIRST`].
    ///
    /// # Panics
    /// Panics if `iteration == u32::MAX` (the would-be round wraps to 0).
    #[inline]
    pub fn from_iteration(iteration: u32) -> Round {
        assert!(
            iteration != u32::MAX,
            "round space exhausted: iteration counter wrapped"
        );
        Round(iteration + 1)
    }

    /// The raw value stored into arbitration cells.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The round immediately after this one, or `None` on overflow.
    #[inline]
    pub fn next(self) -> Option<Round> {
        self.0.checked_add(1).map(Round)
    }

    /// Widen to the 64-bit round domain used by [`crate::CasLtCell64`].
    #[inline]
    pub fn widen(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Round({})", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Error signalling that the 32-bit round space has been exhausted.
///
/// Returned by APIs that cannot silently reset state. After receiving this,
/// reset every arbitration array that was used with the counter (e.g.
/// [`crate::CasLtArray::reset`]) and then call
/// [`RoundCounter::reset_epoch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundOverflow;

impl fmt::Display for RoundOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("round space exhausted; reset arbitration arrays and start a new epoch")
    }
}

impl std::error::Error for RoundOverflow {}

/// Issues strictly increasing [`Round`]s.
///
/// The counter is intentionally **not** shared between threads: exactly one
/// control thread (the one driving the lock-step schedule) advances rounds,
/// and the resulting `Round` value — a plain `u32` — is distributed to
/// workers by the surrounding parallel-region machinery. This mirrors the
/// paper's OpenMP kernels where the round is a sequential loop variable.
#[derive(Clone, Debug)]
pub struct RoundCounter {
    next: u32,
    /// Number of completed epochs (full wraps of the 32-bit round space).
    epochs: u64,
}

impl RoundCounter {
    /// A counter whose first issued round is [`Round::FIRST`].
    #[inline]
    pub fn new() -> RoundCounter {
        RoundCounter { next: 1, epochs: 0 }
    }

    /// A counter resuming at a specific round (checkpoint restore, or
    /// tests exercising the epoch-overflow path without 4 billion calls).
    ///
    /// # Panics
    /// Panics if `next == 0` (not a valid round).
    #[inline]
    pub fn starting_at(next: u32) -> RoundCounter {
        assert!(next != 0, "round 0 is the never-claimed sentinel");
        RoundCounter { next, epochs: 0 }
    }

    /// Issue the next round, or `None` if the 32-bit space is exhausted.
    ///
    /// (Named `next_round` rather than `next` to stay clear of
    /// `Iterator::next`; the counter is not an iterator because exhaustion
    /// demands an explicit epoch reset, not silent termination.)
    #[inline]
    pub fn next_round(&mut self) -> Option<Round> {
        if self.next == 0 {
            return None;
        }
        let r = Round(self.next);
        self.next = self.next.wrapping_add(1); // wraps to 0 == exhausted
        Some(r)
    }

    /// Issue the next round, resetting the supplied arbitration arrays and
    /// starting a new epoch if the round space is exhausted.
    ///
    /// `reset_arrays` is invoked only in the (rare) overflow case and must
    /// restore every cell that has ever been claimed with this counter to
    /// its never-claimed state.
    #[inline]
    pub fn next_round_or_reset(&mut self, reset_arrays: impl FnOnce()) -> Round {
        match self.next_round() {
            Some(r) => r,
            None => {
                reset_arrays();
                self.reset_epoch();
                self.next_round().expect("fresh epoch has rounds")
            }
        }
    }

    /// Begin a new epoch after the caller has reset all arbitration arrays.
    pub fn reset_epoch(&mut self) {
        self.next = 1;
        self.epochs += 1;
    }

    /// Number of full wraps of the round space so far.
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The round that will be issued by the next call to
    /// [`RoundCounter::next_round`], if any.
    #[inline]
    pub fn peek(&self) -> Option<Round> {
        (self.next != 0).then_some(Round(self.next))
    }
}

impl Default for RoundCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_start_at_one_and_increase() {
        let mut c = RoundCounter::new();
        let r1 = c.next_round().unwrap();
        let r2 = c.next_round().unwrap();
        assert_eq!(r1, Round::FIRST);
        assert!(r2 > r1);
        assert_eq!(r2.get(), 2);
    }

    #[test]
    fn from_iteration_matches_counter() {
        let mut c = RoundCounter::new();
        for i in 0..100u32 {
            assert_eq!(c.next_round().unwrap(), Round::from_iteration(i));
        }
    }

    #[test]
    #[should_panic(expected = "round space exhausted")]
    fn from_iteration_rejects_wrap() {
        let _ = Round::from_iteration(u32::MAX);
    }

    #[test]
    fn counter_exhausts_exactly_at_u32_max() {
        let mut c = RoundCounter {
            next: u32::MAX,
            epochs: 0,
        };
        assert_eq!(c.next_round(), Some(Round::LAST));
        assert_eq!(c.next_round(), None);
        assert_eq!(c.peek(), None);
    }

    #[test]
    fn next_round_or_reset_starts_new_epoch() {
        let mut c = RoundCounter {
            next: u32::MAX,
            epochs: 0,
        };
        assert_eq!(c.next_round_or_reset(|| ()).get(), u32::MAX);
        let mut resets = 0;
        let r = c.next_round_or_reset(|| resets += 1);
        assert_eq!(resets, 1);
        assert_eq!(r, Round::FIRST);
        assert_eq!(c.epochs(), 1);
    }

    #[test]
    fn round_next_overflows_to_none() {
        assert_eq!(Round::LAST.next(), None);
        assert_eq!(Round::FIRST.next(), Some(Round(2)));
    }

    #[test]
    fn widen_preserves_value() {
        assert_eq!(Round(7).widen(), 7u64);
    }

    #[test]
    fn epoch_overflow_end_to_end_with_cells() {
        // An array used right across the 32-bit boundary: claims from the
        // old epoch must not leak into the new one after the reset.
        let mut arrays = crate::CasLtArray::new(4);
        let mut c = RoundCounter::starting_at(u32::MAX - 1);
        for _ in 0..2 {
            let r = c.next_round_or_reset(|| arrays.reset());
            for i in 0..4 {
                assert!(arrays.try_claim(i, r));
                assert!(!arrays.try_claim(i, r));
            }
        }
        // Round space exhausted: the next call resets and restarts.
        let r = c.next_round_or_reset(|| arrays.reset());
        assert_eq!(r, Round::FIRST);
        assert_eq!(c.epochs(), 1);
        for i in 0..4 {
            assert!(arrays.try_claim(i, r), "cell {i} must be re-armed");
        }
    }

    #[test]
    #[should_panic(expected = "never-claimed sentinel")]
    fn starting_at_zero_rejected() {
        let _ = RoundCounter::starting_at(0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut c = RoundCounter::new();
        assert_eq!(c.peek(), Some(Round::FIRST));
        assert_eq!(c.next_round(), Some(Round::FIRST));
    }
}
