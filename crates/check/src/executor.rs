//! The lockstep executor: runs a model's threads one scheduling point at a
//! time, under the control of a [`Chooser`].
//!
//! Model threads are real OS threads, but every operation instrumented by
//! `pram_core::sync` parks the calling thread until the scheduler (running
//! on the spawning thread) grants it the next step. At any instant at most
//! one model thread executes, so:
//!
//! * every execution is a deterministic function of the choice sequence —
//!   the granted-thread trace *is* the reproducer for any failure;
//! * even when a broken arbiter lets two "winners" into a payload region,
//!   their accesses never physically race (the loser is parked), so the
//!   checker can *observe* the overlap as a violation instead of
//!   triggering undefined behavior.
//!
//! The executor enforces three built-in safety properties on top of
//! whatever the model asserts: no overlapping payload-region accesses
//! (writer/writer or writer/reader), no deadlock (all live threads blocked
//! on locks), and a step bound (runaway schedules are reported, not hung).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use pram_core::sync::{set_check_hook, CheckEvent, CheckHook};

use crate::models::Model;
use crate::schedule::Chooser;

/// Lifecycle of one model thread, as the scheduler sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Executing model code between scheduling points.
    Running,
    /// Parked at a scheduling point, eligible for a grant.
    AtYield,
    /// Parked on the shim lock at this address; not eligible until the
    /// holder releases it.
    Blocked(usize),
    /// Finished its phase body.
    Done,
}

/// Shared scheduler state, guarded by the control mutex.
struct CtlState {
    status: Vec<Status>,
    /// Thread granted the next step; it clears this field when it wakes.
    granted: Option<usize>,
    /// Active payload-region accesses: region address → (writers, readers).
    regions: HashMap<usize, (usize, usize)>,
    violation: Option<String>,
    /// Once set, scheduling stops and all threads free-run to completion.
    abort: bool,
    steps: usize,
    max_steps: usize,
    trace: Vec<usize>,
}

struct Ctl {
    state: Mutex<CtlState>,
    cv: Condvar,
}

impl Ctl {
    fn lock(&self) -> MutexGuard<'_, CtlState> {
        // The control mutex is only poisoned if a *hook* panicked while
        // holding it (model panics are caught before reaching it); there is
        // no state to salvage at that point, so propagate.
        self.state.lock().expect("checker control state poisoned")
    }
}

/// The per-thread instrumentation sink wired into `pram_core::sync`.
struct WorkerHook {
    tid: usize,
    ctl: Arc<Ctl>,
}

impl WorkerHook {
    /// Park at a scheduling point until granted. Returns the re-acquired
    /// state lock and whether the run was aborted while waiting.
    fn await_grant<'a>(
        &self,
        mut st: MutexGuard<'a, CtlState>,
    ) -> (MutexGuard<'a, CtlState>, bool) {
        st.status[self.tid] = Status::AtYield;
        self.ctl.cv.notify_all();
        loop {
            if st.abort {
                st.status[self.tid] = Status::Running;
                return (st, true);
            }
            if st.granted == Some(self.tid) {
                st.granted = None;
                st.status[self.tid] = Status::Running;
                return (st, false);
            }
            st = self
                .ctl
                .cv
                .wait(st)
                .expect("checker control state poisoned");
        }
    }
}

impl CheckHook for WorkerHook {
    fn event(&self, event: CheckEvent) {
        let mut st = self.ctl.lock();
        if st.abort {
            // Free-run mode: no scheduling. Yield on lock contention so a
            // spinning acquirer lets the holder finish and release.
            drop(st);
            if matches!(event, CheckEvent::Blocked(_)) {
                std::thread::yield_now();
            }
            return;
        }
        match event {
            CheckEvent::Op => {
                let _ = self.await_grant(st);
            }
            CheckEvent::Blocked(addr) => {
                // Not eligible again until the holder's Released(addr)
                // flips us back to AtYield; only then can a grant arrive.
                st.status[self.tid] = Status::Blocked(addr);
                self.ctl.cv.notify_all();
                loop {
                    if st.abort {
                        st.status[self.tid] = Status::Running;
                        drop(st);
                        std::thread::yield_now();
                        return;
                    }
                    if st.granted == Some(self.tid) {
                        st.granted = None;
                        st.status[self.tid] = Status::Running;
                        return;
                    }
                    st = self
                        .ctl
                        .cv
                        .wait(st)
                        .expect("checker control state poisoned");
                }
            }
            CheckEvent::Released(addr) => {
                // Wake lock waiters; the releaser itself keeps running
                // (release is not a scheduling point — the preceding
                // critical-section operations already were).
                for s in st.status.iter_mut() {
                    if *s == Status::Blocked(addr) {
                        *s = Status::AtYield;
                    }
                }
                self.ctl.cv.notify_all();
            }
            CheckEvent::RegionEnter { region, write } => {
                // Register *at grant time*, so the conflict check sees
                // exactly the accesses active in this interleaving.
                let (mut st, aborted) = self.await_grant(st);
                if aborted {
                    return;
                }
                let (writers, readers) = st.regions.entry(region).or_insert((0, 0));
                let conflict = if write {
                    *writers > 0 || *readers > 0
                } else {
                    *writers > 0
                };
                if write {
                    *writers += 1;
                } else {
                    *readers += 1;
                }
                if conflict && st.violation.is_none() {
                    let kind = if write {
                        "overlapping writers"
                    } else {
                        "read overlapping a writer"
                    };
                    st.violation = Some(format!(
                        "torn payload: {kind} in region {region:#x} \
                         (thread {} entered while the region was active)",
                        self.tid
                    ));
                    self.ctl.cv.notify_all();
                }
            }
            CheckEvent::RegionExit { region, write } => {
                // Exit is a scheduling point too: it is the window in
                // which another thread's Enter can be interleaved, which
                // is what makes an overlap observable at all.
                let (mut st, aborted) = self.await_grant(st);
                if aborted {
                    return;
                }
                if let Some((writers, readers)) = st.regions.get_mut(&region) {
                    if write {
                        *writers = writers.saturating_sub(1);
                    } else {
                        *readers = readers.saturating_sub(1);
                    }
                }
            }
        }
    }
}

/// Scheduler loop: grant steps one at a time until all threads are done or
/// a violation aborts the run. Runs on the spawning thread.
fn drive(ctl: &Ctl, chooser: &mut dyn Chooser) {
    let mut st = ctl.lock();
    loop {
        // Quiescence: the previous grant was consumed and no thread is
        // executing model code — every live thread is parked.
        while st.granted.is_some() || st.status.contains(&Status::Running) {
            st = ctl.cv.wait(st).expect("checker control state poisoned");
        }
        if st.status.iter().all(|s| *s == Status::Done) {
            return;
        }
        if st.violation.is_none() && st.steps >= st.max_steps {
            st.violation = Some(format!(
                "step bound exceeded ({} scheduling points)",
                st.max_steps
            ));
        }
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::AtYield)
            .map(|(t, _)| t)
            .collect();
        if st.violation.is_none() && enabled.is_empty() {
            // Live threads exist (not all Done) but none is eligible:
            // everyone left is blocked on a lock nobody will release.
            st.violation = Some("deadlock: all live threads blocked on locks".to_string());
        }
        if st.violation.is_some() {
            st.abort = true;
            ctl.cv.notify_all();
            while !st.status.iter().all(|s| *s == Status::Done) {
                st = ctl.cv.wait(st).expect("checker control state poisoned");
            }
            return;
        }
        let tid = chooser.pick(&enabled);
        debug_assert!(enabled.contains(&tid), "chooser returned disabled thread");
        st.trace.push(tid);
        st.steps += 1;
        st.granted = Some(tid);
        ctl.cv.notify_all();
    }
}

/// Result of one controlled execution of a model.
#[derive(Debug)]
pub struct RunOutcome {
    /// The violation, if any — from the executor's built-in properties, a
    /// model assertion, or a panic in model code.
    pub violation: Option<String>,
    /// Granted-thread schedule across all phases; feed to
    /// [`crate::explore::replay`] to reproduce this execution.
    pub trace: Vec<usize>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `model` once under `chooser`, running each phase's threads in
/// lockstep with the model's glue code between phases.
pub fn run_one<M: Model>(model: &mut M, chooser: &mut dyn Chooser, max_steps: usize) -> RunOutcome {
    let n = model.threads();
    assert!(n > 0, "model must declare at least one thread");
    let mut trace = Vec::new();
    let mut violation: Option<String> = None;

    for phase in 0..model.phases() {
        if violation.is_some() {
            break;
        }
        let ctl = Arc::new(Ctl {
            state: Mutex::new(CtlState {
                status: vec![Status::Running; n],
                granted: None,
                regions: HashMap::new(),
                violation: None,
                abort: false,
                steps: trace.len(),
                max_steps,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        {
            let m = &*model;
            std::thread::scope(|s| {
                for tid in 0..n {
                    let ctl = Arc::clone(&ctl);
                    s.spawn(move || {
                        let hook = Arc::new(WorkerHook {
                            tid,
                            ctl: Arc::clone(&ctl),
                        });
                        set_check_hook(Some(hook));
                        let result = catch_unwind(AssertUnwindSafe(|| m.run(phase, tid)));
                        set_check_hook(None);
                        let mut st = ctl.lock();
                        if let Err(payload) = result {
                            if st.violation.is_none() {
                                st.violation = Some(format!(
                                    "thread {tid} panicked: {}",
                                    panic_message(payload.as_ref())
                                ));
                            }
                            st.abort = true;
                        }
                        st.status[tid] = Status::Done;
                        ctl.cv.notify_all();
                    });
                }
                drive(&ctl, chooser);
            });
        }
        let mut st = ctl.lock();
        trace.extend_from_slice(&st.trace);
        violation = st.violation.take();
        drop(st);
        if violation.is_none() {
            if let Err(msg) = model.after_phase(phase) {
                violation = Some(msg);
            }
        }
    }

    if violation.is_none() {
        if let Err(msg) = model.check_final() {
            violation = Some(msg);
        }
    }
    RunOutcome { violation, trace }
}
