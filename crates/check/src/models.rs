//! Checkable models: the substrate's invariants packaged as small
//! multi-threaded programs the executor can explore.
//!
//! A [`Model`] describes N logical threads, each running a short program
//! over real `pram-core` types (compiled against the instrumented
//! `pram_core::sync` shim), plus sequential glue between phases and final
//! assertions. Models record their own bookkeeping (who won) in plain
//! `std` atomics — those are *not* routed through the shim, so bookkeeping
//! never adds scheduling points.
//!
//! Keep models tiny: the exhaustive tier enumerates every interleaving, and
//! the tree grows exponentially in threads × scheduling points. Three
//! threads and a handful of atomic operations each is the sweet spot — it
//! already contains every two-thread race plus a third-party observer.

use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use pram_core::sync::RegionGuard;
use pram_core::{
    AdaptiveArbiter, CasLtArray, ConCell, CwTelemetry, Delegate, PriorityCell, Round, ShardGuard,
    SliceArbiter,
};

use crate::buggy::BuggyCasLtCell;

/// A schedule-explorable concurrent program with assertions.
pub trait Model: Sync {
    /// Name used in violation reports.
    fn name(&self) -> &str;

    /// Number of logical threads per phase.
    fn threads(&self) -> usize;

    /// Number of lockstep phases (a phase boundary is a total order, like
    /// the round-closing barrier in a real kernel).
    fn phases(&self) -> usize {
        1
    }

    /// Body of logical thread `tid` during `phase`; runs under the
    /// instrumented shim, one scheduling point at a time.
    fn run(&self, phase: usize, tid: usize);

    /// Sequential glue after `phase` completes (reset passes, mid-point
    /// assertions). An `Err` is reported as a violation.
    fn after_phase(&mut self, _phase: usize) -> Result<(), String> {
        Ok(())
    }

    /// Final assertions after all phases. An `Err` is a violation.
    fn check_final(&self) -> Result<(), String>;
}

/// Count and list the set bits of a win flag vector.
fn winners(wins: &[AtomicBool]) -> Vec<usize> {
    wins.iter()
        .enumerate()
        .filter(|(_, w)| w.load(Ordering::Relaxed))
        .map(|(t, _)| t)
        .collect()
}

/// The core invariant: N threads race `try_claim` on one cell in one
/// round; **exactly one** must win (single-winner + no-lost-claim: at
/// least one claimant always succeeds when the cell is fresh).
pub struct SingleRoundWinner<A> {
    name: String,
    arb: A,
    round: Round,
    wins: Vec<AtomicBool>,
}

impl<A: SliceArbiter> SingleRoundWinner<A> {
    /// `threads` claimants racing for cell 0 of `arb` in `round`.
    pub fn new(name: &str, arb: A, threads: usize, round: Round) -> SingleRoundWinner<A> {
        let mut wins = Vec::with_capacity(threads);
        wins.resize_with(threads, || AtomicBool::new(false));
        SingleRoundWinner {
            name: name.to_string(),
            arb,
            round,
            wins,
        }
    }
}

impl<A: SliceArbiter> Model for SingleRoundWinner<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.wins.len()
    }
    fn run(&self, _phase: usize, tid: usize) {
        if self.arb.try_claim(0, self.round) {
            self.wins[tid].store(true, Ordering::Relaxed);
        }
    }
    fn check_final(&self) -> Result<(), String> {
        let w = winners(&self.wins);
        if w.len() == 1 {
            Ok(())
        } else {
            Err(format!(
                "expected exactly one winner for (cell 0, round {}), got {}: threads {w:?}",
                self.round,
                w.len()
            ))
        }
    }
}

/// Claims for *different* rounds racing on the same cell — the read-skip
/// fast path vs. round-advance interaction. Threads `0..threads-1` claim
/// `round`, the last thread claims `round + 1`. Per round, at most one
/// winner (a newer round may legitimately steal the cell before the older
/// round's claims land, so the older round can have zero winners).
pub struct RoundRacing<A> {
    name: String,
    arb: A,
    round: Round,
    /// Round each winner claimed with (0 = did not win).
    won_round: Vec<AtomicU32>,
}

impl<A: SliceArbiter> RoundRacing<A> {
    /// `threads ≥ 2` claimants; the last one races a newer round.
    pub fn new(name: &str, arb: A, threads: usize, round: Round) -> RoundRacing<A> {
        assert!(
            threads >= 2,
            "round racing needs an old- and a new-round claimant"
        );
        let mut won_round = Vec::with_capacity(threads);
        won_round.resize_with(threads, || AtomicU32::new(0));
        RoundRacing {
            name: name.to_string(),
            arb,
            round,
            won_round,
        }
    }
}

impl<A: SliceArbiter> Model for RoundRacing<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.won_round.len()
    }
    fn run(&self, _phase: usize, tid: usize) {
        let round = if tid == self.won_round.len() - 1 {
            self.round
                .next()
                .expect("model rounds stay far from the cap")
        } else {
            self.round
        };
        if self.arb.try_claim(0, round) {
            self.won_round[tid].store(round.get(), Ordering::Relaxed);
        }
    }
    fn check_final(&self) -> Result<(), String> {
        for round in [self.round.get(), self.round.get() + 1] {
            let w: Vec<usize> = self
                .won_round
                .iter()
                .enumerate()
                .filter(|(_, r)| r.load(Ordering::Relaxed) == round)
                .map(|(t, _)| t)
                .collect();
            if w.len() > 1 {
                return Err(format!(
                    "round {round} has {} winners on one cell: threads {w:?}",
                    w.len()
                ));
            }
        }
        Ok(())
    }
}

/// Reset / re-arm semantics across two claim phases.
///
/// Phase 0 races `round`; the glue asserts exactly one winner, then either
/// relies on free re-arming (claiming `round + 1` in phase 1) or performs
/// the explicit `reset_all` pass that non-re-arming schemes require (and
/// claims `round + 1` as well — resetting schemes ignore the round).
/// Phase 1 must again produce exactly one winner.
pub struct ResetRearm<A> {
    name: String,
    arb: A,
    round: Round,
    wins: [Vec<AtomicBool>; 2],
}

impl<A: SliceArbiter> ResetRearm<A> {
    /// `threads` claimants per phase.
    pub fn new(name: &str, arb: A, threads: usize, round: Round) -> ResetRearm<A> {
        let mk = || {
            let mut v = Vec::with_capacity(threads);
            v.resize_with(threads, || AtomicBool::new(false));
            v
        };
        ResetRearm {
            name: name.to_string(),
            arb,
            round,
            wins: [mk(), mk()],
        }
    }

    fn phase_round(&self, phase: usize) -> Round {
        if phase == 0 {
            self.round
        } else {
            self.round
                .next()
                .expect("model rounds stay far from the cap")
        }
    }
}

impl<A: SliceArbiter> Model for ResetRearm<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.wins[0].len()
    }
    fn phases(&self) -> usize {
        2
    }
    fn run(&self, phase: usize, tid: usize) {
        if self.arb.try_claim(0, self.phase_round(phase)) {
            self.wins[phase][tid].store(true, Ordering::Relaxed);
        }
    }
    fn after_phase(&mut self, phase: usize) -> Result<(), String> {
        let w = winners(&self.wins[phase]);
        if w.len() != 1 {
            return Err(format!(
                "phase {phase} expected exactly one winner, got {}: threads {w:?}",
                w.len()
            ));
        }
        if phase == 0 && !self.arb.rearms_on_new_round() {
            self.arb.reset_all();
        }
        Ok(())
    }
    fn check_final(&self) -> Result<(), String> {
        Ok(()) // per-phase checks already ran in after_phase
    }
}

/// Multi-word payload non-tearing through [`ConCell`]: every thread races
/// `write_with` for the same round; the claim must admit exactly one
/// writer into the payload region (the executor reports any overlap as a
/// torn-payload violation), and the committed value must be exactly the
/// winner's.
pub struct PayloadWrite {
    cell: ConCell<[u64; 4]>,
    round: Round,
    wins: Vec<AtomicBool>,
}

impl PayloadWrite {
    /// `threads` racing writers.
    pub fn new(threads: usize, round: Round) -> PayloadWrite {
        let mut wins = Vec::with_capacity(threads);
        wins.resize_with(threads, || AtomicBool::new(false));
        PayloadWrite {
            cell: ConCell::new([0; 4]),
            round,
            wins,
        }
    }
}

impl Model for PayloadWrite {
    fn name(&self) -> &str {
        "payload-write-caslt"
    }
    fn threads(&self) -> usize {
        self.wins.len()
    }
    fn run(&self, _phase: usize, tid: usize) {
        let tag = tid as u64 + 1;
        // SAFETY: single round, no concurrent reads; the round discipline
        // holds by construction of the model.
        if unsafe { self.cell.write_with(self.round, |w| *w = [tag; 4]) } {
            self.wins[tid].store(true, Ordering::Relaxed);
        }
    }
    fn check_final(&self) -> Result<(), String> {
        let w = winners(&self.wins);
        if w.len() != 1 {
            return Err(format!(
                "expected one payload winner, got {}: {w:?}",
                w.len()
            ));
        }
        let tag = w[0] as u64 + 1;
        // SAFETY: all phases complete, no round open.
        let committed = unsafe { *self.cell.read() };
        if committed != [tag; 4] {
            return Err(format!(
                "committed payload {committed:?} is not winner {}'s value [{tag}; 4]",
                w[0]
            ));
        }
        Ok(())
    }
}

/// The torn-write seed: the same payload program as [`PayloadWrite`], but
/// guarded by the check-then-act [`BuggyCasLtCell`]. Schedules that let
/// two claimants both "win" put two writers in the payload region at once;
/// the executor must flag the overlap.
pub struct BuggyPayloadWrite {
    claim: BuggyCasLtCell,
    value: UnsafeCell<[u64; 4]>,
    round: Round,
    threads: usize,
}

// SAFETY: the payload is only written while the executor serializes
// threads (one runs at a time), so &self access from multiple model
// threads never physically races even when the buggy claim admits two
// logical writers — that is exactly the overlap the checker reports.
unsafe impl Sync for BuggyPayloadWrite {}

impl BuggyPayloadWrite {
    /// `threads` racing writers over the buggy claim.
    pub fn new(threads: usize, round: Round) -> BuggyPayloadWrite {
        BuggyPayloadWrite {
            claim: BuggyCasLtCell::new(),
            value: UnsafeCell::new([0; 4]),
            round,
            threads,
        }
    }
}

impl Model for BuggyPayloadWrite {
    fn name(&self) -> &str {
        "payload-write-buggy-caslt"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn run(&self, _phase: usize, tid: usize) {
        if self.claim.try_claim(self.round) {
            let _region = RegionGuard::enter(self.value.get() as usize, true);
            // SAFETY: serialized by the executor (see Sync impl).
            unsafe { *self.value.get() = [tid as u64 + 1; 4] };
        }
    }
    fn check_final(&self) -> Result<(), String> {
        Ok(()) // the property under test is the executor's region check
    }
}

/// Telemetry passivity: the same single-cell CAS-LT race as
/// [`SingleRoundWinner`], run either **with** each thread's claim
/// telemetry recorded into a [`CwTelemetry`] shard or **without** any
/// recording installed.
///
/// Instrumentation must be *passive*: it may add scheduling points (each
/// counter increment is one under the shim), but it must never change an
/// arbitration outcome. `tests/check_telemetry.rs` explores both variants
/// exhaustively and asserts the reachable winner sets are identical —
/// which is exactly the property the seeded
/// [`crate::buggy::CountingClaimCell`] violates, since its "counter"
/// feeds back into the claim decision.
///
/// Each execution also records its winner into a shared `outcomes` set
/// (plain `std` sync — sequential glue, never a scheduling point), and
/// the counters-on variant asserts per-execution counter conservation
/// under lockstep: every claim resolves (`fast_path_skips + cas_attempts
/// == threads`) and exactly one wins.
pub struct TelemetryPassive {
    arb: CasLtArray,
    telem: Option<CwTelemetry>,
    round: Round,
    wins: Vec<AtomicBool>,
    outcomes: Arc<Mutex<BTreeSet<usize>>>,
}

impl TelemetryPassive {
    /// `threads` claimants; `counters_on` selects the instrumented
    /// variant. Winners accumulate into `outcomes` across executions.
    pub fn new(
        threads: usize,
        round: Round,
        counters_on: bool,
        outcomes: Arc<Mutex<BTreeSet<usize>>>,
    ) -> TelemetryPassive {
        let mut wins = Vec::with_capacity(threads);
        wins.resize_with(threads, || AtomicBool::new(false));
        TelemetryPassive {
            arb: CasLtArray::new(1),
            telem: counters_on.then(|| CwTelemetry::new(threads)),
            round,
            wins,
            outcomes,
        }
    }
}

impl Model for TelemetryPassive {
    fn name(&self) -> &str {
        if self.telem.is_some() {
            "telemetry-passive-counters-on"
        } else {
            "telemetry-passive-counters-off"
        }
    }
    fn threads(&self) -> usize {
        self.wins.len()
    }
    fn run(&self, _phase: usize, tid: usize) {
        let _guard = self
            .telem
            .as_ref()
            .map(|t| ShardGuard::install(t.shard(tid)));
        if self.arb.try_claim(0, self.round) {
            self.wins[tid].store(true, Ordering::Relaxed);
        }
    }
    fn check_final(&self) -> Result<(), String> {
        let w = winners(&self.wins);
        if w.len() != 1 {
            return Err(format!(
                "expected exactly one winner, got {}: threads {w:?}",
                w.len()
            ));
        }
        if let Some(t) = &self.telem {
            let c = t.totals();
            let threads = self.wins.len() as u64;
            if c.fast_path_skips + c.cas_attempts != threads {
                return Err(format!(
                    "counter conservation: fast_path_skips ({}) + cas_attempts ({}) != {threads} claims",
                    c.fast_path_skips, c.cas_attempts
                ));
            }
            if c.wins != 1 {
                return Err(format!("counted {} wins, arbitration produced 1", c.wins));
            }
            if c.cas_failures != c.cas_attempts - c.wins {
                return Err(format!(
                    "cas_failures ({}) != cas_attempts ({}) - wins ({})",
                    c.cas_failures, c.cas_attempts, c.wins
                ));
            }
        }
        self.outcomes.lock().unwrap().insert(w[0]);
        Ok(())
    }
}

/// Per-cell single-winner over an explicit thread→cell assignment, so
/// claims can fan out across several cells in one round — the shape that
/// exposes a delegate switch racing claims still in flight on *other*
/// cells (one claimant per cell behaves like an exclusive write; the
/// interesting cells have two or more).
///
/// Every cell starts fresh and has at least one claimant, so each must
/// elect **exactly one** winner: two winners is the torn-switch
/// violation, zero is a lost claim.
pub struct PerCellSingleWinner<A> {
    name: String,
    arb: A,
    /// `cells[t]` is the cell thread `t` claims.
    cells: Vec<usize>,
    round: Round,
    wins: Vec<AtomicBool>,
}

impl<A: SliceArbiter> PerCellSingleWinner<A> {
    /// One claimant per entry of `cells`, all racing in `round`.
    pub fn new(name: &str, arb: A, cells: Vec<usize>, round: Round) -> PerCellSingleWinner<A> {
        assert!(cells.iter().all(|&c| c < arb.len()), "cell out of range");
        let mut wins = Vec::with_capacity(cells.len());
        wins.resize_with(cells.len(), || AtomicBool::new(false));
        PerCellSingleWinner {
            name: name.to_string(),
            arb,
            cells,
            round,
            wins,
        }
    }
}

impl<A: SliceArbiter> Model for PerCellSingleWinner<A> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.cells.len()
    }
    fn run(&self, _phase: usize, tid: usize) {
        if self.arb.try_claim(self.cells[tid], self.round) {
            self.wins[tid].store(true, Ordering::Relaxed);
        }
    }
    fn check_final(&self) -> Result<(), String> {
        let mut distinct: Vec<usize> = self.cells.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for cell in distinct {
            let w: Vec<usize> = self
                .cells
                .iter()
                .enumerate()
                .filter(|&(t, &c)| c == cell && self.wins[t].load(Ordering::Relaxed))
                .map(|(t, _)| t)
                .collect();
            if w.len() != 1 {
                return Err(format!(
                    "expected exactly one winner for (cell {cell}, round {}), got {}: threads {w:?}",
                    self.round,
                    w.len()
                ));
            }
        }
        Ok(())
    }
}

/// The correct switch protocol: an [`AdaptiveArbiter`] changes delegate
/// only at **epoch boundaries** (the sequential glue between phases —
/// exactly the elected member's slot at the round barrier, where every
/// claimant is quiescent). Three phases walk the full cycle the kernels
/// exercise:
///
/// * phase 0 (round 1): both threads race cell 0 on the starting CAS-LT
///   delegate; glue asserts one winner, then switches to the gatekeeper
///   (which defensively re-arms its counters).
/// * phase 1 (round 2): the race repeats on the gatekeeper; glue asserts
///   one winner, performs the kernel's re-zero pass (the arbiter does not
///   re-arm on a new round while the gatekeeper is active), and switches
///   back to CAS-LT — whose cells still hold the **stale round-1 claim**,
///   claimable again precisely because rounds strictly increase.
/// * phase 2 (round 3): the race repeats on the stale-but-safe CAS-LT.
///
/// Exhausting this model proves the boundary switch loses no round and
/// never yields two winners for the same `(cell, round)` across the
/// old/new delegate — the soundness half of the seeded
/// [`crate::buggy::BuggySwitchArbiter`] violation.
pub struct EpochSwitch {
    arb: AdaptiveArbiter,
    wins: [Vec<AtomicBool>; 3],
}

impl EpochSwitch {
    /// `threads` claimants per phase over a single adaptive cell.
    pub fn new(threads: usize) -> EpochSwitch {
        let mk = || {
            let mut v = Vec::with_capacity(threads);
            v.resize_with(threads, || AtomicBool::new(false));
            v
        };
        EpochSwitch {
            arb: AdaptiveArbiter::new(1),
            wins: [mk(), mk(), mk()],
        }
    }
}

impl Model for EpochSwitch {
    fn name(&self) -> &str {
        "adaptive-epoch-switch"
    }
    fn threads(&self) -> usize {
        self.wins[0].len()
    }
    fn phases(&self) -> usize {
        3
    }
    fn run(&self, phase: usize, tid: usize) {
        if self.arb.try_claim(0, Round::from_iteration(phase as u32)) {
            self.wins[phase][tid].store(true, Ordering::Relaxed);
        }
    }
    fn after_phase(&mut self, phase: usize) -> Result<(), String> {
        let w = winners(&self.wins[phase]);
        if w.len() != 1 {
            return Err(format!(
                "phase {phase} ({}) expected exactly one winner for (cell 0, round {}), got {}: threads {w:?}",
                self.arb.active_delegate(),
                phase + 1,
                w.len()
            ));
        }
        match phase {
            0 => {
                self.arb
                    .force_switch(Delegate::Gatekeeper)
                    .ok_or("switch to gatekeeper refused")?;
            }
            1 => {
                // The kernel's between-round re-zero pass, then back.
                if !self.arb.rearms_on_new_round() {
                    self.arb.reset_range(0..1);
                }
                self.arb
                    .force_switch(Delegate::CasLt)
                    .ok_or("switch to caslt refused")?;
            }
            _ => {}
        }
        Ok(())
    }
    fn check_final(&self) -> Result<(), String> {
        Ok(()) // per-phase checks already ran in after_phase
    }
}

/// Priority CRCW semantics: every thread offers its own ID as priority;
/// after the phase, the winner must be the minimum offered priority,
/// regardless of arrival order.
pub struct PriorityMin {
    cell: PriorityCell,
    round: Round,
    threads: usize,
}

impl PriorityMin {
    /// `threads` offerers with priorities `0..threads`.
    pub fn new(threads: usize, round: Round) -> PriorityMin {
        PriorityMin {
            cell: PriorityCell::new(),
            round,
            threads,
        }
    }
}

impl Model for PriorityMin {
    fn name(&self) -> &str {
        "priority-min-wins"
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn run(&self, _phase: usize, tid: usize) {
        self.cell.offer(self.round, tid as u32);
    }
    fn check_final(&self) -> Result<(), String> {
        match self.cell.winner(self.round) {
            Some(0) => Ok(()),
            got => Err(format!(
                "priority winner must be the minimum offered (0), got {got:?}"
            )),
        }
    }
}
